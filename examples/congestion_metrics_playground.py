"""Congestion-metric playground: why Catnap uses BFM.

Compares subnet-selection driven by different local congestion metrics
(the paper's §3.4 candidates) on the adversarial transpose pattern,
where regional max-buffer-occupancy (BFM) shines and the alternatives
struggle.  Prints latency, throughput, and compensated sleep cycles per
metric at a moderate load.

Run:  python examples/congestion_metrics_playground.py
"""

from __future__ import annotations

from repro.experiments.common import run_synthetic_point, synthetic_phases
from repro.experiments.fig11_congestion_metrics import fig11_variants
from repro.util.tables import format_table

LOAD = 0.20
PATTERN = "transpose"


def main() -> None:
    phases = synthetic_phases(0.6)
    rows = []
    for name, config in fig11_variants().items():
        row = run_synthetic_point(config, PATTERN, LOAD, phases, seed=13)
        rows.append(
            {
                "metric": name,
                "latency": row["latency"],
                "throughput": row["throughput"],
                "csc_pct": row["csc_pct"],
                "share": " ".join(
                    f"{s:.2f}" for s in row["subnet_share"]
                ),
            }
        )
    rows.sort(key=lambda r: r["latency"])
    print(
        format_table(
            rows,
            title=(
                f"Congestion metrics on {PATTERN} at load {LOAD} "
                "(sorted by latency)"
            ),
        )
    )
    print(
        "\nBFM with regional detection balances latency and sleep time;"
        "\nround-robin wrecks both, and queue-based metrics react too"
        "\nslowly to protect the lower-order subnets."
    )


if __name__ == "__main__":
    main()
