"""Energy proportionality: network power tracking network demand.

The paper's thesis is that a power-gated Multi-NoC consumes power
proportional to offered load, while a Single-NoC pays its full static
power at every load.  This example sweeps offered load and prints
power (and its static share) for both designs, plus an "energy
proportionality index" — power normalized between idle and peak.

Run:  python examples/energy_proportionality.py
"""

from __future__ import annotations

from repro import (
    MultiNocFabric,
    NocConfig,
    SimulationPhases,
    SyntheticTrafficSource,
    make_pattern,
    run_open_loop,
)
from repro.power import compute_network_power
from repro.util.tables import format_table

LOADS = (0.01, 0.05, 0.10, 0.20, 0.30)
PHASES = SimulationPhases(warmup=500, measure=1800, cooldown=500)


def sweep(config: NocConfig) -> list[dict]:
    rows = []
    for load in LOADS:
        fabric = MultiNocFabric(config, seed=2)
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load, seed=2
        )
        report = run_open_loop(fabric, source, PHASES)
        power = compute_network_power(report)
        rows.append(
            {
                "config": config.name,
                "load": load,
                "power_w": power.total_watts,
                "static_w": power.static_watts,
                "csc_pct": 100 * report.csc_fraction,
            }
        )
    peak = rows[-1]["power_w"]
    for row in rows:
        row["fraction_of_peak"] = row["power_w"] / peak
    return rows


def main() -> None:
    rows = []
    for config in (
        NocConfig.single_noc_512(),
        NocConfig.multi_noc(4, power_gating=True),
    ):
        rows.extend(sweep(config))
    print(
        format_table(
            rows,
            title="Energy proportionality: power vs offered load",
        )
    )
    single_idle = rows[0]["fraction_of_peak"]
    catnap_idle = rows[len(LOADS)]["fraction_of_peak"]
    print(
        f"\nAt near-idle load the Single-NoC still burns "
        f"{100 * single_idle:.0f}% of its peak power; Catnap's gated "
        f"Multi-NoC burns only {100 * catnap_idle:.0f}%."
    )


if __name__ == "__main__":
    main()
