"""Closed-loop 256-core processor: power vs performance per design.

Runs the Table 3 Light and Heavy multiprogrammed workloads on three
network designs — the 512-bit Single-NoC, the same with power gating,
and Catnap's power-gated 4-subnet Multi-NoC — through the full closed
loop (cores, MESI directory, memory controllers, NoC), then prints the
paper's Figure 8 style comparison: network power, normalized system
performance, and compensated sleep cycles.

Run:  python examples/multiprogrammed_processor.py
"""

from __future__ import annotations

from repro.noc import NocConfig
from repro.power import compute_network_power
from repro.system import Processor
from repro.util.tables import format_table

CYCLES = 8000


def main() -> None:
    configs = [
        NocConfig.single_noc_512(),
        NocConfig.single_noc_512(power_gating=True),
        NocConfig.multi_noc(4, power_gating=True),
    ]
    rows = []
    for workload in ("Light", "Heavy"):
        baseline_ipc = None
        for config in configs:
            result = Processor(config, workload, seed=5).run(CYCLES)
            power = compute_network_power(result.fabric_report)
            if baseline_ipc is None:
                baseline_ipc = result.aggregate_ipc
            rows.append(
                {
                    "workload": workload,
                    "config": config.name,
                    "power_w": power.total_watts,
                    "static_w": power.static_watts,
                    "norm_perf": result.aggregate_ipc / baseline_ipc,
                    "csc_pct": 100 * result.fabric_report.csc_fraction,
                    "miss_latency": result.avg_miss_latency,
                }
            )
    print(
        format_table(
            rows, title="Closed-loop processor: power vs performance"
        )
    )
    light = [r for r in rows if r["workload"] == "Light"]
    print(
        "\nOn Light, gating the Single-NoC costs "
        f"{100 * (1 - light[1]['norm_perf']):.0f}% performance for almost "
        "no static-power saving, while Catnap's Multi-NoC cuts power by "
        f"{100 * (1 - light[2]['power_w'] / light[0]['power_w']):.0f}% "
        f"for a {100 * (1 - light[2]['norm_perf']):.0f}% cost."
    )


if __name__ == "__main__":
    main()
