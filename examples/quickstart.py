"""Quickstart: simulate a Catnap Multi-NoC and read its key metrics.

Builds the paper's flagship configuration (a 256-core, 8x8 concentrated
mesh carved into four 128-bit subnets with Catnap power gating), drives
it with uniform random traffic at a low and a moderate load, and prints
latency, throughput, compensated sleep cycles, and network power.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MultiNocFabric,
    NocConfig,
    SimulationPhases,
    SyntheticTrafficSource,
    make_pattern,
    run_open_loop,
)
from repro.power import compute_network_power
from repro.util.tables import format_table


def measure(config: NocConfig, load: float) -> dict:
    """Run one open-loop experiment and summarize it as a row."""
    fabric = MultiNocFabric(config, seed=1)
    pattern = make_pattern("uniform", fabric.mesh)
    source = SyntheticTrafficSource(fabric, pattern, load, seed=1)
    report = run_open_loop(
        fabric, source, SimulationPhases(warmup=500, measure=2000,
                                         cooldown=500)
    )
    power = compute_network_power(report)
    return {
        "config": config.name,
        "load": load,
        "latency_cyc": report.avg_packet_latency,
        "throughput": report.throughput_packets,
        "csc_pct": 100 * report.csc_fraction,
        "power_w": power.total_watts,
        "subnet_share": " ".join(
            f"{share:.2f}" for share in report.subnet_injection_share
        ),
    }


def main() -> None:
    catnap = NocConfig.multi_noc(num_subnets=4, power_gating=True)
    single = NocConfig.single_noc_512()
    rows = []
    for load in (0.03, 0.25):
        rows.append(measure(single, load))
        rows.append(measure(catnap, load))
    print(format_table(rows, title="Catnap quickstart (uniform random)"))
    print(
        "\nAt low load Catnap powers off most routers of the higher-order"
        "\nsubnets (high CSC, low power); at high load it spreads traffic"
        "\nacross all subnets and matches Single-NoC throughput."
    )


if __name__ == "__main__":
    main()
