"""Burst adaptation: watch subnets wake and sleep as load steps.

Replays a bursty load schedule (like the paper's Figure 12) against a
power-gated 4-subnet Multi-NoC and prints, every 100 cycles, the
offered/accepted throughput, how many routers of each subnet are awake,
and the per-subnet share of injected packets — an ASCII view of
Catnap's ramp-up and decay behaviour.

Run:  python examples/bursty_adaptation.py
"""

from __future__ import annotations

from repro import BurstyTrafficSource, MultiNocFabric, NocConfig, make_pattern
from repro.noc.router import PowerState

SCHEDULE = [(0, 0.02), (800, 0.28), (1400, 0.02), (2000, 0.12), (2600, 0.02)]
TOTAL_CYCLES = 3200
SAMPLE = 100


def awake_routers(fabric: MultiNocFabric, subnet: int) -> int:
    return sum(
        1
        for router in fabric.subnets[subnet].routers
        if router.power_state == PowerState.ACTIVE
    )


def main() -> None:
    config = NocConfig.multi_noc(num_subnets=4, power_gating=True)
    fabric = MultiNocFabric(config, seed=11)
    source = BurstyTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), SCHEDULE, seed=11
    )
    nodes = fabric.mesh.num_nodes
    print(
        f"{'cycle':>6} {'offered':>8} {'accepted':>9} "
        f"{'awake routers/subnet':>22}   injected share"
    )
    last_generated = 0
    last_received = 0
    last_injected = [0] * 4
    while fabric.cycle < TOTAL_CYCLES:
        for _ in range(SAMPLE):
            source.step(fabric.cycle)
            fabric.step()
        generated = source.packets_generated
        received = fabric.stats.packets_received
        injected = [
            sum(ni.injected_per_subnet[s] for ni in fabric.nis)
            for s in range(4)
        ]
        delta_inj = [injected[s] - last_injected[s] for s in range(4)]
        total_inj = sum(delta_inj) or 1
        awake = "/".join(str(awake_routers(fabric, s)) for s in range(4))
        share = " ".join(f"{d / total_inj:.2f}" for d in delta_inj)
        offered = (generated - last_generated) / (nodes * SAMPLE)
        accepted = (received - last_received) / (nodes * SAMPLE)
        print(
            f"{fabric.cycle:>6} {offered:>8.3f} {accepted:>9.3f} "
            f"{awake:>22}   {share}"
        )
        last_generated, last_received = generated, received
        last_injected = injected
    print(
        "\nThe big burst wakes all four subnets within ~200 cycles;"
        "\nthe small one needs only two; idle phases gate subnets 1-3."
    )


if __name__ == "__main__":
    main()
