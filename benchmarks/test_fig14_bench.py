"""Bench: regenerate Figure 14 (64-core processor)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig14_64core import run_fig14


def test_fig14(benchmark):
    result = benchmark.pedantic(
        run_fig14, kwargs={"scale": bench_scale()}, rounds=1, iterations=1
    )
    table = save_result(result)
    single = {r["load"]: r for r in result.select(config="1NT-256b-PG")}
    multi = {r["load"]: r for r in result.select(config="2NT-128b-PG")}
    # Paper at load 0.03: ~50% CSC for 2NT-128b vs ~17% for 1NT-256b.
    assert multi[0.03]["csc_pct"] > 35
    assert single[0.03]["csc_pct"] < 30
    assert multi[0.03]["csc_pct"] > single[0.03]["csc_pct"] + 15
    # Benefits are smaller than the 256-core 4-subnet system (~74%).
    assert multi[0.03]["csc_pct"] < 70
    print(table)
