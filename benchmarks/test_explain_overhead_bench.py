"""Bench: explain-off fabric.step stays on the seed fast path.

The zero-overhead claim for the attribution hub mirrors telemetry's:

1. structurally, a fabric without ``REPRO_EXPLAIN`` carries no
   instance-attribute shadows — ``fabric.step`` *is* the plain class
   method, i.e. the identical bytecode the seed tree ran; and
2. empirically, a fabric that had a hub attached and then detached
   times within noise of a never-instrumented fabric (detach really
   does restore the fast path).

The attached-hub run is also timed so the cost of explain-on mode
stays visible in the benchmark output (it does strictly more work —
per-NI slot scans every cycle dominate — but must stay within a
bounded factor).
"""

from __future__ import annotations

import time

from repro.explain.hub import ExplainHub
from repro.noc.config import NocConfig, PowerGatingConfig
from repro.noc.multinoc import MultiNocFabric
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern

CYCLES = 4_000
LOAD = 0.15


def _config() -> NocConfig:
    return NocConfig(
        mesh_cols=4,
        mesh_rows=4,
        num_subnets=2,
        link_width_bits=128,
        voltage_v=0.625,
        gating=PowerGatingConfig(enabled=True),
    )


def _run(fabric: MultiNocFabric, cycles: int = CYCLES) -> None:
    source = SyntheticTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), LOAD, 128, seed=7
    )
    for _ in range(cycles):
        source.step(fabric.cycle)
        fabric.step()


def _timed(fabric: MultiNocFabric) -> float:
    started = time.perf_counter()
    _run(fabric)
    return time.perf_counter() - started


def test_explain_off_is_the_class_fast_path(monkeypatch):
    monkeypatch.delenv("REPRO_EXPLAIN", raising=False)
    fabric = MultiNocFabric(_config(), seed=7)
    assert fabric.explain is None
    assert "step" not in fabric.__dict__
    assert fabric.step.__func__ is MultiNocFabric.step
    assert fabric.report.__func__ is MultiNocFabric.report
    for ni in fabric.nis:
        assert "_assign_head" not in ni.__dict__
        assert "step" not in ni.__dict__
    for network in fabric.subnets:
        for name in ("inject", "send", "eject"):
            assert name not in network.__dict__


def test_explain_off_overhead(benchmark, monkeypatch):
    monkeypatch.delenv("REPRO_EXPLAIN", raising=False)

    def plain_run():
        _run(MultiNocFabric(_config(), seed=7))

    benchmark.pedantic(plain_run, rounds=1, iterations=1)

    # Paired timing: never-instrumented vs attached-then-detached.
    # Warm both paths once, then take the best of three to damp
    # scheduler noise; the detached fabric must be within noise of
    # the seed fast path (generous 1.5x bound — the structural check
    # above is the exact guarantee, this catches gross regressions).
    def detached_fabric() -> MultiNocFabric:
        fabric = MultiNocFabric(_config(), seed=7)
        ExplainHub(fabric, out_dir=None).attach().detach()
        assert "step" not in fabric.__dict__
        return fabric

    _timed(MultiNocFabric(_config(), seed=7))
    _timed(detached_fabric())
    plain = min(_timed(MultiNocFabric(_config(), seed=7))
                for _ in range(3))
    detached = min(_timed(detached_fabric()) for _ in range(3))
    assert detached < plain * 1.5, (
        f"detached fabric {detached:.3f}s vs plain {plain:.3f}s"
    )


def test_explain_on_cost_is_bounded(monkeypatch):
    monkeypatch.delenv("REPRO_EXPLAIN", raising=False)
    plain = min(_timed(MultiNocFabric(_config(), seed=7))
                for _ in range(2))

    def hooked_fabric() -> MultiNocFabric:
        fabric = MultiNocFabric(_config(), seed=7)
        ExplainHub(fabric, out_dir=None).attach()
        return fabric

    hooked = min(_timed(hooked_fabric()) for _ in range(2))
    # Explain-on does strictly more work (per-NI slot scans, probe
    # chains on every flit event); keep its cost visible and bounded.
    assert hooked < plain * 8.0, (
        f"attached fabric {hooked:.3f}s vs plain {plain:.3f}s"
    )
