"""Bench: regenerate Figure 12 (bursty ramp-up and decay)."""

from __future__ import annotations

from conftest import save_result

from repro.experiments.fig12_bursty import run_fig12


def test_fig12(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    table = save_result(result)

    def window(lo, hi, key):
        rows = [r for r in result.rows if lo < r["cycle"] <= hi]
        return sum(r[key] for r in rows) / len(rows)

    # Accepted throughput catches the 0.30 burst within ~200 cycles.
    assert window(1200, 1500, "accepted") > 0.25
    # During the big burst all four subnets carry load.
    for subnet in ("subnet0", "subnet1", "subnet2", "subnet3"):
        assert window(1150, 1500, subnet) > 0.10
    # The small burst (0.10) leaves the highest subnet ~unused.
    assert window(2100, 2500, "subnet3") < 0.10
    # After each burst traffic returns to subnet 0.
    assert window(1700, 2000, "subnet0") > 0.9
    assert window(2700, 3000, "subnet0") > 0.9
    print(table)
