"""Bench: regenerate Figure 11 (congestion metrics comparison)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig11_congestion_metrics import run_fig11

LOADS = (0.05, 0.20, 0.36)


def test_fig11(benchmark):
    result = benchmark.pedantic(
        run_fig11,
        kwargs={"scale": bench_scale(), "loads": LOADS},
        rounds=1,
        iterations=1,
    )
    table = save_result(result)

    def latency(variant, pattern, load):
        return result.select(
            variant=variant, pattern=pattern, load=load
        )[0]["latency"]

    def csc(variant, pattern, load):
        return result.select(
            variant=variant, pattern=pattern, load=load
        )[0]["csc_pct"]

    # RR pays heavy latency at low load (Single-NoC-like gating churn).
    assert latency("RR", "uniform", 0.05) > latency("BFM", "uniform", 0.05)
    # BFM exposes far more CSC than RR (panel d).
    assert csc("BFM", "uniform", 0.05) > csc("RR", "uniform", 0.05) + 15
    # BFM and Delay behave similarly (the paper picks BFM for cost).
    bfm = latency("BFM", "uniform", 0.20)
    delay = latency("Delay", "uniform", 0.20)
    assert abs(bfm - delay) < 0.6 * max(bfm, delay)
    # On the adversarial pattern, mid-load BFM must stay stable (no
    # blow-up), while IQOcc reacts too slowly.
    assert latency("BFM", "transpose", 0.20) < 250
    print(table)
