"""Bench: regenerate Table 2 (voltage/frequency operating points)."""

from __future__ import annotations

from conftest import save_result

from repro.experiments.table02_voltage import run_table02


def test_table02(benchmark):
    result = benchmark(run_table02)
    table = save_result(result)
    rows = {
        (r["router_width_bits"], r["voltage_v"]): r["frequency_ghz"]
        for r in result.rows
    }
    # Exact reproduction of the paper's Table 2.
    assert rows[(512, 0.750)] == 2.0
    assert rows[(512, 0.625)] == 1.4
    assert rows[(128, 0.750)] == 2.9
    assert rows[(128, 0.625)] == 2.0
    print(table)
