"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index), asserts the *shape* the paper reports,
and writes the rendered table to ``benchmarks/out/<name>.txt``.

Cycle counts are controlled by ``REPRO_BENCH_SCALE`` (default 0.35 —
quick but statistically meaningful).  Set it to 1.0 to reproduce the
EXPERIMENTS.md numbers exactly.

The on-disk sweep cache is disabled here so benchmarks always measure
real simulation time (a warm cache would report near-zero); sweeps
still parallelize across ``REPRO_JOBS`` workers, which is the shipped
execution path.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_NO_CACHE", "1")

OUT_DIR = Path(__file__).parent / "out"


def bench_scale(default: float = 0.35) -> float:
    """Scale factor for benchmark experiment runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def save_result(result) -> str:
    """Persist an ExperimentResult table; return the rendered text."""
    OUT_DIR.mkdir(exist_ok=True)
    table = result.to_table()
    (OUT_DIR / f"{result.name}.txt").write_text(table + "\n")
    return table


@pytest.fixture(scope="session")
def fig08_result():
    """Figure 8 runs once per session; Figure 9 reuses it."""
    from repro.experiments.fig08_applications import run_fig08

    return run_fig08(scale=bench_scale())
