"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index), asserts the *shape* the paper reports,
and writes the rendered table to ``benchmarks/out/<name>.txt``.  The
``.txt`` artifact carries a header comment recording the knobs that
shaped the run (``REPRO_BENCH_SCALE``, ``REPRO_JOBS``) and the elapsed
wall time, so a saved artifact is self-describing.

Next to each ``.txt`` the harness also writes a machine-readable
``BENCH_<name>.json`` record (wall time, simulated cycles/flits from
the :mod:`repro.perf.meters` work meter, scale, host fingerprint, git
SHA — schema in :mod:`repro.perf.bench`).  CI diffs these against the
committed ``benchmarks/baseline/`` set with
``python -m repro.perf compare`` as a soft regression gate; see
``docs/perf.md``.

Cycle counts are controlled by ``REPRO_BENCH_SCALE`` (default 0.35 —
quick but statistically meaningful).  Set it to 1.0 to reproduce the
EXPERIMENTS.md numbers exactly.

The on-disk sweep cache is disabled here so benchmarks always measure
real simulation time (a warm cache would report near-zero); sweeps
still parallelize across ``REPRO_JOBS`` workers, which is the shipped
execution path.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_NO_CACHE", "1")

OUT_DIR = Path(__file__).parent / "out"

#: Result names saved by the currently running benchmark test (reset
#: around every test by :func:`_bench_records`).
_CURRENT_SAVED: list[str] = []
_TEST_STARTED = 0.0


def bench_scale(default: float = 0.35) -> float:
    """Scale factor for benchmark experiment runs."""
    from repro.util import env

    return env.floating("REPRO_BENCH_SCALE", default)


def _jobs() -> int:
    from repro.experiments.runner import env_jobs

    return env_jobs()


def save_result(result) -> str:
    """Persist an ExperimentResult table; return the rendered text.

    The on-disk artifact gets a provenance header comment; the returned
    text is the bare table, which the benchmarks assert on.
    """
    OUT_DIR.mkdir(exist_ok=True)
    table = result.to_table()
    elapsed = time.perf_counter() - _TEST_STARTED
    header = (
        f"# REPRO_BENCH_SCALE={bench_scale():g} REPRO_JOBS={_jobs()} "
        f"elapsed={elapsed:.2f}s\n"
    )
    (OUT_DIR / f"{result.name}.txt").write_text(header + table + "\n")
    _CURRENT_SAVED.append(result.name)
    return table


@pytest.fixture(autouse=True)
def _bench_records():
    """Write ``BENCH_<name>.json`` for every result a test saved.

    Wall time is the whole test's (the simulation dominates it); the
    simulated cycle/flit counts are the delta of the process-lifetime
    work meter across the test, which includes work shipped back from
    sweep pool workers.
    """
    global _TEST_STARTED
    from repro.perf.meters import WORK

    _CURRENT_SAVED.clear()
    cycles_before, flits_before = WORK.snapshot()
    _TEST_STARTED = time.perf_counter()
    yield
    elapsed = time.perf_counter() - _TEST_STARTED
    if not _CURRENT_SAVED:
        return
    from repro.perf.bench import make_bench_record, write_bench_record

    cycles_after, flits_after = WORK.snapshot()
    for name in _CURRENT_SAVED:
        record = make_bench_record(
            name=name,
            wall_seconds=max(elapsed, 1e-9),
            scale=bench_scale(),
            jobs=_jobs(),
            sim_cycles=cycles_after - cycles_before,
            sim_flits=flits_after - flits_before,
            repo_dir=str(Path(__file__).resolve().parent.parent),
        )
        write_bench_record(str(OUT_DIR), record)


@pytest.fixture(scope="session")
def fig08_result():
    """Figure 8 runs once per session; Figure 9 reuses it."""
    from repro.experiments.fig08_applications import run_fig08

    return run_fig08(scale=bench_scale())
