"""Bench: regenerate Figure 7 (power breakdown + voltage scaling)."""

from __future__ import annotations

from conftest import save_result

from repro.experiments.fig07_power_breakdown import run_fig07


def test_fig07(benchmark):
    result = benchmark(run_fig07)
    table = save_result(result)
    single, multi_hi, multi_lo = result.rows
    # Paper shape: ~70W > ~65W > ~48W stacks.
    assert single["total_w"] > multi_hi["total_w"] > multi_lo["total_w"]
    assert 60 < single["total_w"] < 80
    assert 40 < multi_lo["total_w"] < 58
    # Crossbar: one wide crossbar costs more than four narrow ones.
    assert single["crossbar"] > multi_hi["crossbar"]
    # Control logic is duplicated across subnets.
    assert multi_hi["control"] > single["control"]
    # Buffers are roughly design-independent (constant aggregate bits).
    assert abs(single["buffer"] - multi_hi["buffer"]) < 0.35 * single["buffer"]
    print(table)
