"""Bench: regenerate Figure 9 (compensated sleep cycles, apps)."""

from __future__ import annotations

from conftest import save_result

from repro.experiments.fig09_csc import run_fig09


def test_fig09(benchmark, fig08_result):
    result = benchmark.pedantic(
        run_fig09,
        kwargs={"fig08_result": fig08_result},
        rounds=1,
        iterations=1,
    )
    table = save_result(result)
    light_multi = result.select(workload="Light", config="4NT-128b-PG")[0]
    light_single = result.select(workload="Light", config="1NT-512b-PG")[0]
    heavy_multi = result.select(workload="Heavy", config="4NT-128b-PG")[0]
    # Paper: ~70% CSC for Multi-NoC on Light, near zero for Single-NoC.
    assert light_multi["csc_pct"] > 50
    assert light_single["csc_pct"] < 20
    # CSC shrinks as network demand grows.
    assert heavy_multi["csc_pct"] < light_multi["csc_pct"]
    print(table)
