"""Bench: regenerate Figure 2 (need for a high-bandwidth network)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig02_bandwidth import run_fig02


def test_fig02(benchmark):
    result = benchmark.pedantic(
        run_fig02, kwargs={"scale": bench_scale()}, rounds=1, iterations=1
    )
    table = save_result(result)
    light = {r["config"]: r for r in result.select(workload="Light")}
    heavy = {r["config"]: r for r in result.select(workload="Heavy")}
    # Paper: Heavy loses ~41% on the under-provisioned 128b network;
    # Light is largely insensitive.  Shape check: a big Heavy gap, a
    # small Light gap.
    heavy_loss = 1.0 - heavy["1NT-128b"]["normalized_perf"]
    light_loss = 1.0 - light["1NT-128b"]["normalized_perf"]
    assert heavy_loss > 0.20, f"expected deep Heavy loss, got {heavy_loss}"
    assert light_loss < 0.12, f"Light should barely lose: {light_loss}"
    assert heavy_loss > light_loss + 0.10
    print(table)
