"""Bench: regenerate Figure 6 (throughput/latency vs subnet count)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig06_subnet_scaling import run_fig06


def test_fig06(benchmark):
    result = benchmark.pedantic(
        run_fig06, kwargs={"scale": bench_scale()}, rounds=1, iterations=1
    )
    table = save_result(result)
    by_subnets = {r["num_subnets"]: r for r in result.rows}
    # Paper: 4 subnets sustain roughly Single-NoC throughput; 8 lose.
    t1 = by_subnets[1]["saturation_throughput"]
    t4 = by_subnets[4]["saturation_throughput"]
    t8 = by_subnets[8]["saturation_throughput"]
    assert t4 > 0.8 * t1
    assert t8 < t4
    # Low-load latency rises with subnet count (serialization).
    latencies = [by_subnets[n]["low_load_latency"] for n in (1, 2, 4, 8)]
    assert latencies == sorted(latencies)
    assert latencies[-1] - latencies[0] < 25
    print(table)
