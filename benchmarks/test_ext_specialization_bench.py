"""Bench: class-specialized subnets vs Catnap (extension, paper §7.2)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.ext_specialization import run_ext_class_partition


def test_ext_class_partition(benchmark):
    result = benchmark.pedantic(
        run_ext_class_partition,
        kwargs={"scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    table = save_result(result)
    catnap = result.select(policy="catnap")[0]
    partition = result.select(policy="class_partition")[0]
    # The paper's §7.2 argument: specializing subnets per message class
    # forfeits Catnap's sleep opportunities and costs performance.
    assert catnap["csc_pct"] > partition["csc_pct"] + 10
    assert partition["normalized_perf"] < 1.02
    print(table)
