"""Bench: regenerate Figure 13 (IR thresholds vs traffic pattern).

The paper's qualitative claim: the usable IR threshold depends on the
traffic pattern — uniform random tolerates a threshold ~2.5x higher
than transpose.  In this simulator the absolute crossover sits ~0.6x
lower (uniform safe through ~0.12, transpose only ~0.04) because our
per-subnet saturation point is slightly earlier; the *ratio* between
patterns is preserved (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig13_ir_thresholds import run_fig13

THRESHOLDS = (0.04, 0.12, 0.20)
LOADS = (0.12, 0.28)


def test_fig13(benchmark):
    result = benchmark.pedantic(
        run_fig13,
        kwargs={
            "scale": bench_scale(),
            "thresholds": THRESHOLDS,
            "loads": LOADS,
        },
        rounds=1,
        iterations=1,
    )
    table = save_result(result)

    def latency(pattern, threshold, load):
        return result.select(
            pattern=pattern, threshold=threshold, load=load
        )[0]["latency"]

    # Uniform random tolerates a mid threshold: escalation still opens
    # enough subnets before any of them saturates.
    assert latency("uniform", 0.12, 0.28) < 2.5 * latency(
        "uniform", 0.04, 0.28
    )
    # ... but the highest threshold breaks even uniform random.
    assert latency("uniform", 0.20, 0.28) > 3 * latency(
        "uniform", 0.04, 0.28
    )
    # Transpose saturates much earlier: the mid threshold that uniform
    # tolerates already blows transpose up at a modest load.
    assert latency("transpose", 0.12, 0.12) > 2.5 * latency(
        "transpose", 0.04, 0.12
    )
    # The safe thresholds differ by pattern — the paper's argument for
    # a pattern-independent metric (BFM).
    uniform_ok = latency("uniform", 0.12, 0.12)
    transpose_broken = latency("transpose", 0.12, 0.12)
    assert transpose_broken > 2 * uniform_ok
    print(table)
