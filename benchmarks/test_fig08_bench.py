"""Bench: regenerate Figure 8 (application power + performance) and
the paper's headline result (-44% power for ~5% performance)."""

from __future__ import annotations

from conftest import save_result

from repro.experiments.fig08_applications import headline_summary


def test_fig08(benchmark, fig08_result):
    result = benchmark(lambda: fig08_result)
    table = save_result(result)
    summary = headline_summary(result)
    # Headline shape: Multi-NoC-PG saves a large fraction of network
    # power (paper 44%) at a modest performance cost (paper ~5%).
    assert 25 < summary["power_saving_pct"] < 70
    assert summary["performance_cost_pct"] < 15
    # Static power ~equal for the two non-gated flagship designs.
    single = result.select(workload="Average", config="1NT-512b")[0]
    multi = result.select(workload="Average", config="4NT-128b")[0]
    assert abs(single["static_w"] - multi["static_w"]) < 6
    # Gating barely helps Single-NoC but transforms Multi-NoC.
    single_pg = result.select(workload="Average", config="1NT-512b-PG")[0]
    multi_pg = result.select(workload="Average", config="4NT-128b-PG")[0]
    single_saving = single["static_w"] - single_pg["static_w"]
    multi_saving = multi["static_w"] - multi_pg["static_w"]
    assert multi_saving > 4 * max(single_saving, 0.5)
    print(table)
    print("headline:", summary)


def test_fig08_light_perf_story(benchmark, fig08_result):
    """Single-NoC-PG pays ~10% on Light; Catnap pays little."""
    result = benchmark(lambda: fig08_result)
    light = {r["config"]: r for r in result.select(workload="Light")}
    single_pg_loss = 1 - light["1NT-512b-PG"]["normalized_perf"]
    catnap_loss = 1 - light["4NT-128b-PG"]["normalized_perf"]
    assert single_pg_loss > 0.05
    assert catnap_loss < single_pg_loss
