"""Bench: regenerate Figure 10 (uniform random sweep, gating on/off)."""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.fig10_uniform_pg import run_fig10


def test_fig10(benchmark):
    result = benchmark.pedantic(
        run_fig10, kwargs={"scale": bench_scale()}, rounds=1, iterations=1
    )
    table = save_result(result)

    def at(config, load):
        return result.select(config=config, load=load)[0]

    low = 0.03
    multi_pg = at("4NT-128b-PG", low)
    single_pg = at("1NT-512b-PG", low)
    # Paper (a)+(b): at low load Multi-PG exposes ~74% CSC and a small
    # fraction of Single-NoC's power; Single-PG exposes ~10% CSC.
    assert multi_pg["csc_pct"] > 55
    assert single_pg["csc_pct"] < 25
    assert multi_pg["power_w"] < 0.6 * single_pg["power_w"]
    # (c) throughput at saturation unaffected by gating.
    high = result.rows and max(r["load"] for r in result.rows)
    plain = at("4NT-128b", high)
    gated = at("4NT-128b-PG", high)
    assert abs(gated["throughput"] - plain["throughput"]) < 0.2 * max(
        plain["throughput"], 0.01
    )
    # (d) Single-NoC-PG pays latency at low load.
    single = at("1NT-512b", low)
    assert single_pg["latency"] > single["latency"] + 3
    print(table)
