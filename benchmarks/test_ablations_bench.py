"""Bench: ablations of Catnap's design constants (DESIGN.md extras).

Each sweep regenerates the sensitivity data behind the paper's fixed
constants.  Assertions are deliberately loose — they pin the direction
of each trade-off, not exact values.
"""

from __future__ import annotations

from conftest import bench_scale, save_result

from repro.experiments.ablations import (
    run_ablation_bfm_threshold,
    run_ablation_idle_detect,
    run_ablation_rcs_period,
    run_ablation_region_divisions,
    run_ablation_wakeup_delay,
)

LOW, MID = 0.03, 0.22


def _at(result, knob, value, load):
    return next(
        r for r in result.rows if r[knob] == value and r["load"] == load
    )


def test_ablation_bfm_threshold(benchmark):
    result = benchmark.pedantic(
        run_ablation_bfm_threshold,
        kwargs={"scale": bench_scale(), "thresholds": (3, 9, 15)},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # A tiny threshold escalates eagerly: more subnets awake, less CSC.
    eager = _at(result, "threshold", 3, LOW)
    default = _at(result, "threshold", 9, LOW)
    assert eager["csc_pct"] <= default["csc_pct"] + 3
    # A huge threshold postpones escalation: mid-load latency suffers
    # relative to the default.
    lax = _at(result, "threshold", 15, MID)
    assert lax["latency"] >= default["latency"] * 0.5


def test_ablation_rcs_period(benchmark):
    result = benchmark.pedantic(
        run_ablation_rcs_period,
        kwargs={"scale": bench_scale(), "periods": (1, 6, 48)},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # A very slow OR network hurts mid-load latency vs the paper's 6.
    slow = _at(result, "period", 48, MID)
    paper = _at(result, "period", 6, MID)
    assert slow["latency"] >= paper["latency"] * 0.8


def test_ablation_idle_detect(benchmark):
    result = benchmark.pedantic(
        run_ablation_idle_detect,
        kwargs={"scale": bench_scale(), "values": (1, 4, 32)},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    aggressive = _at(result, "idle_detect", 1, LOW)
    lazy = _at(result, "idle_detect", 32, LOW)
    # Waiting 32 idle cycles forfeits sleep time at low load.
    assert aggressive["csc_pct"] >= lazy["csc_pct"]


def test_ablation_region_divisions(benchmark):
    result = benchmark.pedantic(
        run_ablation_region_divisions,
        kwargs={"scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # A global OR (divisions=1) wakes everything everywhere: CSC at low
    # load can only be <= the quadrant design's.
    global_or = _at(result, "divisions", 1, LOW)
    quadrants = _at(result, "divisions", 2, LOW)
    assert global_or["csc_pct"] <= quadrants["csc_pct"] + 5


def test_ablation_wakeup_delay(benchmark):
    result = benchmark.pedantic(
        run_ablation_wakeup_delay,
        kwargs={"scale": bench_scale(), "delays": (2, 10, 20)},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    fast = _at(result, "wakeup", 2, LOW)
    slow = _at(result, "wakeup", 20, LOW)
    assert slow["latency"] >= fast["latency"] - 1.0
