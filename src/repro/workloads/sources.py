"""Serving-shaped traffic generators (LLM, multi-tenant, diurnal).

Each source follows the open-loop source protocol of
:mod:`repro.traffic.generators` — ``step(cycle)``, ``current_load``,
and the ``next_offer_cycle`` horizon that lets the skip backend jump
idle spans byte-identically (at any cycle the horizon skips, ``step``
returns before touching any RNG).  All randomness flows through
:class:`repro.util.rng.DeterministicRng` substreams, so schedules are
digest-identical across jobs=1 vs jobs=N and dense vs skip.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.noc.backend import NEVER
from repro.noc.config import SYNTHETIC_PACKET_BITS
from repro.noc.flit import MessageClass, Packet
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern
from repro.util.rng import DeterministicRng
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "DEFAULT_DIURNAL_SHAPE",
    "LlmServingSource",
    "MultiTenantSource",
    "DiurnalSource",
]

#: Hour-of-day load multipliers of a serving diurnal curve: a morning
#: ramp, an evening peak, and a dead-of-night trough at exactly zero so
#: gated subnets ride out full sleep/wake seasons.
DEFAULT_DIURNAL_SHAPE = (
    0.35, 0.20, 0.10, 0.00, 0.00, 0.05,
    0.15, 0.30, 0.50, 0.65, 0.75, 0.80,
    0.85, 0.80, 0.75, 0.70, 0.75, 0.85,
    0.95, 1.00, 0.95, 0.80, 0.60, 0.45,
)


class LlmServingSource:
    """LLM-inference accelerator traffic: prefill/decode/gap phases.

    Models the memory traffic of a batched transformer serving loop on
    an accelerator fabric: a short *prefill* burst (all compute nodes
    stream large reads/writes to their memory controller at a high
    rate), a long *decode* tail (one token at a time — small packets at
    a low rate), then an idle *gap* until the next batch arrives.  The
    result is the bursty all-to-memory-controller pattern that stresses
    Catnap's gating policies far harder than uniform-random traffic.

    ``batch`` widens the prefill burst (``prefill_cycles`` defaults to
    ``8 * batch``), ``seq`` lengthens the decode tail (``seq *
    token_cycles`` cycles).  Memory controllers sit at ``mcs`` evenly
    spaced mesh nodes; every other node sends only to its controller.
    """

    def __init__(
        self,
        fabric,
        batch: int = 8,
        seq: int = 64,
        mcs: int = 4,
        prefill_rate: float = 0.35,
        decode_rate: float = 0.06,
        prefill_bits: int = SYNTHETIC_PACKET_BITS,
        decode_bits: int = 128,
        token_cycles: int = 4,
        prefill_cycles: int | None = None,
        gap: int = 64,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        check_positive("batch", batch)
        check_positive("seq", seq)
        check_positive("mcs", mcs)
        check_positive("token_cycles", token_cycles)
        check_in_range("prefill_rate", prefill_rate, 0.0, 1.0)
        check_in_range("decode_rate", decode_rate, 0.0, 1.0)
        check_in_range("scale", scale, 0.0, 1.0)
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        num_nodes = fabric.mesh.num_nodes
        if mcs > num_nodes:
            raise ValueError(
                f"mcs ({mcs}) exceeds mesh nodes ({num_nodes})"
            )
        self.fabric = fabric
        self.batch = batch
        self.seq = seq
        self.prefill_rate = prefill_rate * scale
        self.decode_rate = decode_rate * scale
        self.prefill_bits = prefill_bits
        self.decode_bits = decode_bits
        self.prefill_cycles = (
            prefill_cycles if prefill_cycles is not None else 8 * batch
        )
        check_positive("prefill_cycles", self.prefill_cycles)
        self.decode_cycles = seq * token_cycles
        self.gap = gap
        self.period = self.prefill_cycles + self.decode_cycles + gap
        self.mc_nodes = tuple(
            (k * num_nodes) // mcs for k in range(mcs)
        )
        self._is_mc = frozenset(self.mc_nodes)
        self.rng = DeterministicRng(seed, "workloads/llm")
        self.packets_generated = 0

    def _phase_rate_bits(self, cycle: int) -> tuple[float, int]:
        offset = cycle % self.period
        if offset < self.prefill_cycles:
            return self.prefill_rate, self.prefill_bits
        if offset < self.prefill_cycles + self.decode_cycles:
            return self.decode_rate, self.decode_bits
        return 0.0, 0

    def phase(self, cycle: int) -> str:
        """``"prefill"``, ``"decode"``, or ``"gap"`` at ``cycle``."""
        offset = cycle % self.period
        if offset < self.prefill_cycles:
            return "prefill"
        if offset < self.prefill_cycles + self.decode_cycles:
            return "decode"
        return "gap"

    def current_load(self, cycle: int) -> float:
        """Offered load (packets per sending node per cycle)."""
        return self._phase_rate_bits(cycle)[0]

    def next_offer_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` with a positive injection rate.

        During a gap (or with both rates zero) ``step`` returns before
        touching the RNG, so the skip backend may jump straight to the
        next batch arrival.
        """
        if self._phase_rate_bits(cycle)[0] > 0.0:
            return cycle
        if self.prefill_rate <= 0.0 and self.decode_rate <= 0.0:
            return NEVER
        offset = cycle % self.period
        next_period_start = cycle - offset + self.period
        if (
            self.decode_rate > 0.0
            and offset < self.prefill_cycles + self.decode_cycles
        ):
            # Inside a zero-rate prefill; decode still injects.
            return cycle - offset + self.prefill_cycles
        if self.prefill_rate > 0.0:
            return next_period_start
        return next_period_start + self.prefill_cycles

    def step(self, cycle: int) -> None:
        """Possibly inject one MC-bound packet per compute node."""
        rate, bits = self._phase_rate_bits(cycle)
        if rate <= 0.0:
            return
        fabric = self.fabric
        random = self.rng.random
        mc_nodes = self.mc_nodes
        mcs = len(mc_nodes)
        for node in range(fabric.mesh.num_nodes):
            if node in self._is_mc:
                continue
            if random() >= rate:
                continue
            fabric.offer(
                Packet(
                    src=node,
                    dst=mc_nodes[node % mcs],
                    size_bits=bits,
                    message_class=MessageClass.REQUEST,
                )
            )
            self.packets_generated += 1


class MultiTenantSource:
    """N tenants sharing the fabric, each with its own offered rate.

    Every tenant draws from an independent RNG substream
    (``workloads/tenant<i>``) and tags its packets, so per-tenant
    latency/QoS lands in ``FabricReport.tenants`` and a zero-rate
    tenant consumes no randomness — schedules stay digest-identical
    when rates are scaled, including to zero.
    """

    def __init__(
        self,
        fabric,
        rates: Sequence[float],
        pattern: str = "uniform",
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        if not rates:
            raise ValueError("at least one tenant rate is required")
        check_in_range("scale", scale, 0.0, 1.0)
        for index, rate in enumerate(rates):
            check_in_range(f"tenant {index} rate", rate, 0.0, 1.0)
        self.fabric = fabric
        self.rates = tuple(float(rate) for rate in rates)
        self.scale = scale
        self.packet_bits = packet_bits
        self.pattern = make_pattern(pattern, fabric.mesh)
        self.rngs = tuple(
            DeterministicRng(seed, f"workloads/tenant{index}")
            for index in range(len(self.rates))
        )
        self.packets_generated = 0

    def current_load(self, cycle: int) -> float:
        """Total offered load summed over tenants."""
        return sum(self.rates) * self.scale

    def next_offer_cycle(self, cycle: int) -> int:
        """``cycle`` while any tenant injects; ``NEVER`` otherwise."""
        if any(rate * self.scale > 0.0 for rate in self.rates):
            return cycle
        return NEVER

    def step(self, cycle: int) -> None:
        """One Bernoulli draw per (tenant, node) this cycle."""
        fabric = self.fabric
        pattern = self.pattern
        num_nodes = fabric.mesh.num_nodes
        for tenant, (rate, rng) in enumerate(zip(self.rates, self.rngs)):
            probability = rate * self.scale
            if probability <= 0.0:
                continue
            random = rng.random
            for node in range(num_nodes):
                if random() >= probability:
                    continue
                dst = pattern.destination(node, rng)
                if dst is None:
                    continue
                fabric.offer(
                    Packet(
                        src=node,
                        dst=dst,
                        size_bits=self.packet_bits,
                        message_class=MessageClass.SYNTHETIC,
                        tenant=tenant,
                    )
                )
                self.packets_generated += 1


class DiurnalSource(SyntheticTrafficSource):
    """Bernoulli injector modulated by an hour-of-day load curve.

    ``cycles_per_hour`` maps simulated cycles onto wall-clock hours;
    the offered load at any cycle is ``base * shape[hour % 24]``.
    Zero-load hours (the default shape's dead of night) are whole
    seasons with no injection at all, which is what drives gated
    subnets through complete sleep/wake cycles — and what the skip
    backend jumps over via :meth:`next_offer_cycle`.
    """

    def __init__(
        self,
        fabric,
        pattern: str = "uniform",
        base: float = 0.08,
        cycles_per_hour: int = 2000,
        shape: Sequence[float] = DEFAULT_DIURNAL_SHAPE,
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        check_positive("cycles_per_hour", cycles_per_hour)
        check_in_range("scale", scale, 0.0, 1.0)
        if len(shape) != 24:
            raise ValueError(
                f"shape must list 24 hourly multipliers, got {len(shape)}"
            )
        for hour, multiplier in enumerate(shape):
            check_in_range(f"shape[{hour}]", multiplier, 0.0, 1.0)
        super().__init__(
            fabric,
            make_pattern(pattern, fabric.mesh),
            base * scale,
            packet_bits,
            seed,
        )
        self.cycles_per_hour = cycles_per_hour
        self.shape = tuple(float(multiplier) for multiplier in shape)

    def current_load(self, cycle: int) -> float:
        hour = (cycle // self.cycles_per_hour) % 24
        return self.load * self.shape[hour]

    def next_offer_cycle(self, cycle: int) -> int:
        """Start of the next hour with a positive load (or ``NEVER``)."""
        if self.current_load(cycle) > 0.0:
            return cycle
        if self.load <= 0.0:
            return NEVER
        hour = cycle // self.cycles_per_hour
        for ahead in range(1, 25):
            if self.shape[(hour + ahead) % 24] > 0.0:
                return (hour + ahead) * self.cycles_per_hour
        return NEVER
