"""Sweep executor for ``kind="workload"`` points.

Imported lazily by :mod:`repro.experiments.runner` (mirrors the fault
executor): workload-free sweeps never load this package.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.noc.config import SYNTHETIC_PACKET_BITS, NocConfig
from repro.noc.multinoc import FabricReport, MultiNocFabric
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.perf import meters
from repro.power.network_power import compute_network_power
from repro.workloads.spec import make_workload_source, parse_workload_spec

__all__ = ["run_serving_point", "report_digest", "sleep_fractions"]


def report_digest(report: FabricReport) -> str:
    """Canonical sha256 of a fabric report.

    The digest covers the full report — config, cycles, activity
    counters, gating stats, latency/throughput metrics, and per-tenant
    QoS — serialized deterministically, so byte-identical simulations
    (jobs=1 vs jobs=N, dense vs skip) produce the identical hex string
    and any divergence is detectable with one comparison.
    """
    payload = json.dumps(asdict(report), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def sleep_fractions(report: FabricReport) -> list[float]:
    """Per-subnet fraction of router-cycles spent asleep."""
    return [
        stats.sleep_cycles / stats.total_cycles
        if stats.total_cycles
        else 0.0
        for stats in report.gating
    ]


def run_serving_point(
    config: NocConfig,
    workload: str,
    phases: SimulationPhases,
    seed: int,
    packet_bits: int = SYNTHETIC_PACKET_BITS,
) -> dict:
    """One (config, workload) open-loop serving measurement row.

    The row carries the standard synthetic columns plus ``tenants``
    (per-tenant QoS from ``FabricReport.tenants``) and ``sleep_frac``
    (per-subnet sleep fraction), which the obs rollup joins into
    campaign reports.
    """
    spec = parse_workload_spec(workload)
    fabric = MultiNocFabric(config, seed=seed)
    source = make_workload_source(
        fabric, spec, seed=seed, packet_bits=packet_bits
    )
    report = run_open_loop(fabric, source, phases)
    meters.note_report(report)
    power = compute_network_power(report)
    return {
        "config": config.name,
        "policy": config.selection_policy,
        "workload": spec.kind,
        "workload_spec": spec.to_text(),
        "load": report.offered_rate,
        "latency": report.avg_packet_latency,
        "network_latency": report.avg_network_latency,
        "throughput": report.throughput_packets,
        "throughput_flits": report.throughput_flits,
        "csc_pct": 100.0 * report.csc_fraction,
        "power_w": power.total_watts,
        "dynamic_w": power.dynamic_watts,
        "static_w": power.static_watts,
        "subnet_share": report.subnet_injection_share,
        "latency_p50": report.latency_p50,
        "latency_p95": report.latency_p95,
        "latency_p99": report.latency_p99,
        "avg_hops_per_subnet": report.avg_hops_per_subnet,
        "tenants": report.tenants,
        "sleep_frac": sleep_fractions(report),
    }
