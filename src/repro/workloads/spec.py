"""The ``--workload`` / ``REPRO_WORKLOADS`` spec grammar.

A workload spec is ``kind`` optionally followed by ``:key=value``
pairs separated by ``;``::

    llm:batch=8;seq=64;mcs=4
    tenants:rates=0.06,0.03,0.01;pattern=uniform
    diurnal:base=0.08;cycles_per_hour=2000
    trace:results/workloads/run.ctr

Parsing is strict — an unknown kind or key, a malformed value, or an
out-of-range number raises :class:`ValueError` — so the experiments
CLI can validate ``--workload`` at argument-parse time and forked
sweep workers never see a bad spec.  :meth:`WorkloadSpec.to_text`
produces a canonical form (sorted keys, defaults filled in), which is
what drivers put in ``PointSpec.workload`` so textually different
spellings of different measurements never collide in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.config import SYNTHETIC_PACKET_BITS

__all__ = [
    "DEFAULT_TENANT_MIX",
    "WorkloadSpec",
    "parse_workload_spec",
    "make_workload_source",
]

#: Default serving mix of the ``ext_serving`` driver (and of
#: ``REPRO_WORKLOADS`` when unset): three tenants at 6%/3%/1% load.
DEFAULT_TENANT_MIX = "tenants:rates=0.06,0.03,0.01"

# Per-kind parameter tables: name -> (parser, default).  ``None``
# defaults are computed downstream (e.g. llm prefill_cycles).
def _float_list(text: str) -> tuple[float, ...]:
    values = tuple(float(part) for part in text.split(",") if part != "")
    if not values:
        raise ValueError("expected a comma-separated list of numbers")
    return values


def _shape(text: str) -> tuple[float, ...]:
    values = _float_list(text)
    if len(values) != 24:
        raise ValueError(
            f"shape must list 24 hourly multipliers, got {len(values)}"
        )
    return values


_PARAMS: dict[str, dict[str, tuple]] = {
    "llm": {
        "batch": (int, 8),
        "seq": (int, 64),
        "mcs": (int, 4),
        "prefill_rate": (float, 0.35),
        "decode_rate": (float, 0.06),
        "prefill_bits": (int, SYNTHETIC_PACKET_BITS),
        "decode_bits": (int, 128),
        "token_cycles": (int, 4),
        "prefill_cycles": (int, None),
        "gap": (int, 64),
        "scale": (float, 1.0),
    },
    "tenants": {
        "rates": (_float_list, (0.06, 0.03, 0.01)),
        "pattern": (str, "uniform"),
        "bits": (int, SYNTHETIC_PACKET_BITS),
        "scale": (float, 1.0),
    },
    "diurnal": {
        "base": (float, 0.08),
        "pattern": (str, "uniform"),
        "cycles_per_hour": (int, 2000),
        "shape": (_shape, None),
        "bits": (int, SYNTHETIC_PACKET_BITS),
        "scale": (float, 1.0),
    },
}


def _format_value(value) -> str:
    if isinstance(value, tuple):
        return ",".join(_format_value(entry) for entry in value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class WorkloadSpec:
    """One parsed workload description.

    ``params`` holds every non-``None`` parameter (defaults included)
    as a sorted tuple of pairs, so equal specs compare and hash equal.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        """Parameter lookup by name."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def to_text(self) -> str:
        """Canonical spec text (round-trips through the parser)."""
        if self.kind == "trace":
            return f"trace:{self.get('path')}"
        if not self.params:
            return self.kind
        body = ";".join(
            f"{name}={_format_value(value)}"
            for name, value in self.params
        )
        return f"{self.kind}:{body}"

    def scaled(self, multiplier: float) -> "WorkloadSpec":
        """Copy with the ``scale`` parameter multiplied.

        The diurnal-curve hook of the ``ext_serving`` driver: the same
        base mix replayed at each hour's load multiplier.  Trace
        workloads replay fixed packet sequences and cannot be scaled.
        """
        if self.kind == "trace":
            raise ValueError("trace workloads cannot be scaled")
        if multiplier < 0.0:
            raise ValueError(f"scale multiplier must be >= 0: {multiplier}")
        scale = float(self.get("scale", 1.0)) * multiplier
        params = tuple(
            (name, scale if name == "scale" else value)
            for name, value in self.params
        )
        return WorkloadSpec(self.kind, params)


def parse_workload_spec(text: str) -> WorkloadSpec:
    """Parse and validate one workload spec string."""
    text = text.strip()
    if not text:
        raise ValueError("empty workload spec")
    kind, _, body = text.partition(":")
    kind = kind.strip()
    if kind == "trace":
        path = body.strip()
        if not path:
            raise ValueError("trace workload needs a path: trace:PATH")
        return WorkloadSpec("trace", (("path", path),))
    if kind not in _PARAMS:
        raise ValueError(
            f"unknown workload kind {kind!r}; choose from "
            f"{sorted(_PARAMS)} or trace:PATH"
        )
    table = _PARAMS[kind]
    values = {name: default for name, (_, default) in table.items()}
    if body.strip():
        for item in body.split(";"):
            item = item.strip()
            if not item:
                continue
            name, sep, raw = item.partition("=")
            name = name.strip()
            if not sep or not raw.strip():
                raise ValueError(
                    f"malformed workload parameter {item!r} "
                    f"(expected key=value)"
                )
            if name not in table:
                raise ValueError(
                    f"unknown {kind} parameter {name!r}; choose from "
                    f"{sorted(table)}"
                )
            parser = table[name][0]
            try:
                values[name] = parser(raw.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad value for {kind} parameter {name}: {exc}"
                ) from None
    params = tuple(
        (name, value)
        for name, value in sorted(values.items())
        if value is not None
    )
    return WorkloadSpec(kind, params)


def make_workload_source(
    fabric,
    spec: "WorkloadSpec | str",
    seed: int = 7,
    packet_bits: int = SYNTHETIC_PACKET_BITS,
):
    """Instantiate the traffic source a spec describes, on ``fabric``.

    ``packet_bits`` is only a fallback: specs carrying their own
    ``bits``/``*_bits`` parameters always win.  Trace workloads sniff
    the file magic and open either the streaming binary format or the
    text format of :mod:`repro.traffic.trace`.
    """
    from repro.workloads.sources import (
        DEFAULT_DIURNAL_SHAPE,
        DiurnalSource,
        LlmServingSource,
        MultiTenantSource,
    )

    if isinstance(spec, str):
        spec = parse_workload_spec(spec)
    if spec.kind == "llm":
        return LlmServingSource(
            fabric,
            batch=spec.get("batch"),
            seq=spec.get("seq"),
            mcs=spec.get("mcs"),
            prefill_rate=spec.get("prefill_rate"),
            decode_rate=spec.get("decode_rate"),
            prefill_bits=spec.get("prefill_bits"),
            decode_bits=spec.get("decode_bits"),
            token_cycles=spec.get("token_cycles"),
            prefill_cycles=spec.get("prefill_cycles"),
            gap=spec.get("gap"),
            scale=spec.get("scale"),
            seed=seed,
        )
    if spec.kind == "tenants":
        return MultiTenantSource(
            fabric,
            rates=spec.get("rates"),
            pattern=spec.get("pattern"),
            packet_bits=spec.get("bits", packet_bits),
            scale=spec.get("scale"),
            seed=seed,
        )
    if spec.kind == "diurnal":
        return DiurnalSource(
            fabric,
            pattern=spec.get("pattern"),
            base=spec.get("base"),
            cycles_per_hour=spec.get("cycles_per_hour"),
            shape=spec.get("shape", DEFAULT_DIURNAL_SHAPE),
            packet_bits=spec.get("bits", packet_bits),
            scale=spec.get("scale"),
            seed=seed,
        )
    if spec.kind == "trace":
        return open_trace_source(fabric, str(spec.get("path")))
    raise ValueError(f"unknown workload kind {spec.kind!r}")


def open_trace_source(fabric, path: str):
    """Trace replay source for either trace format, sniffed by magic."""
    from repro.traffic.trace import TraceSource, TrafficTrace
    from repro.workloads.stream import (
        StreamingTraceReader,
        StreamingTraceSource,
        is_stream_trace,
    )

    if is_stream_trace(path):
        return StreamingTraceSource(fabric, StreamingTraceReader(path))
    return TraceSource(fabric, TrafficTrace.load(path))
