"""``python -m repro.workloads`` — record / info / replay / gen.

Usage::

    python -m repro.workloads record --workload llm:batch=8 \\
        --config multi4 --cycles 20000 --out run.ctr
    python -m repro.workloads gen --workload tenants:rates=0.1,0.1 \\
        --config small --cycles 500000 --packets 1000000 --out big.ctr
    python -m repro.workloads info big.ctr
    python -m repro.workloads replay big.ctr --config small \\
        --backend skip --rss-limit-mb 200

``record`` simulates a fabric while streaming everything the workload
offers to disk; ``gen`` synthesizes the same trace without simulating
the network (fast enough for million-packet CI smokes); ``info``
summarizes a file from its chunk headers alone; ``replay`` streams a
trace through a fresh fabric and prints the canonical report digest —
byte-identical across ``dense`` and ``skip`` backends — plus the peak
RSS so bounded-memory replay is enforceable in CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.noc.backend import NEVER, backend_names
from repro.noc.config import NocConfig, PowerGatingConfig
from repro.traffic.trace import TraceRecord
from repro.util import env

__all__ = ["main", "CONFIG_NAMES"]

#: Named fabric configurations accepted by ``--config``.
_CONFIG_FACTORIES = {
    "small": lambda: NocConfig(
        mesh_cols=4,
        mesh_rows=4,
        num_subnets=2,
        link_width_bits=128,
        voltage_v=0.625,
        gating=PowerGatingConfig(enabled=True),
    ),
    "multi4": lambda: NocConfig.multi_noc(4, power_gating=True),
    "multi8": lambda: NocConfig.multi_noc(8, power_gating=True),
    "single512": lambda: NocConfig.single_noc_512(power_gating=True),
    "mesh64": lambda: NocConfig.mesh_64_core(2, power_gating=True),
}

CONFIG_NAMES = tuple(sorted(_CONFIG_FACTORIES))

#: Cycles per backend span during replay (span boundaries are where
#: backends guarantee byte-identical state).
_REPLAY_SPAN = 8192


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _default_out(kind: str, seed: int) -> Path:
    directory = Path(env.text("REPRO_WORKLOADS_DIR", "results/workloads"))
    return directory / f"{kind}-seed{seed}.ctr"


def _resolve_out(args, kind: str) -> Path:
    out = args.out or _default_out(kind, args.seed)
    out.parent.mkdir(parents=True, exist_ok=True)
    return out


class _CaptureFabric:
    """Mesh-only fabric stand-in: ``offer`` writes trace records.

    Lets ``gen`` drive any workload source at full generator speed —
    no routers, no flits — which is what makes million-packet trace
    synthesis a seconds-scale CI step.
    """

    def __init__(self, mesh, writer) -> None:
        self.mesh = mesh
        self.writer = writer
        self.cycle = 0

    def offer(self, packet) -> None:
        self.writer.append(
            TraceRecord(
                cycle=self.cycle,
                src=packet.src,
                dst=packet.dst,
                size_bits=packet.size_bits,
                message_class=packet.message_class,
                tenant=packet.tenant,
            )
        )


def _cmd_record(args) -> int:
    from repro.noc.multinoc import MultiNocFabric
    from repro.workloads.spec import make_workload_source, parse_workload_spec
    from repro.workloads.stream import (
        StreamingRecordingSource,
        StreamingTraceWriter,
    )

    spec = parse_workload_spec(args.workload)
    out = _resolve_out(args, spec.kind)
    config = _CONFIG_FACTORIES[args.config]()
    fabric = MultiNocFabric(config, seed=args.seed)
    inner = make_workload_source(fabric, spec, seed=args.seed)
    with StreamingTraceWriter(out, args.chunk) as writer:
        source = StreamingRecordingSource(fabric, inner, writer)
        fabric.backend.run(args.cycles, source)
        recorded = writer.records_written
    print(
        f"recorded {recorded} packets over {args.cycles} cycles "
        f"({config.name}, workload {spec.to_text()}) -> {out}"
    )
    return 0


def _cmd_gen(args) -> int:
    from repro.noc.topology import ConcentratedMesh
    from repro.workloads.spec import make_workload_source, parse_workload_spec
    from repro.workloads.stream import StreamingTraceWriter

    spec = parse_workload_spec(args.workload)
    if spec.kind == "trace":
        print("gen: cannot generate from a trace workload", file=sys.stderr)
        return 2
    out = _resolve_out(args, spec.kind)
    config = _CONFIG_FACTORIES[args.config]()
    mesh = ConcentratedMesh(
        config.mesh_cols, config.mesh_rows, config.tiles_per_node
    )
    with StreamingTraceWriter(out, args.chunk) as writer:
        shim = _CaptureFabric(mesh, writer)
        source = make_workload_source(shim, spec, seed=args.seed)
        cycle = 0
        while cycle < args.cycles:
            shim.cycle = cycle
            source.step(cycle)
            if args.packets and writer.records_written >= args.packets:
                break
            horizon = source.next_offer_cycle(cycle + 1)
            if horizon >= NEVER:
                break
            cycle = max(cycle + 1, horizon)
        generated = writer.records_written
        last_cycle = shim.cycle
    print(
        f"generated {generated} packets over {last_cycle + 1} cycles "
        f"({config.name} mesh, workload {spec.to_text()}) -> {out}"
    )
    return 0


def _cmd_info(args) -> int:
    from repro.workloads.stream import trace_info

    info = trace_info(args.trace)
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value if value is not None else '-'}")
    return 0


def _cmd_replay(args) -> int:
    from repro.noc.multinoc import MultiNocFabric
    from repro.workloads.point import report_digest, sleep_fractions
    from repro.workloads.spec import open_trace_source

    config = _CONFIG_FACTORIES[args.config]()
    fabric = MultiNocFabric(config, seed=args.seed, backend=args.backend)
    source = open_trace_source(fabric, str(args.trace))
    fabric.stats.begin_measurement(0)
    while not source.exhausted:
        fabric.backend.run(_REPLAY_SPAN, source)
    fabric.stats.end_measurement(fabric.cycle)
    drained = fabric.drain()
    report = fabric.report()
    print(
        f"replayed {source.packets_generated} packets over "
        f"{report.cycles} cycles ({config.name}, backend "
        f"{args.backend or 'env/default'}, drained={drained})"
    )
    print(
        f"latency avg={report.avg_packet_latency:.2f} "
        f"p50={report.latency_p50:.0f} p99={report.latency_p99:.0f} "
        f"offered={report.offered_rate:.4f} "
        f"throughput={report.throughput_packets:.4f}"
    )
    sleep = sleep_fractions(report)
    if any(sleep):
        cells = "/".join(f"{fraction:.3f}" for fraction in sleep)
        print(f"sleep_frac per subnet: {cells}")
    for tenant in report.tenants:
        print(
            f"tenant {tenant['tenant']}: received={tenant['received']} "
            f"p99={tenant['latency_p99']:.0f}"
        )
    print(f"digest: {report_digest(report)}")
    rss = _peak_rss_mb()
    limit = f" (limit {args.rss_limit_mb:.0f} MB)" if args.rss_limit_mb else ""
    print(f"peak rss: {rss:.1f} MB{limit}")
    if args.rss_limit_mb and rss > args.rss_limit_mb:
        print(
            f"replay exceeded the RSS ceiling: {rss:.1f} MB > "
            f"{args.rss_limit_mb:.0f} MB",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_common(parser: argparse.ArgumentParser, gen: bool) -> None:
    parser.add_argument(
        "--workload",
        required=True,
        metavar="SPEC",
        help="workload spec (see docs/workloads.md), e.g. llm:batch=8",
    )
    parser.add_argument(
        "--config",
        choices=CONFIG_NAMES,
        default="multi4",
        help="named fabric configuration (default multi4)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        required=True,
        help="cycles to run the workload for",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="deterministic seed (default 7)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output trace path (default under REPRO_WORKLOADS_DIR)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="N",
        help="records per compressed chunk "
        "(default REPRO_WORKLOADS_CHUNK or 65536)",
    )
    if gen:
        parser.add_argument(
            "--packets",
            type=int,
            default=None,
            metavar="N",
            help="stop after generating N packets",
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Record, inspect, generate, and replay "
        "streaming traffic traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="simulate a workload and record its trace"
    )
    _add_common(record, gen=False)

    gen = commands.add_parser(
        "gen", help="synthesize a trace without simulating the network"
    )
    _add_common(gen, gen=True)

    info = commands.add_parser("info", help="summarize a streaming trace")
    info.add_argument("trace", type=Path)

    replay = commands.add_parser(
        "replay", help="stream a trace through a fresh fabric"
    )
    replay.add_argument("trace", type=Path)
    replay.add_argument(
        "--config",
        choices=CONFIG_NAMES,
        default="multi4",
        help="named fabric configuration (default multi4)",
    )
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="simulation kernel (default: REPRO_BACKEND or dense)",
    )
    replay.add_argument(
        "--rss-limit-mb",
        type=float,
        default=None,
        metavar="MB",
        help="fail (exit 1) if peak RSS exceeds this many MB",
    )

    args = parser.parse_args(argv)
    if args.command in ("record", "gen"):
        from repro.workloads.spec import parse_workload_spec

        try:
            parse_workload_spec(args.workload)
        except ValueError as exc:
            parser.error(f"--workload: {exc}")
    handler = {
        "record": _cmd_record,
        "gen": _cmd_gen,
        "info": _cmd_info,
        "replay": _cmd_replay,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - module smoke
    sys.exit(main())
