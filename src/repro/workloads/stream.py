"""Streaming binary trace format: chunked, compressed, versioned.

The text format of :mod:`repro.traffic.trace` keeps whole traces in
memory, which caps it at tens of thousands of packets.  This module
stores traces as a fixed 24-byte header followed by independently
zlib-compressed chunks of fixed-size records, so

- :class:`StreamingTraceWriter` emits from any generator without ever
  holding more than one chunk,
- :class:`StreamingTraceReader` replays millions of packets through
  the NI injection queues under bounded memory (one decompressed chunk
  at a time; it never loads the file), and
- a truncated final chunk — a crashed writer, a torn copy — degrades
  to a loud :class:`RuntimeWarning` carrying the salvaged and lost
  record counts instead of an exception or silent data loss.

Layout (all little-endian)::

    header:  magic[8] version:u16 reserved:u16 chunk_records:u32
             total_records:u64   (sentinel 2**64-1 until finalized)
    chunk:   record_count:u32 compressed_size:u32 <zlib payload>
    record:  cycle:u64 src:u16 dst:u16 size_bits:u32
             message_class:u8 tenant:i16          (19 bytes)
"""

from __future__ import annotations

import struct
import warnings
import zlib
from pathlib import Path

from repro.noc.backend import NEVER
from repro.noc.flit import Packet
from repro.traffic.trace import TraceRecord
from repro.util import env

__all__ = [
    "STREAM_MAGIC",
    "STREAM_VERSION",
    "DEFAULT_CHUNK_RECORDS",
    "StreamingTraceWriter",
    "StreamingTraceReader",
    "StreamingTraceSource",
    "StreamingRecordingSource",
    "trace_info",
    "is_stream_trace",
]

#: File magic of the streaming format (first 8 bytes of every trace).
STREAM_MAGIC = b"CATNAPTR"

#: Format version written by :class:`StreamingTraceWriter`.
STREAM_VERSION = 1

#: Records per compressed chunk (override with ``REPRO_WORKLOADS_CHUNK``).
DEFAULT_CHUNK_RECORDS = 65536

_HEADER = struct.Struct("<8sHHIQ")
_CHUNK_HEADER = struct.Struct("<II")
_RECORD = struct.Struct("<QHHIBh")

#: ``total_records`` value while a writer is still running; a reader
#: seeing it knows the file was never finalized.
_UNFINALIZED = (1 << 64) - 1

_MAX_U16 = (1 << 16) - 1
_MAX_U32 = (1 << 32) - 1
_MAX_U8 = (1 << 8) - 1
_MAX_I16 = (1 << 15) - 1


def _check_packable(record: TraceRecord) -> None:
    """Field-width validation beyond :meth:`TraceRecord.validate`."""
    if record.src > _MAX_U16 or record.dst > _MAX_U16:
        raise ValueError(
            f"src/dst exceed 16 bits: {record.src}/{record.dst}"
        )
    if record.size_bits > _MAX_U32:
        raise ValueError(f"size_bits exceeds 32 bits: {record.size_bits}")
    if record.message_class > _MAX_U8:
        raise ValueError(
            f"message_class exceeds 8 bits: {record.message_class}"
        )
    if record.tenant > _MAX_I16:
        raise ValueError(f"tenant exceeds 15 bits: {record.tenant}")


class StreamingTraceWriter:
    """Append-only writer of the chunked binary trace format.

    Records must arrive in cycle order (same contract as
    :class:`repro.traffic.trace.TrafficTrace`).  The header's
    ``total_records`` field holds a sentinel until :meth:`close`
    patches in the real count, so a crashed writer is detectable.
    Usable as a context manager.
    """

    def __init__(
        self, path: str | Path, chunk_records: int | None = None
    ) -> None:
        if chunk_records is None:
            chunk_records = env.integer(
                "REPRO_WORKLOADS_CHUNK", DEFAULT_CHUNK_RECORDS
            )
        if chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.records_written = 0
        self._last_cycle = -1
        self._buffer = bytearray()
        self._buffered = 0
        self._file = open(self.path, "wb")
        self._file.write(
            _HEADER.pack(
                STREAM_MAGIC, STREAM_VERSION, 0, chunk_records, _UNFINALIZED
            )
        )

    def append(self, record: TraceRecord) -> None:
        """Validate and buffer one record, flushing full chunks."""
        if self._file.closed:
            raise ValueError("writer is closed")
        record.validate()
        _check_packable(record)
        if record.cycle < self._last_cycle:
            raise ValueError(
                f"trace records must be in cycle order "
                f"({record.cycle} after {self._last_cycle})"
            )
        self._last_cycle = record.cycle
        self._buffer += _RECORD.pack(
            record.cycle,
            record.src,
            record.dst,
            record.size_bits,
            record.message_class,
            record.tenant,
        )
        self._buffered += 1
        self.records_written += 1
        if self._buffered >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records) -> None:
        """Append every record of an iterable (e.g. a TrafficTrace)."""
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if not self._buffered:
            return
        payload = zlib.compress(bytes(self._buffer))
        self._file.write(_CHUNK_HEADER.pack(self._buffered, len(payload)))
        self._file.write(payload)
        self._buffer.clear()
        self._buffered = 0

    def close(self) -> None:
        """Flush the partial chunk and finalize the record count."""
        if self._file.closed:
            return
        self._flush_chunk()
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(
                STREAM_MAGIC,
                STREAM_VERSION,
                0,
                self.chunk_records,
                self.records_written,
            )
        )
        self._file.close()

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _read_header(handle, path: Path) -> tuple[int, int | None]:
    """Parse and validate the fixed header; returns (chunk, declared)."""
    raw = handle.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise ValueError(f"{path}: truncated stream-trace header")
    magic, version, _, chunk_records, total = _HEADER.unpack(raw)
    if magic != STREAM_MAGIC:
        raise ValueError(
            f"{path}: not a streaming trace (bad magic {magic!r})"
        )
    if version != STREAM_VERSION:
        raise ValueError(
            f"{path}: unsupported stream-trace version {version} "
            f"(expected {STREAM_VERSION})"
        )
    if chunk_records < 1:
        raise ValueError(f"{path}: invalid chunk_records {chunk_records}")
    declared = None if total == _UNFINALIZED else total
    return chunk_records, declared


def is_stream_trace(path: str | Path) -> bool:
    """True when ``path`` starts with the streaming-format magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STREAM_MAGIC)) == STREAM_MAGIC
    except OSError:
        return False


class StreamingTraceReader:
    """Bounded-memory iterator over a streaming trace file.

    Iteration yields :class:`TraceRecord` values one chunk at a time —
    the file is never loaded wholesale, so memory is bounded by one
    decompressed chunk regardless of trace length.  A truncated final
    chunk is salvaged record-by-record and reported loudly: a
    :class:`RuntimeWarning` carries the salvaged/lost counts and the
    :attr:`truncated` / :attr:`lost_records` attributes record them.
    Each ``iter()`` call re-opens the file, so a reader supports
    multiple passes.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            self.chunk_records, self.declared_records = _read_header(
                handle, self.path
            )
        self.truncated = False
        self.lost_records = 0
        self.records_read = 0

    def __iter__(self):
        self.truncated = False
        self.lost_records = 0
        self.records_read = 0
        with open(self.path, "rb") as handle:
            handle.seek(_HEADER.size)
            while True:
                chunk_header = handle.read(_CHUNK_HEADER.size)
                if not chunk_header:
                    break
                if len(chunk_header) < _CHUNK_HEADER.size:
                    self._lose(self._remaining_estimate())
                    return
                count, comp_size = _CHUNK_HEADER.unpack(chunk_header)
                payload = handle.read(comp_size)
                if len(payload) < comp_size:
                    yield from self._salvage(payload, count)
                    return
                raw = zlib.decompress(payload)
                if len(raw) != count * _RECORD.size:
                    raise ValueError(
                        f"{self.path}: corrupt chunk (expected "
                        f"{count} records, payload holds "
                        f"{len(raw) // _RECORD.size})"
                    )
                for fields in _RECORD.iter_unpack(raw):
                    self.records_read += 1
                    yield TraceRecord(*fields)
        if self.declared_records is None:
            warnings.warn(
                f"{self.path}: trace was never finalized (crashed "
                f"writer?); read {self.records_read} records",
                RuntimeWarning,
                stacklevel=2,
            )
        elif self.records_read != self.declared_records:
            self._lose(self.declared_records - self.records_read)

    def _remaining_estimate(self) -> int:
        """Best guess at lost records when the chunk header is torn."""
        if self.declared_records is not None:
            return max(0, self.declared_records - self.records_read)
        return 0

    def _salvage(self, payload: bytes, count: int):
        """Yield whole records recoverable from a torn final chunk."""
        try:
            raw = zlib.decompressobj().decompress(payload)
        except zlib.error:
            raw = b""
        complete = len(raw) // _RECORD.size
        for index in range(complete):
            fields = _RECORD.unpack_from(raw, index * _RECORD.size)
            self.records_read += 1
            yield TraceRecord(*fields)
        self._lose(max(count - complete, 1))

    def _lose(self, lost: int) -> None:
        self.truncated = True
        self.lost_records = max(lost, 0)
        warnings.warn(
            f"{self.path}: truncated trace — salvaged "
            f"{self.records_read} records, lost >= {self.lost_records}",
            RuntimeWarning,
            stacklevel=3,
        )


def trace_info(path: str | Path) -> dict:
    """Summarize a streaming trace by scanning chunk headers only.

    Never decompresses a full chunk, so it is O(chunks) regardless of
    record count; ``first_cycle``/``last_cycle`` come from
    decompressing just the first and last *complete* chunks.
    """
    path = Path(path)
    file_bytes = path.stat().st_size
    chunks = 0
    records = 0
    truncated = False
    first_payload: bytes | None = None
    last_payload: bytes | None = None
    with open(path, "rb") as handle:
        chunk_records, declared = _read_header(handle, path)
        while True:
            chunk_header = handle.read(_CHUNK_HEADER.size)
            if not chunk_header:
                break
            if len(chunk_header) < _CHUNK_HEADER.size:
                truncated = True
                break
            count, comp_size = _CHUNK_HEADER.unpack(chunk_header)
            payload = handle.read(comp_size)
            if len(payload) < comp_size:
                truncated = True
                break
            chunks += 1
            records += count
            if first_payload is None:
                first_payload = payload
            last_payload = payload
    if declared is None:
        truncated = True
    first_cycle = last_cycle = None
    if first_payload is not None:
        first_cycle = _RECORD.unpack_from(
            zlib.decompress(first_payload), 0
        )[0]
    if last_payload is not None:
        raw = zlib.decompress(last_payload)
        last_cycle = _RECORD.unpack_from(raw, len(raw) - _RECORD.size)[0]
    return {
        "path": str(path),
        "version": STREAM_VERSION,
        "file_bytes": file_bytes,
        "chunk_records": chunk_records,
        "declared_records": declared,
        "chunks": chunks,
        "records": records,
        "truncated": truncated,
        "first_cycle": first_cycle,
        "last_cycle": last_cycle,
    }


class StreamingTraceSource:
    """Replays a streaming trace into a fabric, one record at a time.

    Holds exactly one pending record; everything else stays inside the
    reader's chunk iterator, so replay memory is bounded by one
    decompressed chunk plus whatever is in flight in the fabric.
    """

    def __init__(self, fabric, reader: StreamingTraceReader) -> None:
        self.fabric = fabric
        self.reader = reader
        self._iter = iter(reader)
        self._pending = next(self._iter, None)
        self.packets_generated = 0

    @property
    def exhausted(self) -> bool:
        """True once every record has been replayed."""
        return self._pending is None

    def next_offer_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` with a pending record."""
        if self._pending is None:
            return NEVER
        return max(cycle, self._pending.cycle)

    def step(self, cycle: int) -> None:
        """Offer every record due at ``cycle``."""
        pending = self._pending
        while pending is not None and pending.cycle <= cycle:
            self.fabric.offer(
                Packet(
                    src=pending.src,
                    dst=pending.dst,
                    size_bits=pending.size_bits,
                    message_class=pending.message_class,
                    tenant=pending.tenant,
                )
            )
            self.packets_generated += 1
            pending = next(self._iter, None)
        self._pending = pending


class StreamingRecordingSource:
    """Streams everything an inner source offers straight to a writer.

    The streaming sibling of :class:`repro.traffic.trace.
    RecordingSource`: identical fabric hook, but records land in a
    :class:`StreamingTraceWriter` instead of an in-memory trace, so
    arbitrarily long recordings run under bounded memory.
    """

    def __init__(self, fabric, inner, writer: StreamingTraceWriter) -> None:
        self.fabric = fabric
        self.inner = inner
        self.writer = writer

    def next_offer_cycle(self, cycle: int) -> int:
        """Delegate the skip horizon to the wrapped source."""
        probe = getattr(self.inner, "next_offer_cycle", None)
        return probe(cycle) if probe is not None else cycle

    def step(self, cycle: int) -> None:
        original_offer = self.fabric.offer

        def recording_offer(packet: Packet) -> None:
            self.writer.append(
                TraceRecord(
                    cycle=cycle,
                    src=packet.src,
                    dst=packet.dst,
                    size_bits=packet.size_bits,
                    message_class=packet.message_class,
                    tenant=packet.tenant,
                )
            )
            original_offer(packet)

        self.fabric.offer = recording_offer  # type: ignore[method-assign]
        try:
            self.inner.step(cycle)
        finally:
            self.fabric.offer = original_offer  # type: ignore[method-assign]
