"""Serving-shaped workloads and streaming trace replay.

Three layers (see ``docs/workloads.md``):

- :mod:`repro.workloads.stream` — a chunked, zlib-compressed binary
  trace format whose reader replays millions of packets through the NI
  injection queues under bounded memory.
- :mod:`repro.workloads.sources` — serving-shaped generators: an
  LLM-inference accelerator source (prefill/decode phases), a
  multi-tenant mix with per-tenant QoS tracking, and a diurnal load
  curve that exercises power gating through full sleep/wake seasons.
- :mod:`repro.workloads.spec` — the ``kind:key=value;...`` workload
  grammar plumbed through ``PointSpec.workload`` / ``--workload`` /
  ``REPRO_WORKLOADS``.

``python -m repro.workloads`` records, inspects, generates, and
replays streaming traces (:mod:`repro.workloads.cli`).
"""

from repro.workloads.sources import (
    DEFAULT_DIURNAL_SHAPE,
    DiurnalSource,
    LlmServingSource,
    MultiTenantSource,
)
from repro.workloads.spec import (
    WorkloadSpec,
    make_workload_source,
    parse_workload_spec,
)
from repro.workloads.stream import (
    StreamingRecordingSource,
    StreamingTraceReader,
    StreamingTraceSource,
    StreamingTraceWriter,
    trace_info,
)

__all__ = [
    "DEFAULT_DIURNAL_SHAPE",
    "DiurnalSource",
    "LlmServingSource",
    "MultiTenantSource",
    "WorkloadSpec",
    "make_workload_source",
    "parse_workload_spec",
    "StreamingRecordingSource",
    "StreamingTraceReader",
    "StreamingTraceSource",
    "StreamingTraceWriter",
    "trace_info",
]
