"""Entry point for ``python -m repro.workloads``."""

from __future__ import annotations

import sys

from repro.workloads.cli import main

if __name__ == "__main__":
    sys.exit(main())
