"""Perf command line: ``python -m repro.perf``.

``compare OLD NEW [--threshold PCT]`` diffs two benchmark directories
(``BENCH_*.json`` records, see :mod:`repro.perf.bench`): exit status 0
when nothing regressed beyond the threshold, 1 on a regression.  New
benchmarks with no baseline, benchmarks missing from the new set, and
scale-mismatched pairs are reported but never fail the comparison —
CI's soft gate relies on that contract.

``show PATH ...`` pretty-prints ``*.perf.json`` phase-profile
artifacts written by the profiler (``REPRO_PERF=1`` / ``--perf``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.perf.bench import DEFAULT_THRESHOLD_PCT, compare_bench_dirs
from repro.util.tables import format_table

__all__ = ["main"]


def _show_profile(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable ({exc})", file=sys.stderr)
        return 1
    throughput = doc.get("throughput", {})
    print(
        f"{path}: {doc.get('config')} seed={doc.get('seed')} "
        f"steps={doc.get('steps_profiled')} "
        f"step_wall={doc.get('step_seconds', 0.0):.3f}s "
        f"({throughput.get('cycles_per_sec', 0.0):,.0f} cycles/s, "
        f"{throughput.get('flits_per_sec', 0.0):,.0f} flits/s)"
    )
    rows = [
        {
            "phase": name,
            "seconds": entry.get("seconds", 0.0),
            "share_pct": 100.0 * entry.get("share", 0.0),
        }
        for name, entry in doc.get("phases", {}).items()
    ]
    if rows:
        print(format_table(rows, ["phase", "seconds", "share_pct"]))
    rows = [
        {
            "stage": name,
            "seconds": entry.get("seconds", 0.0),
            "pipeline_pct": 100.0 * entry.get("share_of_pipeline", 0.0),
        }
        for name, entry in doc.get("router_stages", {}).items()
    ]
    if rows:
        print(format_table(rows, ["stage", "seconds", "pipeline_pct"]))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Simulator-performance tooling.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    compare = subparsers.add_parser(
        "compare",
        help="diff two BENCH_*.json directories for regressions",
    )
    compare.add_argument("old", help="baseline bench directory")
    compare.add_argument("new", help="candidate bench directory")
    compare.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help="regression threshold in percent "
        f"(default {DEFAULT_THRESHOLD_PCT:g})",
    )
    show = subparsers.add_parser(
        "show", help="pretty-print *.perf.json profile artifacts"
    )
    show.add_argument("paths", nargs="+", help="profile artifact files")
    args = parser.parse_args(argv)
    if args.command == "compare":
        comparison = compare_bench_dirs(
            args.old, args.new, threshold_pct=args.threshold
        )
        print(comparison.render())
        return comparison.exit_code
    failures = 0
    for path in args.paths:
        failures += _show_profile(path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
