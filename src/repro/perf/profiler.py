"""The phase profiler: where does the simulator's wall-clock go?

``PhaseProfiler`` observes one :class:`~repro.noc.multinoc.MultiNocFabric`
by *shadowing* instance methods, the exact contract of
:class:`repro.telemetry.hub.TelemetryHub` and
:class:`repro.analysis.invariants.InvariantChecker`:

* ``fabric.step`` — replaced by a phase-bracketed mirror of the step
  loop that times link delivery, the congestion monitor, NI
  packetization, the router pipeline, and the gating controller with
  ``time.perf_counter_ns``;
* ``fabric.report`` — autoflushes a ``*.perf.json`` profile artifact
  next to the report when the profiler was attached via the
  environment;
* ``monitor.regional.update`` — timed separately so the RCS OR-network
  cost is split out of the monitor phase.

The router pipeline slice is further split into the paper's four
stages (route compute, VC alloc, switch alloc, switch traversal) by
:func:`repro.perf.phases.profiled_router_step`; ``Router`` declares
``__slots__`` so it cannot be shadowed per instance, and the profiler
therefore drives that stage-timed mirror from its own step loop.

Because shadowing only touches *instances*, a fabric without a
profiler executes the original unhooked class methods: profiling-off
runs take the identical code path as a build without this package.
Profiling *on* has a deliberate observer cost (two clock reads per
phase and per bracketed stage event) — it buys a per-phase breakdown;
use the throughput meters (:mod:`repro.perf.meters`) when only
aggregate rates are needed.

Enable with ``REPRO_PERF=1`` (see :func:`perf_enabled`); artifacts go
to ``REPRO_PERF_DIR`` (default ``results/perf``).  Setting
``REPRO_PERF_CPROFILE=1`` additionally captures a deterministic
``cProfile`` of every step and flushes a ``.pstats`` dump plus a
caller;callee collapsed-stack text file ready for flame-graph tools
(see ``docs/perf.md``).
"""

from __future__ import annotations

import json
import os
from time import perf_counter_ns
from typing import TYPE_CHECKING, Any, Callable

from repro.perf.phases import (
    ROUTER_STAGES,
    STEP_PHASES,
    StageClock,
    profiled_router_step,
)
from repro.util import env
from repro.util.ascii_plot import bar_chart
from repro.util.histogram import BoundedHistogram

if TYPE_CHECKING:
    import cProfile

    from repro.noc.multinoc import FabricReport, MultiNocFabric

__all__ = [
    "PROFILE_SCHEMA",
    "DEFAULT_DIR",
    "PhaseProfiler",
    "perf_enabled",
    "cprofile_enabled",
    "maybe_attach",
]

#: Schema tag stamped into every ``*.perf.json`` artifact.
PROFILE_SCHEMA = "repro.perf.profile/1"

#: Default artifact directory (override with ``REPRO_PERF_DIR``).
DEFAULT_DIR = os.path.join("results", "perf")

#: Coarse phases sampled per step into bounded histograms.
_HISTOGRAM_PHASES = (
    "link_delivery",
    "monitor",
    "ni_packetization",
    "router_pipeline",
    "gating",
    "step",
)


def perf_enabled() -> bool:
    """True when ``REPRO_PERF`` asks for simulator self-profiling."""
    return env.flag("REPRO_PERF")


def cprofile_enabled() -> bool:
    """True when ``REPRO_PERF_CPROFILE`` asks for a cProfile capture."""
    return env.flag("REPRO_PERF_CPROFILE")


def maybe_attach(fabric: "MultiNocFabric") -> "PhaseProfiler | None":
    """Attach a profiler to ``fabric`` when ``REPRO_PERF`` is set."""
    if not perf_enabled():
        return None
    return PhaseProfiler.from_env(fabric).attach()


class PhaseProfiler:
    """Per-phase wall-clock accounting for one fabric instance."""

    def __init__(
        self,
        fabric: "MultiNocFabric",
        out_dir: str | None = None,
        capture_cprofile: bool = False,
    ) -> None:
        self.fabric = fabric
        self.out_dir = out_dir
        self.attached = False
        self.steps = 0
        # Nanosecond accumulators for the top-level step slices.
        self._ns_link = 0
        self._ns_monitor = 0
        self._ns_regional = 0
        self._ns_ni = 0
        self._ns_router = 0
        self._ns_gating = 0
        self._ns_step = 0
        self._clock = StageClock()
        self.step_histograms = {
            name: BoundedHistogram() for name in _HISTOGRAM_PHASES
        }
        self._flits_at_attach = self._flits_routed_now()
        self._flush_count = 0
        self._saved: list[tuple[object, str, bool, object]] = []
        self._cprofile: "cProfile.Profile | None" = None
        if capture_cprofile:
            import cProfile as _cprofile

            self._cprofile = _cprofile.Profile()

    # ------------------------------------------------------------------
    # Construction from the environment
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, fabric: "MultiNocFabric") -> "PhaseProfiler":
        """Build a profiler configured by ``REPRO_PERF_*`` variables."""
        out_dir = env.text("REPRO_PERF_DIR", DEFAULT_DIR)
        return cls(
            fabric,
            out_dir=out_dir,
            capture_cprofile=cprofile_enabled(),
        )

    # ------------------------------------------------------------------
    # Attach / detach (per-instance shadowing)
    # ------------------------------------------------------------------
    def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
        had = name in obj.__dict__
        self._saved.append((obj, name, had, obj.__dict__.get(name)))
        setattr(obj, name, replacement)

    def attach(self) -> "PhaseProfiler":
        """Install the step/report/regional probes; returns ``self``."""
        if self.attached:
            return self
        fabric = self.fabric
        regional = fabric.monitor.regional
        self._orig_report: Callable[[], "FabricReport"] = fabric.report
        self._orig_regional_update = regional.update
        self._shadow(fabric, "step", self._profiled_step)
        self._shadow(fabric, "report", self._profiled_report)
        self._shadow(regional, "update", self._timed_regional_update)
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every probe, restoring the pre-attach attributes."""
        if not self.attached:
            return
        for obj, name, had, value in reversed(self._saved):
            if had:
                setattr(obj, name, value)
            else:
                delattr(obj, name)
        self._saved.clear()
        self.attached = False

    # ------------------------------------------------------------------
    # Shadowed methods
    # ------------------------------------------------------------------
    def _profiled_step(self) -> None:
        """Phase-bracketed mirror of :meth:`MultiNocFabric.step`.

        Identical call order and state mutation as the plain step (the
        equivalence test in ``tests/test_perf_profiler.py`` holds this
        to byte-identical fabric reports); the only additions are clock
        reads at the phase boundaries.
        """
        fabric = self.fabric
        clock = self._clock
        prof = self._cprofile
        if prof is not None:
            prof.enable()
        t_begin = perf_counter_ns()
        cycle = fabric.cycle
        subnets = fabric.subnets
        for network in subnets:
            network.deliver_arrivals(cycle)
        t1 = perf_counter_ns()
        fabric.monitor.update(cycle, subnets, fabric.nis)
        t2 = perf_counter_ns()
        for ni in fabric.nis:
            ni.step(cycle)
        t3 = perf_counter_ns()
        for network in subnets:
            for router in network.routers:
                if router.buffered_flits:
                    profiled_router_step(router, cycle, clock)
            network.counters.flit_cycles += network.flits_in_network
        t4 = perf_counter_ns()
        fabric.gating.step(cycle)
        t5 = perf_counter_ns()
        fabric.cycle = cycle + 1
        if prof is not None:
            prof.disable()
        self._ns_link += t1 - t_begin
        self._ns_monitor += t2 - t1
        self._ns_ni += t3 - t2
        self._ns_router += t4 - t3
        self._ns_gating += t5 - t4
        self._ns_step += t5 - t_begin
        self.steps += 1
        hists = self.step_histograms
        hists["link_delivery"].record(t1 - t_begin)
        hists["monitor"].record(t2 - t1)
        hists["ni_packetization"].record(t3 - t2)
        hists["router_pipeline"].record(t4 - t3)
        hists["gating"].record(t5 - t4)
        hists["step"].record(t5 - t_begin)

    def _profiled_report(self) -> "FabricReport":
        report = self._orig_report()
        if self.out_dir is not None:
            self.flush()
        return report

    def _timed_regional_update(
        self, cycle: int, lcs: list[list[bool]]
    ) -> None:
        t0 = perf_counter_ns()
        self._orig_regional_update(cycle, lcs)
        self._ns_regional += perf_counter_ns() - t0

    # ------------------------------------------------------------------
    # Derived breakdowns
    # ------------------------------------------------------------------
    def _flits_routed_now(self) -> int:
        return sum(
            network.counters.crossbar_traversals
            for network in self.fabric.subnets
        )

    def phase_seconds(self) -> dict[str, float]:
        """Seconds per top-level phase; keys are :data:`STEP_PHASES`.

        The phases partition the measured step time: ``monitor_lcs``
        excludes the separately timed regional update, ``step_other``
        is the unbracketed residual (loop glue, clock overhead), and
        every value is clamped non-negative, so the sum never exceeds
        the whole-step measurement.
        """
        link = self._ns_link
        regional = min(self._ns_regional, self._ns_monitor)
        monitor_lcs = self._ns_monitor - regional
        ni = self._ns_ni
        router = self._ns_router
        gating = self._ns_gating
        bracketed = link + self._ns_monitor + ni + router + gating
        other = max(0, self._ns_step - bracketed)
        values = {
            "link_delivery": link,
            "monitor_lcs": monitor_lcs,
            "regional_update": regional,
            "ni_packetization": ni,
            "router_pipeline": router,
            "gating": gating,
            "step_other": other,
        }
        return {name: values[name] / 1e9 for name in STEP_PHASES}

    def router_stage_seconds(self) -> dict[str, float]:
        """Seconds per router pipeline stage (:data:`ROUTER_STAGES`).

        ``switch_alloc`` is the scan/arbitration residual of the
        pipeline slice around the three bracketed stages.
        """
        clock = self._clock
        alloc = max(0, self._ns_router - clock.bracketed_total())
        values = {
            "switch_alloc": alloc,
            "vc_alloc": clock.vc_alloc,
            "route_compute": clock.route_compute,
            "switch_traversal": clock.switch_traversal,
        }
        return {name: values[name] / 1e9 for name in ROUTER_STAGES}

    @property
    def step_seconds(self) -> float:
        """Wall-clock spent inside profiled fabric steps."""
        return self._ns_step / 1e9

    def throughput(self) -> dict[str, float]:
        """Simulated cycles/sec and flits-routed/sec while profiled."""
        seconds = self.step_seconds
        flits = self._flits_routed_now() - self._flits_at_attach
        return {
            "cycles_per_sec": self.steps / seconds if seconds else 0.0,
            "flits_per_sec": flits / seconds if seconds else 0.0,
            "flits_routed": float(flits),
        }

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def profile(self) -> dict[str, Any]:
        """JSON-safe profile document for this fabric so far."""
        fabric = self.fabric
        step_seconds = self.step_seconds
        phases = self.phase_seconds()
        stages = self.router_stage_seconds()
        pipeline = phases["router_pipeline"]
        return {
            "schema": PROFILE_SCHEMA,
            "config": fabric.config.name,
            "seed": fabric.seed,
            "cycles": fabric.cycle,
            "steps_profiled": self.steps,
            "step_seconds": step_seconds,
            "phases": {
                name: {
                    "seconds": seconds,
                    "share": seconds / step_seconds if step_seconds else 0.0,
                }
                for name, seconds in phases.items()
            },
            "router_stages": {
                name: {
                    "seconds": seconds,
                    "share_of_pipeline": (
                        seconds / pipeline if pipeline else 0.0
                    ),
                }
                for name, seconds in stages.items()
            },
            "throughput": self.throughput(),
            "step_histograms_ns": {
                name: hist.to_dict()
                for name, hist in self.step_histograms.items()
            },
        }

    def ascii_summary(self) -> str:
        """Human-readable phase breakdown for terminals and artifacts."""
        fabric = self.fabric
        step_seconds = self.step_seconds
        throughput = self.throughput()
        lines = [
            f"perf: {fabric.config.name} seed={fabric.seed} "
            f"steps={self.steps} step_wall={step_seconds:.3f}s "
            f"({throughput['cycles_per_sec']:,.0f} cycles/s, "
            f"{throughput['flits_per_sec']:,.0f} flits/s)",
        ]
        phases = self.phase_seconds()
        if step_seconds:
            lines.append(
                bar_chart(
                    list(phases),
                    [seconds / step_seconds for seconds in phases.values()],
                    title="step time by phase:",
                )
            )
            stages = self.router_stage_seconds()
            pipeline = phases["router_pipeline"]
            if pipeline:
                lines.append(
                    bar_chart(
                        list(stages),
                        [s / pipeline for s in stages.values()],
                        title="router pipeline by stage:",
                    )
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _folded_stacks(self) -> list[str]:
        """Collapsed caller;callee lines from the cProfile capture.

        cProfile records caller→callee edges (not full stacks), so the
        folded output is two frames deep — enough for flamegraph.pl or
        speedscope to show where time pools and from where it is
        reached.  Weights are edge-attributed total microseconds.
        """
        if self._cprofile is None:
            return []
        import pstats

        def label(func: tuple[str, int, str]) -> str:
            filename, lineno, name = func
            base = os.path.basename(filename) if filename else "~"
            return f"{base}:{lineno}:{name}".replace(" ", "_")

        lines: list[str] = []
        stats = pstats.Stats(self._cprofile)
        for func, (_cc, _nc, tottime, _ct, callers) in stats.stats.items():
            if not callers:
                micros = int(round(tottime * 1e6))
                if micros:
                    lines.append(f"{label(func)} {micros}")
                continue
            for caller, (_ecc, _enc, edge_tot, _ect) in callers.items():
                micros = int(round(edge_tot * 1e6))
                if micros:
                    lines.append(f"{label(caller)};{label(func)} {micros}")
        return sorted(lines)

    def flush(self) -> dict[str, str]:
        """Write the profile artifacts; return their paths.

        Files are named ``{config}-s{seed}-p{pid}-r{n}`` so parallel
        sweep workers and repeated flushes never collide (the same
        convention — and the same process-wide
        :func:`repro.obs.artifacts.next_flush_ref` counter — as
        telemetry artifacts; per-instance counters would overwrite
        when one process profiles two same-config fabrics).
        """
        from repro.obs.artifacts import next_flush_ref

        out_dir = self.out_dir if self.out_dir is not None else DEFAULT_DIR
        os.makedirs(out_dir, exist_ok=True)
        fabric = self.fabric
        prefix = (
            f"{fabric.config.name}-s{fabric.seed}-p{os.getpid()}"
        )
        stem = f"{prefix}-r{next_flush_ref(prefix)}"
        self._flush_count += 1
        paths = {"profile": os.path.join(out_dir, f"{stem}.perf.json")}
        with open(paths["profile"], "w", encoding="utf-8") as handle:
            json.dump(self.profile(), handle, separators=(",", ":"))
        if self._cprofile is not None:
            paths["pstats"] = os.path.join(out_dir, f"{stem}.pstats")
            self._cprofile.dump_stats(paths["pstats"])
            paths["folded"] = os.path.join(
                out_dir, f"{stem}.folded.txt"
            )
            with open(paths["folded"], "w", encoding="utf-8") as handle:
                handle.write("\n".join(self._folded_stacks()) + "\n")
        return paths
