"""Sweep-runner integration: report profile artifacts per point.

Phase profilers attach inside sweep worker processes (the fabric
constructor reads ``REPRO_PERF``), so the parent CLI process never
sees the profiler objects themselves — only the files they flush.
:class:`PerfObserver` plugs into the sweep observer chain and reports
every profile artifact that appears in the perf directory while a
sweep runs, mirroring :class:`repro.telemetry.observer.TelemetryObserver`.

Directory scanning lives in
:class:`repro.obs.artifacts.ArtifactScanner`, shared with the
telemetry observer and the run ledger so all three agree on what
counts as a profile artifact.
"""

from __future__ import annotations

from typing import Any, TextIO

from repro.experiments.runner import SweepObserver, SweepStats
from repro.obs.artifacts import PERF_SUFFIXES, ArtifactScanner
from repro.perf.profiler import DEFAULT_DIR
from repro.util import env

__all__ = ["PerfObserver"]


class PerfObserver(SweepObserver):
    """Announces new profile artifacts as sweep points complete."""

    def __init__(
        self, directory: str | None = None, stream: "TextIO | None" = None
    ) -> None:
        import sys

        self.directory = directory or env.text("REPRO_PERF_DIR", DEFAULT_DIR)
        self.stream: TextIO = (
            stream if stream is not None else sys.stderr
        )
        self._scanner = ArtifactScanner(self.directory, PERF_SUFFIXES)
        #: Every artifact path reported so far, in report order.
        self.reported: list[str] = []

    def _report_fresh(self) -> None:
        for path in self._scanner.fresh():
            self.reported.append(path)
            print(f"  perf: {path}", file=self.stream)

    # -- SweepObserver hooks ------------------------------------------
    def sweep_started(self, total: int) -> None:
        # Pre-existing artifacts belong to earlier runs; only report
        # what this sweep produces.
        self._scanner.prime()

    def point_finished(
        self,
        index: int,
        spec: Any,
        rows: list[dict[str, Any]],
        elapsed: float,
        cached: bool,
    ) -> None:
        self._report_fresh()

    def sweep_finished(self, stats: SweepStats) -> None:
        # Parallel workers may flush after their point_finished record
        # was consumed; catch any stragglers.
        self._report_fresh()
