"""Sweep-runner integration: report profile artifacts per point.

Phase profilers attach inside sweep worker processes (the fabric
constructor reads ``REPRO_PERF``), so the parent CLI process never
sees the profiler objects themselves — only the files they flush.
:class:`PerfObserver` plugs into the sweep observer chain and reports
every profile artifact that appears in the perf directory while a
sweep runs, mirroring :class:`repro.telemetry.observer.TelemetryObserver`.
"""

from __future__ import annotations

import os
from typing import Any, TextIO

from repro.experiments.runner import SweepObserver, SweepStats
from repro.perf.profiler import DEFAULT_DIR
from repro.util import env

__all__ = ["PerfObserver"]

#: File suffixes the profiler's ``flush`` produces.
_ARTIFACT_SUFFIXES = (".perf.json", ".pstats", ".folded.txt")


class PerfObserver(SweepObserver):
    """Announces new profile artifacts as sweep points complete."""

    def __init__(
        self, directory: str | None = None, stream: "TextIO | None" = None
    ) -> None:
        import sys

        self.directory = directory or env.text("REPRO_PERF_DIR", DEFAULT_DIR)
        self.stream = stream if stream is not None else sys.stderr
        self._known: set[str] = set()
        #: Every artifact path reported so far, in report order.
        self.reported: list[str] = []

    def _scan(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name
            for name in names
            if name.endswith(_ARTIFACT_SUFFIXES)
        )

    def _report_fresh(self) -> None:
        for name in self._scan():
            if name in self._known:
                continue
            self._known.add(name)
            path = os.path.join(self.directory, name)
            self.reported.append(path)
            print(f"  perf: {path}", file=self.stream)

    # -- SweepObserver hooks ------------------------------------------
    def sweep_started(self, total: int) -> None:
        # Pre-existing artifacts belong to earlier runs; only report
        # what this sweep produces.
        self._known.update(self._scan())

    def point_finished(
        self,
        index: int,
        spec: Any,
        rows: list[dict],
        elapsed: float,
        cached: bool,
    ) -> None:
        self._report_fresh()

    def sweep_finished(self, stats: SweepStats) -> None:
        # Parallel workers may flush after their point_finished record
        # was consumed; catch any stragglers.
        self._report_fresh()
