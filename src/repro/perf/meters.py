"""Simulation-work accounting: how much did this process simulate?

The throughput figures the CLI and sweep runner print (simulated
cycles/sec, flits-routed/sec) need a cheap, always-on count of the work
each measurement point performed.  A :class:`WorkMeter` is a pair of
monotonically growing counters — simulated cycles and routed flits —
fed *once per finished point* (never from the per-cycle hot loop, so
the fast path is untouched):

* :func:`note_report` — from a finished :class:`FabricReport`
  (synthetic and application points);
* :func:`note_fabric` — from a live fabric that never built a report
  (the bursty time-series executor).

Two process-global meters exist.  :data:`WORK` accumulates for the
lifetime of the process; the benchmark harness reads it to stamp
``BENCH_*.json`` records with cycles/sec.  A private per-point meter is
drained by the sweep runner around each executed point so pool workers
can ship their work deltas back to the parent, which folds them into
:data:`WORK` and into the sweep's :class:`SweepStats`.

A *routed flit* is one crossbar traversal (forward or ejection), the
same event the power model charges for switching — so flits/sec is
directly comparable across configurations with different hop counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.noc.multinoc import FabricReport, MultiNocFabric

__all__ = [
    "WorkMeter",
    "WORK",
    "note_report",
    "note_fabric",
    "begin_point",
    "drain_point",
    "format_rate",
    "throughput_suffix",
]


class WorkMeter:
    """Two additive counters: simulated cycles and routed flits."""

    __slots__ = ("cycles", "flits")

    def __init__(self) -> None:
        self.cycles = 0
        self.flits = 0

    def add(self, cycles: int, flits: int) -> None:
        """Fold ``cycles``/``flits`` of completed work into the meter."""
        self.cycles += cycles
        self.flits += flits

    def snapshot(self) -> tuple[int, int]:
        """Current ``(cycles, flits)`` totals."""
        return self.cycles, self.flits

    def reset(self) -> tuple[int, int]:
        """Zero the meter; return what it held."""
        held = (self.cycles, self.flits)
        self.cycles = 0
        self.flits = 0
        return held


#: Process-lifetime work total (read by the benchmark harness).
WORK = WorkMeter()

#: Per-point collector drained by the sweep runner around each
#: executed point (see :func:`begin_point` / :func:`drain_point`).
_POINT = WorkMeter()


def _flits_from_activity(activity: "list[dict[str, int]]") -> int:
    return sum(counters["crossbar_traversals"] for counters in activity)


def note_report(report: "FabricReport") -> None:
    """Record a finished point's work from its fabric report."""
    flits = _flits_from_activity(report.activity)
    WORK.add(report.cycles, flits)
    _POINT.add(report.cycles, flits)


def note_fabric(fabric: "MultiNocFabric") -> None:
    """Record a finished point's work from a live fabric."""
    flits = sum(
        network.counters.crossbar_traversals for network in fabric.subnets
    )
    WORK.add(fabric.cycle, flits)
    _POINT.add(fabric.cycle, flits)


def begin_point() -> None:
    """Clear the per-point collector before executing a sweep point.

    Under a forked worker pool the collector may hold totals inherited
    from the parent; dropping them keeps each point's delta exact.
    """
    _POINT.reset()


def drain_point() -> tuple[int, int]:
    """``(cycles, flits)`` recorded since :func:`begin_point`."""
    return _POINT.reset()


def format_rate(per_second: float) -> str:
    """Compact human rate: ``875``, ``12.3k``, ``4.6M``, ``1.2G``."""
    magnitude = abs(per_second)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{per_second / threshold:.1f}{suffix}"
    return f"{per_second:.0f}"


def throughput_suffix(
    cycles: int, flits: int, seconds: float
) -> str:
    """``"1.2M cycles/s, 4.6M flits/s"`` — empty when nothing ran."""
    if cycles <= 0 or seconds <= 0:
        return ""
    return (
        f"{format_rate(cycles / seconds)} cycles/s, "
        f"{format_rate(flits / seconds)} flits/s"
    )
