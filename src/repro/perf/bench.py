"""Benchmark records and the regression comparator.

Every benchmark run writes a machine-readable ``BENCH_<name>.json``
next to its rendered ``benchmarks/out/<name>.txt`` table (see
``benchmarks/conftest.py``).  A record captures the wall time, the
simulated work behind it (cycles/sec from :mod:`repro.perf.meters`),
the knobs that shaped the run (``REPRO_BENCH_SCALE``, ``REPRO_JOBS``),
and enough provenance (host fingerprint, git SHA) to judge whether two
records are comparable at all.

:func:`compare_bench_dirs` diffs two such directories —
``python -m repro.perf compare OLD NEW [--threshold PCT]`` — and is
deliberately forgiving about partial inputs: a benchmark missing from
the baseline reports as ``new`` (never a crash), one missing from the
new set reports as ``missing``, records at different scales report as
``skipped``, and unreadable files are surfaced as notes.  Only a
confirmed slowdown beyond the threshold makes the exit status nonzero;
CI runs the comparison as a soft gate (report-only) because shared
runners are noisy.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import format_table

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_THRESHOLD_PCT",
    "bench_filename",
    "host_fingerprint",
    "git_sha",
    "make_bench_record",
    "validate_bench_record",
    "write_bench_record",
    "load_bench_dir",
    "BenchComparison",
    "compare_bench_dirs",
]

#: Schema tag stamped into every ``BENCH_*.json`` record.
BENCH_SCHEMA = "repro.perf.bench/1"

_BENCH_RE = re.compile(r"^BENCH_(?P<name>.+)\.json$")

#: Default regression threshold for the compare CLI, in percent.
DEFAULT_THRESHOLD_PCT = 25.0


def bench_filename(name: str) -> str:
    """``BENCH_<name>.json`` for a benchmark called ``name``."""
    return f"BENCH_{name}.json"


def host_fingerprint() -> dict[str, Any]:
    """Where a benchmark ran: enough to spot cross-host comparisons."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
    }


def git_sha(repo_dir: str | None = None) -> str | None:
    """Current commit SHA, or ``None`` outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_bench_record(
    name: str,
    wall_seconds: float,
    scale: float,
    jobs: int,
    sim_cycles: int = 0,
    sim_flits: int = 0,
    repo_dir: str | None = None,
) -> dict[str, Any]:
    """Schema-complete record for one benchmark run."""
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "wall_seconds": wall_seconds,
        "scale": scale,
        "jobs": jobs,
        "sim_cycles": sim_cycles,
        "sim_flits": sim_flits,
        "cycles_per_sec": (
            sim_cycles / wall_seconds
            if sim_cycles > 0 and wall_seconds > 0
            else None
        ),
        "host": host_fingerprint(),
        "git_sha": git_sha(repo_dir),
    }


_REQUIRED_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "name": str,
    "wall_seconds": (int, float),
    "scale": (int, float),
    "jobs": int,
    "sim_cycles": int,
    "sim_flits": int,
    "host": dict,
}


def validate_bench_record(doc: object) -> list[str]:
    """Schema problems of one record; empty list when it is valid."""
    if not isinstance(doc, dict):
        return ["record is not a JSON object"]
    errors: list[str] = []
    for key, types in _REQUIRED_FIELDS.items():
        if key not in doc:
            errors.append(f"missing field {key!r}")
        elif not isinstance(doc[key], types) or isinstance(
            doc[key], bool
        ):
            errors.append(f"field {key!r} has wrong type")
    if isinstance(doc.get("schema"), str) and doc["schema"] != BENCH_SCHEMA:
        errors.append(
            f"schema is {doc['schema']!r}, expected {BENCH_SCHEMA!r}"
        )
    if (
        isinstance(doc.get("wall_seconds"), (int, float))
        and doc["wall_seconds"] <= 0
    ):
        errors.append("wall_seconds must be positive")
    return errors


def write_bench_record(directory: str, record: dict[str, Any]) -> str:
    """Persist ``record`` as ``BENCH_<name>.json``; return the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(record["name"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench_dir(directory: str) -> tuple[dict[str, dict], list[str]]:
    """All valid ``BENCH_*.json`` records under ``directory``.

    Returns ``(records_by_name, notes)``.  A missing directory yields
    no records and one note; unreadable or schema-invalid files are
    skipped with a note each — partial baselines are expected (new
    benchmarks land before their baseline does) and must never crash
    the comparison.
    """
    records: dict[str, dict] = {}
    notes: list[str] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return records, [f"{directory}: not a readable directory"]
    for filename in names:
        match = _BENCH_RE.match(filename)
        if not match:
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            notes.append(f"{path}: unreadable ({exc})")
            continue
        errors = validate_bench_record(doc)
        if errors:
            notes.append(f"{path}: invalid ({errors[0]})")
            continue
        records[match.group("name")] = doc
    return records, notes


@dataclass
class BenchComparison:
    """Outcome of diffing two benchmark directories."""

    rows: list[dict] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    threshold_pct: float = DEFAULT_THRESHOLD_PCT

    @property
    def exit_code(self) -> int:
        """1 when any benchmark regressed beyond the threshold."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        """ASCII report: comparison table plus any notes."""
        parts: list[str] = []
        if self.rows:
            parts.append(
                format_table(
                    self.rows,
                    ["benchmark", "old_s", "new_s", "delta_pct", "status"],
                    title=(
                        f"bench comparison "
                        f"(threshold {self.threshold_pct:g}%)"
                    ),
                )
            )
        else:
            parts.append("bench comparison: no benchmarks found")
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.regressions:
            parts.append(
                "REGRESSED: " + ", ".join(sorted(self.regressions))
            )
        return "\n".join(parts)


def compare_bench_dirs(
    old_dir: str,
    new_dir: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> BenchComparison:
    """Diff two bench directories; see the module docstring for rules."""
    old_records, old_notes = load_bench_dir(old_dir)
    new_records, new_notes = load_bench_dir(new_dir)
    comparison = BenchComparison(
        notes=old_notes + new_notes, threshold_pct=threshold_pct
    )
    for name in sorted(set(old_records) | set(new_records)):
        old = old_records.get(name)
        new = new_records.get(name)
        row = {
            "benchmark": name,
            "old_s": old["wall_seconds"] if old else "",
            "new_s": new["wall_seconds"] if new else "",
            "delta_pct": "",
            "status": "",
        }
        if old is None:
            row["status"] = "new"
        elif new is None:
            row["status"] = "missing"
        elif old["scale"] != new["scale"]:
            row["status"] = "skipped"
            comparison.notes.append(
                f"{name}: scale mismatch "
                f"(old {old['scale']:g}, new {new['scale']:g}) "
                f"— not comparable"
            )
        else:
            delta_pct = 100.0 * (
                new["wall_seconds"] - old["wall_seconds"]
            ) / old["wall_seconds"]
            row["delta_pct"] = f"{delta_pct:+.1f}"
            if delta_pct > threshold_pct:
                row["status"] = "regressed"
                comparison.regressions.append(name)
            elif delta_pct < -threshold_pct:
                row["status"] = "improved"
            else:
                row["status"] = "ok"
        comparison.rows.append(row)
    return comparison
