"""Phase names and the stage-timed router pipeline used when profiling.

The phase profiler (:class:`repro.perf.profiler.PhaseProfiler`) splits
one fabric clock step into the named phases below.  The first six
partition :meth:`MultiNocFabric.step` directly; the four router stages
partition the ``router_pipeline`` slice of it, mirroring the paper's
router microarchitecture (route compute / VC allocation / switch
allocation / switch traversal).

:class:`Router` declares ``__slots__``, so the per-instance method
shadowing the telemetry and invariant subsystems use cannot hook it.
Instead :func:`profiled_router_step` is a line-for-line mirror of
:meth:`Router.step` that brackets each stage with
``time.perf_counter_ns`` and delegates all state mutation to the
router's own ``_allocate_vc`` / ``_lookahead_route`` / ``_forward`` /
``_eject`` methods, so the two code paths cannot drift in behaviour —
only in timing overhead.  ``tests/test_perf_profiler.py`` asserts that
a profiled run and a plain run of the same seed produce identical
fabric reports, which is the guard that keeps this mirror honest.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import TYPE_CHECKING

from repro.noc.topology import Port

if TYPE_CHECKING:
    from repro.noc.router import Router

__all__ = [
    "STEP_PHASES",
    "ROUTER_STAGES",
    "ALL_PHASES",
    "StageClock",
    "profiled_router_step",
]

#: Top-level slices of one ``MultiNocFabric.step`` call, in execution
#: order.  ``router_pipeline`` is itself split by :data:`ROUTER_STAGES`;
#: ``step_other`` is the residual (cycle bookkeeping, timer overhead).
STEP_PHASES = (
    "link_delivery",
    "monitor_lcs",
    "regional_update",
    "ni_packetization",
    "router_pipeline",
    "gating",
    "step_other",
)

#: Stages of the router pipeline slice.  ``switch_alloc`` is the scan
#: loop itself — winner arbitration over (port, VC) pairs — measured as
#: the pipeline residual around the three bracketed stages.
ROUTER_STAGES = (
    "switch_alloc",
    "vc_alloc",
    "route_compute",
    "switch_traversal",
)

ALL_PHASES = STEP_PHASES + ROUTER_STAGES


class StageClock:
    """Nanosecond accumulators for the three bracketed router stages.

    One instance lives per profiler; :func:`profiled_router_step` adds
    into it for every router it steps, and the profiler diffs the
    totals around each fabric step to fill the per-step histograms.
    """

    __slots__ = ("vc_alloc", "route_compute", "switch_traversal")

    def __init__(self) -> None:
        self.vc_alloc = 0
        self.route_compute = 0
        self.switch_traversal = 0

    def bracketed_total(self) -> int:
        """Nanoseconds measured inside explicit stage brackets."""
        return self.vc_alloc + self.route_compute + self.switch_traversal


def profiled_router_step(
    router: "Router", cycle: int, clock: StageClock
) -> None:
    """Mirror of :meth:`Router.step` with per-stage timing.

    Behaviourally identical to the plain step (same scan order, same
    round-robin rotation, same winner rules); every mutation happens in
    the router's own helper methods.  Callers must only invoke it for
    routers with buffered flits, exactly like ``step_routers`` does.
    """
    network = router.network
    if network is None:
        raise RuntimeError("router not attached to a network")
    scan = router._scan_order()
    total = len(scan)
    offset = router._rr
    router._rr = (offset + 1) % total
    if offset:
        scan = scan[offset:] + scan[:offset]
    used_in = 0
    used_out = 0
    heads_waiting = 0
    moved = 0
    credits = router.credits
    for in_port, in_bit, in_vc, channel in scan:
        fifo = channel.fifo
        if not fifo:
            continue
        heads_waiting += 1
        if used_in & in_bit:
            continue
        flit = fifo[0]
        out_port = flit.route
        out_bit = 1 << out_port
        if used_out & out_bit:
            continue
        if out_port == Port.LOCAL:
            t0 = perf_counter_ns()
            router._eject(in_port, in_vc, flit, cycle)
            clock.switch_traversal += perf_counter_ns() - t0
            used_in |= in_bit
            used_out |= out_bit
            moved += 1
            continue
        if channel.out_port < 0:
            t0 = perf_counter_ns()
            granted = router._allocate_vc(channel, flit, out_port)
            clock.vc_alloc += perf_counter_ns() - t0
            if not granted:
                continue
        out_vc = channel.out_vc
        if credits[out_port][out_vc] <= 0:
            continue
        downstream = router.neighbor_router[out_port]
        if downstream is None or downstream.power_state:
            if downstream is not None:
                network.request_wakeup(downstream, router.node)
            continue
        t0 = perf_counter_ns()
        next_route = router._lookahead_route(out_port, flit.packet.dst)
        t1 = perf_counter_ns()
        router._forward(
            in_port, in_vc, flit, out_port, out_vc, downstream,
            next_route, cycle,
        )
        t2 = perf_counter_ns()
        clock.route_compute += t1 - t0
        clock.switch_traversal += t2 - t1
        used_in |= in_bit
        used_out |= out_bit
        moved += 1
    if router.track_blocking:
        router.blocked_accum += heads_waiting - moved
        router.moved_accum += moved
