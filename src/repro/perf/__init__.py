"""Simulator self-profiling, throughput metrics, bench regression.

``repro.perf`` makes the *simulator itself* observable, the way
``repro.telemetry`` makes the simulated network observable:

* :mod:`repro.perf.profiler` — a zero-overhead-when-detached phase
  profiler (``REPRO_PERF=1`` / ``--perf``) that times the router
  pipeline stages, gating controller, congestion monitor, and NI
  packetization per step, with an optional cProfile capture
  (``REPRO_PERF_CPROFILE=1``) for flame graphs;
* :mod:`repro.perf.meters` — always-on simulated-work counters behind
  the cycles/sec and flits/sec figures in the CLI and sweep output;
* :mod:`repro.perf.bench` — machine-readable ``BENCH_*.json`` records
  and the ``python -m repro.perf compare`` regression gate.

See ``docs/perf.md`` for the environment knobs and workflows, and
``docs/telemetry.md`` for the NoC-level counterpart.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    compare_bench_dirs,
    load_bench_dir,
    make_bench_record,
    validate_bench_record,
    write_bench_record,
)
from repro.perf.meters import WORK, WorkMeter, throughput_suffix
from repro.perf.profiler import (
    PROFILE_SCHEMA,
    PhaseProfiler,
    cprofile_enabled,
    maybe_attach,
    perf_enabled,
)

__all__ = [
    "BENCH_SCHEMA",
    "PROFILE_SCHEMA",
    "PhaseProfiler",
    "WORK",
    "WorkMeter",
    "compare_bench_dirs",
    "cprofile_enabled",
    "load_bench_dir",
    "make_bench_record",
    "maybe_attach",
    "perf_enabled",
    "throughput_suffix",
    "validate_bench_record",
    "write_bench_record",
]
