"""Local congestion metrics (paper §3.2.1 and §3.4).

Each node evaluates, every cycle and per subnet, a *local congestion
status* (LCS) from its local router and network interface.  The paper
studies five metrics:

* **BFM** — maximum input-buffer occupancy over the local router's ports
  (the winning metric; threshold 9 flits).
* **BFA** — average input-buffer occupancy (threshold 2 flits).
* **IR**  — the node's packet injection rate (threshold swept in Fig 13).
* **IQOcc** — occupancy of the NI injection queue (threshold 4 flits).
* **Delay** — sampled average blocking delay per flit (threshold 1.5).

For stability every metric output passes through a hysteresis latch:
once congested, the status holds for a minimum number of cycles before
it may reset (paper: "once a subnet is declared congested, it remains in
that status for a few cycles").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.noc.config import CongestionConfig

if TYPE_CHECKING:
    from repro.noc.interface import NetworkInterface
    from repro.noc.router import Router

__all__ = [
    "LocalCongestionMetric",
    "BufferMaxMetric",
    "BufferAverageMetric",
    "InjectionRateMetric",
    "InjectionQueueMetric",
    "BlockingDelayMetric",
    "HysteresisLatch",
    "make_metric",
]


class LocalCongestionMetric(ABC):
    """Raw (unlatched) congestion signal for one (node, subnet) pair."""

    #: Whether routers must maintain blocking-delay counters for this
    #: metric (only the Delay metric needs them).
    needs_blocking_counters = False

    @abstractmethod
    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        """Return True when the subnet looks congested at this node."""


class BufferMaxMetric(LocalCongestionMetric):
    """BFM: max input-port occupancy of the local router >= threshold.

    The paper's chosen metric — its threshold is independent of the
    traffic pattern, and the hardware is a max over five counters.
    """

    def __init__(self, threshold_flits: int) -> None:
        self.threshold_flits = threshold_flits

    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        # The max over ports can't reach the threshold unless the whole
        # router holds at least that many flits (cheap early-out).
        if router.buffered_flits < self.threshold_flits:
            return False
        return router.max_port_occupancy() >= self.threshold_flits


class BufferAverageMetric(LocalCongestionMetric):
    """BFA: mean input-port occupancy >= threshold.

    Fails when congestion runs along few paths: empty ports drag the
    average down and the metric misses it (paper §3.4.2).
    """

    def __init__(self, threshold_flits: float) -> None:
        self.threshold_flits = threshold_flits

    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        # mean >= threshold requires total >= threshold * num_ports.
        if router.buffered_flits < self.threshold_flits * 5:
            return False
        return router.mean_port_occupancy() >= self.threshold_flits


class InjectionRateMetric(LocalCongestionMetric):
    """IR: the node's injection rate into a subnet, packets/node/cycle.

    A subnet reads congested at a node once the node's windowed
    injection rate into it reaches the threshold, so escalation caps
    each subnet's share of this node's traffic at the threshold.  The
    usable threshold equals the per-subnet saturation rate — which
    varies with the traffic pattern (Figure 13) — and that is exactly
    why the paper rejects IR in favour of BFM.
    """

    def __init__(self, threshold: float, window: int) -> None:
        self.threshold = threshold
        self.window = window

    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        return ni.subnet_injection_rate(router.subnet) >= self.threshold


class InjectionQueueMetric(LocalCongestionMetric):
    """IQOcc: NI injection-queue occupancy >= threshold flits.

    Reacts only after the local router's buffers have already filled and
    backpressure reaches the NI, so it is too slow (paper §3.4.3).  The
    signal is node-wide: when the queue backs up, every subnet at this
    node reads congested.
    """

    def __init__(self, threshold_flits: int, capacity_flits: int) -> None:
        self.threshold_flits = threshold_flits
        self.capacity_flits = capacity_flits

    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        occupancy = min(ni.queue_occupancy_flits(), self.capacity_flits)
        return occupancy >= self.threshold_flits


class BlockingDelayMetric(LocalCongestionMetric):
    """Delay: sampled average blocking delay per flit >= threshold.

    Approximated (as the paper's own sampled variant is) by a moving
    average of head-flit wait cycles per forwarded flit, read from the
    router's blocking counters every ``sample_period`` cycles.
    """

    needs_blocking_counters = True

    def __init__(self, threshold_cycles: float, sample_period: int) -> None:
        self.threshold_cycles = threshold_cycles
        self.sample_period = sample_period
        self._average = 0.0
        self._last_blocked = 0
        self._last_moved = 0

    def evaluate(
        self, cycle: int, router: "Router", ni: "NetworkInterface"
    ) -> bool:
        if cycle % self.sample_period == 0:
            blocked = router.blocked_accum - self._last_blocked
            moved = router.moved_accum - self._last_moved
            self._last_blocked = router.blocked_accum
            self._last_moved = router.moved_accum
            sample = blocked / moved if moved else (
                float(blocked > 0) * self.threshold_cycles * 2
            )
            self._average = 0.5 * self._average + 0.5 * sample
        return self._average >= self.threshold_cycles


class HysteresisLatch:
    """Latch a boolean signal with a minimum hold time.

    The latch sets immediately when the raw signal rises and may only
    clear after ``hold_cycles`` cycles with the raw signal low.
    """

    __slots__ = ("hold_cycles", "state", "_held_until")

    def __init__(self, hold_cycles: int) -> None:
        self.hold_cycles = hold_cycles
        self.state = False
        self._held_until = -1

    def update(self, cycle: int, raw: bool) -> bool:
        """Feed the raw signal for ``cycle``; return the latched state."""
        if raw:
            self.state = True
            self._held_until = cycle + self.hold_cycles
        elif self.state and cycle >= self._held_until:
            self.state = False
        return self.state


def make_metric(
    config: CongestionConfig, subnet: int = 0
) -> LocalCongestionMetric:
    """Build the configured local congestion metric.

    A fresh instance is returned per (node, subnet) because some metrics
    (Delay) carry per-router sampling state.
    """
    if config.metric == "bfm":
        return BufferMaxMetric(config.bfm_threshold_flits)
    if config.metric == "bfa":
        return BufferAverageMetric(config.bfa_threshold_flits)
    if config.metric == "ir":
        return InjectionRateMetric(
            config.injection_rate_threshold, config.injection_rate_window
        )
    if config.metric == "iqocc":
        return InjectionQueueMetric(
            config.iqocc_threshold_flits, capacity_flits=16
        )
    if config.metric == "delay":
        return BlockingDelayMetric(
            config.delay_threshold_cycles, config.delay_sample_period
        )
    raise ValueError(f"unknown congestion metric {config.metric!r}")
