"""Subnet-selection policies (paper §3.2).

The NI consults its policy when the packet at the head of the injection
queue needs a subnet:

* **CatnapPolicy** — strict priority: the lowest-order subnet whose
  congestion status (LCS or RCS) is clear; when every subnet is close to
  congestion, round-robin among them.  This is what exposes long idle
  periods in higher-order subnets.
* **RoundRobinPolicy** / **RandomPolicy** — the load-balancing baselines
  the paper shows squander power-gating opportunity.
* **ClassPartitionPolicy** — subnets specialized per message class
  (CCNoC-style, paper §7.2); included so the paper's load-imbalance
  argument against specialization is reproducible.

The IR-threshold variant of Figure 13 is CatnapPolicy combined with the
``ir`` congestion metric, not a separate policy class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from typing import TYPE_CHECKING

from repro.core.monitor import CongestionMonitor
from repro.noc.flit import MessageClass
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:
    from repro.noc.flit import Packet

__all__ = [
    "SubnetSelectionPolicy",
    "CatnapPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "ClassPartitionPolicy",
    "make_policy",
]


class SubnetSelectionPolicy(ABC):
    """Chooses the subnet the head packet of a node is injected into."""

    #: True for policies that guarantee strict lowest-first priority
    #: (never skipping a non-congested lower-order subnet).  The
    #: runtime invariant checker re-verifies this guarantee per
    #: selection when ``REPRO_CHECK=1``.
    strict_priority = False

    def __init__(self, num_subnets: int) -> None:
        if num_subnets < 1:
            raise ValueError("num_subnets must be >= 1")
        self.num_subnets = num_subnets

    @abstractmethod
    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        """Return the subnet index for the next packet at ``node``.

        ``packet`` is the head packet when the caller has one; only
        class-aware policies use it.
        """


class CatnapPolicy(SubnetSelectionPolicy):
    """Priority ordering with congestion-driven escalation."""

    strict_priority = True

    def __init__(
        self, num_subnets: int, monitor: CongestionMonitor, num_nodes: int
    ) -> None:
        super().__init__(num_subnets)
        self.monitor = monitor
        self._rr = [0] * num_nodes

    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        monitor = self.monitor
        for subnet in range(self.num_subnets):
            if not monitor.is_congested(node, subnet):
                return subnet
        # All subnets close to congestion: round-robin among them.
        choice = self._rr[node]
        self._rr[node] = (choice + 1) % self.num_subnets
        return choice


class RoundRobinPolicy(SubnetSelectionPolicy):
    """Per-node round-robin across all subnets (baseline)."""

    def __init__(self, num_subnets: int, num_nodes: int) -> None:
        super().__init__(num_subnets)
        self._rr = [0] * num_nodes

    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        choice = self._rr[node]
        self._rr[node] = (choice + 1) % self.num_subnets
        return choice


class RandomPolicy(SubnetSelectionPolicy):
    """Uniform random subnet choice (baseline)."""

    def __init__(self, num_subnets: int, rng: DeterministicRng) -> None:
        super().__init__(num_subnets)
        self._rng = rng

    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        return self._rng.randrange(self.num_subnets)


class ClassPartitionPolicy(SubnetSelectionPolicy):
    """Specialize subnets per message class (CCNoC-style, §7.2).

    Control-heavy classes (request/forward) share the lower-order
    subnets while data responses take the upper ones; synthetic traffic
    round-robins.  The paper argues this causes load imbalance across
    subnets — data traffic carries most of the bits — and that is the
    behaviour this policy exposes for comparison experiments.
    """

    def __init__(self, num_subnets: int, num_nodes: int) -> None:
        super().__init__(num_subnets)
        self._rr = [0] * num_nodes
        half = max(1, num_subnets // 2)
        self._class_map = {
            MessageClass.REQUEST: range(0, half),
            MessageClass.FORWARD: range(0, half),
            MessageClass.RESPONSE: range(half, num_subnets),
            MessageClass.SYNTHETIC: range(0, num_subnets),
        }

    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        if packet is None:
            candidates = range(self.num_subnets)
        else:
            candidates = self._class_map[packet.message_class]
        candidates = list(candidates)
        choice = candidates[self._rr[node] % len(candidates)]
        self._rr[node] += 1
        return choice


def make_policy(
    name: str,
    num_subnets: int,
    num_nodes: int,
    monitor: CongestionMonitor,
    rng: DeterministicRng,
) -> SubnetSelectionPolicy:
    """Build a selection policy by configuration name.

    ``"ir"`` maps to the Catnap priority policy (the IR experiments vary
    the congestion *metric*, not the selection discipline).
    """
    if name in ("catnap", "ir"):
        return CatnapPolicy(num_subnets, monitor, num_nodes)
    if name == "round_robin":
        return RoundRobinPolicy(num_subnets, num_nodes)
    if name == "random":
        return RandomPolicy(num_subnets, rng.substream("policy"))
    if name == "class_partition":
        return ClassPartitionPolicy(num_subnets, num_nodes)
    raise ValueError(f"unknown selection policy {name!r}")
