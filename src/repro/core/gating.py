"""Router power-gating controller (paper §3.1, §3.3).

Implements the power state machine of Figure 5 and both gating policies
evaluated in the paper:

* **RCS policy (Catnap)** — a router in subnet *h* switches off when its
  buffers have been empty for ``T-idle-detect`` consecutive cycles *and*
  the congestion status of subnet *h−1* is off; it wakes when that
  status turns on, or when an upstream router / the local NI issues a
  look-ahead wakeup.  Subnet 0 stays always-on.
* **Baseline policy (Matsutani et al.)** — used for Single-NoC-PG and
  the round-robin Multi-NoC baseline: switch off after the idle-detect
  window regardless of congestion; wake only on look-ahead wakeups.

The controller also keeps the accounting the paper reports: compensated
sleep cycles (CSC = per-period sleep length minus T-breakeven, from Hu
et al.), state-residency cycles, and transition counts.

:meth:`PowerGatingController.step` is the ``gating`` phase of the
simulator's self-profile (``REPRO_PERF=1``, see ``docs/perf.md``) —
use it to see what this controller costs per simulated cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.monitor import CongestionMonitor
from repro.noc.config import NocConfig
from repro.noc.network import SubnetNetwork
from repro.noc.router import PowerState, Router
from repro.noc.topology import Port

if TYPE_CHECKING:
    from repro.noc.interface import NetworkInterface

__all__ = ["GatingPolicy", "GatingStats", "PowerGatingController"]


class GatingPolicy:
    """Names for the gating policy variants."""

    NONE = "none"
    BASELINE = "baseline"
    RCS = "rcs"

    @staticmethod
    def resolve(config: NocConfig) -> str:
        """Pick the gating policy implied by a fabric configuration.

        Catnap's RCS-conditioned gating only makes sense with the
        priority selection policy and more than one subnet; every other
        power-gated configuration uses the Matsutani-style baseline.
        """
        if not config.gating.enabled:
            return GatingPolicy.NONE
        if (
            config.selection_policy in ("catnap", "ir")
            and config.num_subnets > 1
        ):
            return GatingPolicy.RCS
        return GatingPolicy.BASELINE


@dataclass
class GatingStats:
    """Aggregated gating behaviour for one subnet."""

    active_cycles: int = 0
    sleep_cycles: int = 0
    wakeup_cycles: int = 0
    sleep_periods: int = 0
    compensated_sleep_cycles: int = 0
    short_sleep_periods: int = 0
    wake_requests: int = 0

    @property
    def total_cycles(self) -> int:
        """Router-cycles observed in any state."""
        return self.active_cycles + self.sleep_cycles + self.wakeup_cycles

    def csc_fraction(self) -> float:
        """Compensated sleep cycles as a fraction of router-cycles."""
        total = self.total_cycles
        return self.compensated_sleep_cycles / total if total else 0.0

    def merge(self, other: "GatingStats") -> "GatingStats":
        """Return the element-wise sum of two stats records."""
        return GatingStats(
            self.active_cycles + other.active_cycles,
            self.sleep_cycles + other.sleep_cycles,
            self.wakeup_cycles + other.wakeup_cycles,
            self.sleep_periods + other.sleep_periods,
            self.compensated_sleep_cycles + other.compensated_sleep_cycles,
            self.short_sleep_periods + other.short_sleep_periods,
            self.wake_requests + other.wake_requests,
        )


@dataclass
class _RouterGatingState:
    """Book-keeping attached to each router by the controller."""

    sleep_start: int = -1
    wake_ready: int = -1
    wake_requested: bool = False
    periods: list[int] = field(default_factory=list)


class PowerGatingController:
    """Drives power states of every router in a Multi-NoC fabric."""

    def __init__(
        self,
        config: NocConfig,
        subnets: list[SubnetNetwork],
        monitor: CongestionMonitor,
    ) -> None:
        self.config = config
        self.subnets = subnets
        self.monitor = monitor
        self.policy = GatingPolicy.resolve(config)
        gating = config.gating
        self.wakeup_cycles = gating.wakeup_cycles
        self.breakeven_cycles = gating.breakeven_cycles
        self.idle_detect_cycles = gating.idle_detect_cycles
        self.keep_subnet0 = (
            gating.keep_subnet0_active and self.policy == GatingPolicy.RCS
        )
        self.stats = [GatingStats() for _ in subnets]
        self._state = {
            id(router): _RouterGatingState()
            for network in subnets
            for router in network.routers
        }
        self._pending_wakes: set[int] = set()
        self._router_by_id = {
            id(router): router
            for network in subnets
            for router in network.routers
        }
        for network in subnets:
            network.wakeup_sink = self._on_wakeup_request
        # Wake-watchdog state (armed by the repro.faults recovery
        # layer via arm_wake_timeout; dormant and cost-free otherwise).
        self._wake_timeout: int | None = None
        self._wake_backoff = 2.0
        self._wake_timeout_max = 256
        self._wait_since: dict[int, int] = {}
        self._wait_timeout: dict[int, float] = {}
        #: Wakeups forced by the watchdog (resilience accounting).
        self.forced_wakes = 0

    # ------------------------------------------------------------------
    # Wakeup requests (look-ahead from routers, injection from NIs)
    # ------------------------------------------------------------------
    def _on_wakeup_request(self, router: Router, requester_node: int) -> None:
        self.request_wakeup(router)

    def request_wakeup(self, router: Router) -> None:
        """Ask for ``router`` to be powered up (idempotent per cycle)."""
        if self.policy == GatingPolicy.NONE:
            return
        if router.power_state == PowerState.SLEEP:
            self._pending_wakes.add(id(router))
            self.stats[router.subnet].wake_requests += 1

    # ------------------------------------------------------------------
    # Wake watchdog (the ``wakeup-timeout`` recovery of repro.faults)
    # ------------------------------------------------------------------
    def arm_wake_timeout(
        self,
        timeout: int,
        backoff: float = 2.0,
        max_timeout: int = 256,
    ) -> None:
        """Enable the wake watchdog: force-wake routers that keep
        traffic waiting for ``timeout`` cycles.

        A countermeasure against lost look-ahead wakeups: the normal
        request wire (:meth:`request_wakeup`) may be faulty, so the
        watchdog writes pending wakes directly, a redundant wake path.
        Each forced wake multiplies that router's next timeout by
        ``backoff`` (saturating at ``max_timeout``) so a router the
        fabric keeps re-gating is not thrashed awake every period.
        """
        if timeout < 1:
            raise ValueError("wake timeout must be >= 1")
        if backoff < 1.0:
            raise ValueError("wake backoff must be >= 1.0")
        self._wake_timeout = timeout
        self._wake_backoff = backoff
        self._wake_timeout_max = max(timeout, max_timeout)

    def wake_on_timeout(
        self, cycle: int, nis: "Iterable[NetworkInterface]" = ()
    ) -> int:
        """Run one watchdog pass; return the number of forced wakes.

        A sleeping router is *waited on* when an NI holds a streaming
        slot for it or an upstream head flit routes to it.  Once a
        router has been continuously waited on for its current timeout
        the watchdog adds it to the pending-wake set directly
        (bypassing the request wire) and backs its timeout off.
        """
        if self._wake_timeout is None or self.policy == GatingPolicy.NONE:
            return 0
        waiting: set[int] = set()
        for ni in nis:
            for subnet, network in enumerate(self.subnets):
                router = network.routers[ni.node]
                if router.power_state == PowerState.SLEEP and any(
                    slot is not None for slot in ni._slots[subnet]
                ):
                    waiting.add(id(router))
        for network in self.subnets:
            for router in network.routers:
                if (
                    router.power_state != PowerState.ACTIVE
                    or not router.buffered_flits
                ):
                    continue
                for port in router.ports:
                    for channel in port.vcs:
                        if not channel.fifo:
                            continue
                        out_port = channel.fifo[0].route
                        if out_port == Port.LOCAL:
                            continue
                        downstream = router.neighbor_router[out_port]
                        if (
                            downstream is not None
                            and downstream.power_state == PowerState.SLEEP
                        ):
                            waiting.add(id(downstream))
        since = self._wait_since
        timeouts = self._wait_timeout
        for key in [k for k in since if k not in waiting]:
            del since[key]
            timeouts.pop(key, None)
        forced = 0
        for key in sorted(waiting):
            started = since.setdefault(key, cycle)
            timeout = timeouts.get(key, float(self._wake_timeout))
            if cycle - started < timeout:
                continue
            self._pending_wakes.add(key)
            self.stats[self._router_by_id[key].subnet].wake_requests += 1
            self.forced_wakes += 1
            forced += 1
            since[key] = cycle
            timeouts[key] = min(
                timeout * self._wake_backoff,
                float(self._wake_timeout_max),
            )
        return forced

    # ------------------------------------------------------------------
    # Per-cycle evaluation
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance idle counters and run all power-state transitions."""
        if self.policy == GatingPolicy.NONE:
            for subnet_idx, network in enumerate(self.subnets):
                self.stats[subnet_idx].active_cycles += len(network.routers)
            return
        rcs_policy = self.policy == GatingPolicy.RCS
        monitor = self.monitor
        pending = self._pending_wakes
        for subnet_idx, network in enumerate(self.subnets):
            stats = self.stats[subnet_idx]
            gate_this_subnet = not (self.keep_subnet0 and subnet_idx == 0)
            lower = subnet_idx - 1
            for router in network.routers:
                state = router.power_state
                if state == PowerState.ACTIVE:
                    stats.active_cycles += 1
                    if not gate_this_subnet:
                        continue
                    if router.is_drained:
                        router.idle_cycles += 1
                    else:
                        router.idle_cycles = 0
                        continue
                    if router.idle_cycles < self.idle_detect_cycles:
                        continue
                    if rcs_policy and monitor.gating_status(
                        router.node, lower
                    ):
                        continue
                    self._sleep(router, cycle)
                elif state == PowerState.SLEEP:
                    stats.sleep_cycles += 1
                    wake = id(router) in pending
                    if not wake and rcs_policy and monitor.gating_status(
                        router.node, lower
                    ):
                        wake = True
                    if wake:
                        self._begin_wakeup(router, cycle, stats)
                else:  # WAKEUP
                    stats.wakeup_cycles += 1
                    if cycle >= self._state[id(router)].wake_ready:
                        self._wake_complete(router, cycle)
        pending.clear()

    # The three transition methods below are the telemetry probe
    # points: repro.telemetry shadows them with instance attributes to
    # observe every power transition with its exact cycle, so the
    # unhooked controller keeps the unconditional fast path (no
    # listener branches).
    def _sleep(self, router: Router, cycle: int) -> None:
        router.power_state = PowerState.SLEEP
        state = self._state[id(router)]
        state.sleep_start = cycle
        self.stats[router.subnet].sleep_periods += 1

    def _wake_complete(self, router: Router, cycle: int) -> None:
        router.power_state = PowerState.ACTIVE
        router.idle_cycles = 0

    def _begin_wakeup(
        self, router: Router, cycle: int, stats: GatingStats
    ) -> None:
        router.power_state = PowerState.WAKEUP
        state = self._state[id(router)]
        state.wake_ready = cycle + self.wakeup_cycles
        self._close_period(router, state, cycle, stats)

    def _close_period(
        self,
        router: Router,
        state: _RouterGatingState,
        cycle: int,
        stats: GatingStats,
    ) -> None:
        if state.sleep_start < 0:
            return
        length = cycle - state.sleep_start
        state.periods.append(length)
        if length >= self.breakeven_cycles:
            stats.compensated_sleep_cycles += length - self.breakeven_cycles
        else:
            stats.short_sleep_periods += 1
        state.sleep_start = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_of(self, router: Router) -> _RouterGatingState:
        """The controller's bookkeeping record for ``router``.

        Read-only view for diagnostics and the runtime invariant
        checker (:mod:`repro.analysis.invariants`), which cross-checks
        it against the router's actual power state every cycle.
        """
        return self._state[id(router)]

    # ------------------------------------------------------------------
    # Finalization and summaries
    # ------------------------------------------------------------------
    def finalize(self, cycle: int) -> None:
        """Close still-open sleep periods at the end of a simulation."""
        if self.policy == GatingPolicy.NONE:
            return
        for network in self.subnets:
            stats = self.stats[network.subnet]
            for router in network.routers:
                state = self._state[id(router)]
                if (
                    router.power_state == PowerState.SLEEP
                    and state.sleep_start >= 0
                ):
                    self._close_period(router, state, cycle, stats)

    def total_stats(self) -> GatingStats:
        """Stats summed over all subnets."""
        total = GatingStats()
        for stats in self.stats:
            total = total.merge(stats)
        return total

    def sleep_period_lengths(self) -> list[int]:
        """All closed sleep-period lengths (for distribution analysis)."""
        return [
            length
            for state in self._state.values()
            for length in state.periods
        ]
