"""Regional congestion status via a 1-bit OR network (paper §3.2.1).

The mesh is partitioned into quadrant regions (4x4 sub-grids of the 8x8
mesh).  Per subnet and per region, an H-tree OR network aggregates the
local congestion status (LCS) of every node; the resulting *regional
congestion status* (RCS) bit is latched into every node's status
flip-flop once per update period.  The paper's SPICE analysis gives a
propagation delay of 2.7 ns (6 cycles at 2 GHz) and a switching energy
of 8.7 pJ per transition; both are modelled here.
"""

from __future__ import annotations

from repro.noc.topology import ConcentratedMesh

__all__ = ["RegionalCongestionNetwork", "OR_NETWORK_SWITCH_ENERGY_J"]

#: Dynamic switching energy of the 1-bit OR H-tree (paper §4.1).
OR_NETWORK_SWITCH_ENERGY_J = 8.7e-12


class RegionalCongestionNetwork:
    """Latched per-region OR of local congestion bits, per subnet.

    ``update`` must be called every cycle with the current LCS matrix;
    the latched RCS changes only on update-period boundaries, modelling
    the OR tree's propagation delay.
    """

    def __init__(
        self,
        mesh: ConcentratedMesh,
        num_subnets: int,
        update_period: int,
        divisions: int = 2,
    ) -> None:
        if update_period < 1:
            raise ValueError("update_period must be >= 1")
        if divisions < 1:
            raise ValueError("divisions must be >= 1")
        self.mesh = mesh
        self.num_subnets = num_subnets
        self.update_period = update_period
        # `divisions` regions per axis, capped by the mesh dimensions.
        # divisions=2 reproduces the paper's four 4x4 quadrants on the
        # 8x8 mesh; 1 degenerates to a single global OR network.
        div_x = min(divisions, mesh.cols)
        div_y = min(divisions, mesh.rows)
        self.divisions = divisions
        self.num_regions = div_x * div_y
        self._region_of = [
            (mesh.coordinates(node)[1] * div_y // mesh.rows) * div_x
            + (mesh.coordinates(node)[0] * div_x // mesh.cols)
            for node in range(mesh.num_nodes)
        ]
        # rcs[subnet][region]: the latched bit all nodes in the region read.
        self._rcs = [
            [False] * self.num_regions for _ in range(num_subnets)
        ]
        #: Count of latched-bit transitions (for OR-network energy).
        self.transitions = 0

    # ------------------------------------------------------------------
    def update(self, cycle: int, lcs: list[list[bool]]) -> None:
        """Latch new regional bits if ``cycle`` is an update boundary.

        Parameters
        ----------
        cycle:
            Current simulation cycle.
        lcs:
            ``lcs[subnet][node]`` — the latched local congestion status
            of every node.
        """
        if cycle % self.update_period:
            return
        region_of = self._region_of
        for subnet in range(self.num_subnets):
            lcs_row = lcs[subnet]
            new_bits = [False] * self.num_regions
            for node, congested in enumerate(lcs_row):
                if congested:
                    new_bits[region_of[node]] = True
            old_bits = self._rcs[subnet]
            for region in range(self.num_regions):
                if new_bits[region] != old_bits[region]:
                    self.transitions += 1
            self._rcs[subnet] = new_bits

    # ------------------------------------------------------------------
    def refresh(self, cycle: int, lcs: list[list[bool]]) -> int:
        """Recompute every latched bit immediately (heartbeat scrub).

        Unlike :meth:`update` this ignores the update-period latch: it
        is the redundant scrub path of the ``rcs-refresh`` recovery
        policy (:mod:`repro.faults`), repairing latched bits a fault
        forced or froze.  Returns the number of bits corrected; each
        correction counts as an OR-network transition (the scrub
        drives the same wires).
        """
        region_of = self._region_of
        corrected = 0
        for subnet in range(self.num_subnets):
            lcs_row = lcs[subnet]
            new_bits = [False] * self.num_regions
            for node, congested in enumerate(lcs_row):
                if congested:
                    new_bits[region_of[node]] = True
            old_bits = self._rcs[subnet]
            for region in range(self.num_regions):
                if new_bits[region] != old_bits[region]:
                    self.transitions += 1
                    corrected += 1
            self._rcs[subnet] = new_bits
        return corrected

    # ------------------------------------------------------------------
    def force_rcs(self, subnet: int, region: int, value: bool) -> bool:
        """Override one latched regional bit (fault-injection hook).

        Stuck-at RCS faults re-force the latched bit after every
        :meth:`update`, modelling a stuck status flip-flop.  Counts as
        an OR-network transition when the bit actually changes; returns
        True in that case.
        """
        row = self._rcs[subnet]
        if row[region] == value:
            return False
        row[region] = value
        self.transitions += 1
        return True

    # ------------------------------------------------------------------
    def rcs(self, subnet: int, node: int) -> bool:
        """Latched regional congestion bit visible at ``node``."""
        return self._rcs[subnet][self._region_of[node]]

    def rcs_region(self, subnet: int, region: int) -> bool:
        """Latched regional congestion bit of ``region`` directly."""
        return self._rcs[subnet][region]

    def region_of(self, node: int) -> int:
        """Region index of ``node`` (cached from the mesh)."""
        return self._region_of[node]

    def switching_energy_joules(self) -> float:
        """Total OR-network switching energy so far."""
        return self.transitions * OR_NETWORK_SWITCH_ENERGY_J
