"""Catnap's contribution (paper §3): congestion-aware subnet selection
(:class:`CatnapPolicy`, §3.2) + the RCS-conditioned power-gating policy
(:class:`PowerGatingController`, §3.3), both driven by local congestion
metrics (§3.2.1) aggregated over regions by a 1-bit OR network
(:class:`RegionalCongestionNetwork`)."""

from repro.core.congestion import (
    BlockingDelayMetric,
    BufferAverageMetric,
    BufferMaxMetric,
    HysteresisLatch,
    InjectionQueueMetric,
    InjectionRateMetric,
    LocalCongestionMetric,
    make_metric,
)
from repro.core.gating import (
    GatingPolicy,
    GatingStats,
    PowerGatingController,
)
from repro.core.monitor import CongestionMonitor
from repro.core.policies import (
    CatnapPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SubnetSelectionPolicy,
    make_policy,
)
from repro.core.regional import (
    OR_NETWORK_SWITCH_ENERGY_J,
    RegionalCongestionNetwork,
)

__all__ = [
    "BlockingDelayMetric",
    "BufferAverageMetric",
    "BufferMaxMetric",
    "HysteresisLatch",
    "InjectionQueueMetric",
    "InjectionRateMetric",
    "LocalCongestionMetric",
    "make_metric",
    "GatingPolicy",
    "GatingStats",
    "PowerGatingController",
    "CongestionMonitor",
    "CatnapPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SubnetSelectionPolicy",
    "make_policy",
    "OR_NETWORK_SWITCH_ENERGY_J",
    "RegionalCongestionNetwork",
]
