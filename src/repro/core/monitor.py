"""Per-node, per-subnet congestion monitoring (paper §3.2, Figure 4).

``CongestionMonitor`` owns one local metric + hysteresis latch per
(node, subnet), feeds the regional OR network, and answers the two
questions Catnap's policies ask every cycle:

* :meth:`is_congested` — LCS **or** RCS; drives subnet selection.
* :meth:`gating_status` — the lower-order-subnet status the power-gating
  policy conditions on (RCS when the OR network is enabled, otherwise
  the node's own LCS — the paper's *BFM-local* variant).

Under ``REPRO_PERF=1`` (see ``docs/perf.md``) :meth:`update` is the
``monitor_lcs`` phase of the simulator's self-profile, with the
regional OR-network update timed separately as ``regional_update``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.congestion import HysteresisLatch, make_metric
from repro.core.regional import RegionalCongestionNetwork
from repro.noc.config import NocConfig
from repro.noc.topology import ConcentratedMesh

if TYPE_CHECKING:
    from repro.noc.interface import NetworkInterface
    from repro.noc.network import SubnetNetwork

__all__ = ["CongestionMonitor"]


class CongestionMonitor:
    """Evaluates LCS every cycle and RCS every update period."""

    def __init__(self, config: NocConfig, mesh: ConcentratedMesh) -> None:
        self.config = config
        self.mesh = mesh
        self.num_subnets = config.num_subnets
        self.num_nodes = mesh.num_nodes
        cc = config.congestion
        # metrics[subnet][node], latches[subnet][node]
        self._metrics = [
            [make_metric(cc, subnet) for _ in range(self.num_nodes)]
            for subnet in range(self.num_subnets)
        ]
        self._latches = [
            [HysteresisLatch(cc.hold_cycles) for _ in range(self.num_nodes)]
            for _ in range(self.num_subnets)
        ]
        #: lcs[subnet][node] — latched local congestion status.
        self.lcs = [
            [False] * self.num_nodes for _ in range(self.num_subnets)
        ]
        self.regional = RegionalCongestionNetwork(
            mesh, self.num_subnets, cc.rcs_update_period, cc.rcs_divisions
        )
        self.use_regional = cc.use_regional
        self.needs_blocking_counters = (
            self._metrics[0][0].needs_blocking_counters
            if self.num_nodes
            else False
        )
        # Buffer-occupancy metrics are identically False over an empty
        # subnet, so idle subnets can skip per-node evaluation entirely
        # (as long as no latch is still holding a congested status).
        self._idle_skippable = cc.metric in ("bfm", "bfa")
        self._latched_count = [0] * self.num_subnets
        # BFM (the paper's chosen metric) is evaluated for every busy
        # (node, subnet) pair every cycle; update() inlines its metric
        # and latch bodies when this threshold is set, because the two
        # method calls per pair dominate the monitor's cost.
        self._bfm_threshold = (
            cc.bfm_threshold_flits if cc.metric == "bfm" else None
        )

    # ------------------------------------------------------------------
    def update(
        self,
        cycle: int,
        subnets: "list[SubnetNetwork]",
        nis: "list[NetworkInterface]",
    ) -> None:
        """Re-evaluate every LCS and (on boundaries) latch RCS."""
        lcs = self.lcs
        latched_count = self._latched_count
        for subnet_idx, network in enumerate(subnets):
            if (
                self._idle_skippable
                and network.flits_in_network == 0
                and latched_count[subnet_idx] == 0
            ):
                continue
            metrics = self._metrics[subnet_idx]
            latches = self._latches[subnet_idx]
            routers = network.routers
            lcs_row = lcs[subnet_idx]
            count = 0
            bfm = self._bfm_threshold
            if bfm is not None:
                # BufferMaxMetric.evaluate + HysteresisLatch.update,
                # inlined (identical logic, no per-node calls).
                for node, router in enumerate(routers):
                    latch = latches[node]
                    congested = router.buffered_flits >= bfm
                    if congested:
                        # Router.max_port_occupancy, inlined: polled
                        # for every busy (node, subnet) pair every
                        # cycle, where the call frame dominates.
                        best = 0
                        for port in router.ports:
                            occupancy = port.occupancy
                            if occupancy > best:
                                best = occupancy
                        congested = best >= bfm
                    if congested:
                        latch.state = state = True
                        latch._held_until = cycle + latch.hold_cycles
                    else:
                        state = latch.state
                        if state and cycle >= latch._held_until:
                            latch.state = state = False
                    lcs_row[node] = state
                    if state:
                        count += 1
            else:
                for node in range(self.num_nodes):
                    raw = metrics[node].evaluate(
                        cycle, routers[node], nis[node]
                    )
                    state = latches[node].update(cycle, raw)
                    lcs_row[node] = state
                    if state:
                        count += 1
            latched_count[subnet_idx] = count
        if self.use_regional:
            self.regional.update(cycle, lcs)

    # ------------------------------------------------------------------
    def force_lcs(self, subnet: int, node: int, value: bool) -> bool:
        """Override one published LCS bit, keeping the count coherent.

        Fault-injection hook (:mod:`repro.faults`): stuck-at LCS
        faults force the latched bit after every :meth:`update`; the
        latched count must follow so :meth:`lcs_count` and the
        idle-subnet fast path observe the forced state.  Returns True
        when the bit actually changed.
        """
        row = self.lcs[subnet]
        if row[node] == value:
            return False
        row[node] = value
        self._latched_count[subnet] += 1 if value else -1
        return True

    # ------------------------------------------------------------------
    def is_congested(self, node: int, subnet: int) -> bool:
        """Subnet-selection view: LCS(node) OR RCS(region of node)."""
        if self.lcs[subnet][node]:
            return True
        if self.use_regional:
            return self.regional.rcs(subnet, node)
        return False

    def gating_status(self, node: int, subnet: int) -> bool:
        """Power-gating view of the given subnet's congestion at ``node``.

        Catnap gates a router in subnet *h* against the congestion of
        subnet *h−1*; with the OR network this is the regional bit, in
        the BFM-local ablation it is the node's own LCS.
        """
        if self.use_regional:
            return self.regional.rcs(subnet, node)
        return self.lcs[subnet][node]

    def lcs_count(self, subnet: int) -> int:
        """Number of nodes whose latched LCS is set for ``subnet``.

        O(1): read from the count maintained by :meth:`update` (also
        used for the idle-subnet fast path), so telemetry samplers can
        poll it every period without scanning the LCS matrix.
        """
        return self._latched_count[subnet]

    def congested_fraction(self, subnet: int) -> float:
        """Fraction of nodes whose LCS is set (diagnostics)."""
        row = self.lcs[subnet]
        return sum(row) / len(row) if row else 0.0
