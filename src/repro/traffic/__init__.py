"""Synthetic traffic substrate: patterns, generators, traces."""

from repro.traffic.generators import (
    BurstyTrafficSource,
    SyntheticTrafficSource,
)
from repro.traffic.patterns import (
    PATTERN_NAMES,
    BitComplementPattern,
    TrafficPattern,
    TransposePattern,
    UniformRandomPattern,
    make_pattern,
)
from repro.traffic.trace import (
    RecordingSource,
    TraceRecord,
    TraceSource,
    TrafficTrace,
)

__all__ = [
    "BurstyTrafficSource",
    "SyntheticTrafficSource",
    "RecordingSource",
    "TraceRecord",
    "TraceSource",
    "TrafficTrace",
    "PATTERN_NAMES",
    "BitComplementPattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformRandomPattern",
    "make_pattern",
]
