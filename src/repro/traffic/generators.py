"""Open-loop synthetic traffic sources.

Each node injects packets by a Bernoulli process whose per-cycle
probability equals the offered load in packets/node/cycle.  The bursty
source replays a piecewise-constant load schedule, reproducing the
two-burst scenario of Figure 12.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.noc.backend import NEVER
from repro.noc.config import SYNTHETIC_PACKET_BITS
from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.traffic.patterns import TrafficPattern
from repro.util.rng import DeterministicRng
from repro.util.validation import check_in_range

__all__ = ["SyntheticTrafficSource", "BurstyTrafficSource"]


class SyntheticTrafficSource:
    """Constant-load Bernoulli injector over a traffic pattern."""

    def __init__(
        self,
        fabric: MultiNocFabric,
        pattern: TrafficPattern,
        load: float,
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        seed: int = 7,
    ) -> None:
        check_in_range("load", load, 0.0, 1.0)
        self.fabric = fabric
        self.pattern = pattern
        self.load = load
        self.packet_bits = packet_bits
        self.rng = DeterministicRng(seed, "traffic")
        self.packets_generated = 0

    def current_load(self, cycle: int) -> float:
        """Offered load (packets/node/cycle) active at ``cycle``."""
        return self.load

    def next_offer_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which :meth:`step` may act.

        The skip backend (:mod:`repro.noc.backend`) uses this horizon
        to jump quiescent spans: at any cycle with zero load, ``step``
        returns before touching the RNG, so skipping the call entirely
        is byte-identical.  A constant-load source is either always
        active or never active.
        """
        return cycle if self.load > 0.0 else NEVER

    def step(self, cycle: int) -> None:
        """Possibly inject one packet at each node this cycle."""
        load = self.current_load(cycle)
        if load <= 0.0:
            return
        fabric = self.fabric
        pattern = self.pattern
        rng = self.rng
        random = rng.random
        for node in range(fabric.mesh.num_nodes):
            if random() >= load:
                continue
            dst = pattern.destination(node, rng)
            if dst is None:
                continue
            fabric.offer(
                Packet(
                    src=node,
                    dst=dst,
                    size_bits=self.packet_bits,
                    message_class=MessageClass.SYNTHETIC,
                )
            )
            self.packets_generated += 1


class BurstyTrafficSource(SyntheticTrafficSource):
    """Bernoulli injector driven by a piecewise-constant load schedule.

    ``schedule`` is a sequence of ``(start_cycle, load)`` pairs sorted by
    start cycle; the load before the first entry is the first entry's
    load.  Figure 12's scenario is the default schedule in
    :func:`repro.experiments.fig12_bursty.burst_schedule`.
    """

    def __init__(
        self,
        fabric: MultiNocFabric,
        pattern: TrafficPattern,
        schedule: Sequence[tuple[int, float]],
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        seed: int = 7,
    ) -> None:
        if not schedule:
            raise ValueError("schedule must not be empty")
        starts = [start for start, _ in schedule]
        if starts != sorted(starts):
            raise ValueError("schedule must be sorted by start cycle")
        super().__init__(
            fabric, pattern, schedule[0][1], packet_bits, seed
        )
        self._starts = starts
        self._loads = [load for _, load in schedule]

    def current_load(self, cycle: int) -> float:
        index = bisect_right(self._starts, cycle) - 1
        return self._loads[max(index, 0)]

    def next_offer_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` with a positive scheduled load."""
        if self.current_load(cycle) > 0.0:
            return cycle
        index = bisect_right(self._starts, cycle)
        for k in range(index, len(self._starts)):
            if self._loads[k] > 0.0:
                return self._starts[k]
        return NEVER
