"""Traffic trace recording and replay.

The paper's methodology is trace-driven: instruction traces feed a
cycle-level backend.  This module provides the network-level analogue —
any traffic source can be recorded into a :class:`TrafficTrace` and
replayed cycle-accurately later (or on a different fabric
configuration), which makes experiments repeatable independent of the
generator that produced them and enables apples-to-apples comparisons
of designs under the *identical* packet sequence.

Traces serialize to a simple text format (one packet per line) so they
can be stored alongside experiment results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.noc.flit import Packet
from repro.noc.multinoc import MultiNocFabric

__all__ = ["TraceRecord", "TrafficTrace", "RecordingSource", "TraceSource"]


@dataclass(frozen=True)
class TraceRecord:
    """One recorded packet injection."""

    cycle: int
    src: int
    dst: int
    size_bits: int
    message_class: int


class TrafficTrace:
    """An ordered collection of packet-injection records."""

    def __init__(self, records: list[TraceRecord] | None = None) -> None:
        self.records: list[TraceRecord] = list(records or [])

    def append(self, record: TraceRecord) -> None:
        """Add one record (records must be appended in cycle order)."""
        if self.records and record.cycle < self.records[-1].cycle:
            raise ValueError("trace records must be in cycle order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> int:
        """Cycle of the last recorded injection (0 when empty)."""
        return self.records[-1].cycle if self.records else 0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as one whitespace-separated line per packet."""
        lines = [
            f"{r.cycle} {r.src} {r.dst} {r.size_bits} {r.message_class}"
            for r in self.records
        ]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: str | Path) -> "TrafficTrace":
        """Read a trace written by :meth:`save`."""
        trace = cls()
        for lineno, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise ValueError(f"malformed trace line {lineno}: {line!r}")
            cycle, src, dst, bits, mc = (int(p) for p in parts)
            trace.append(TraceRecord(cycle, src, dst, bits, mc))
        return trace


class RecordingSource:
    """Wraps any traffic source and records what it offers.

    The wrapped source must expose ``step(cycle)`` and offer packets
    through the fabric passed here; recording hooks the fabric's
    ``offer`` just for the duration of each step.
    """

    def __init__(self, fabric: MultiNocFabric, inner) -> None:
        self.fabric = fabric
        self.inner = inner
        self.trace = TrafficTrace()

    def step(self, cycle: int) -> None:
        """Run the inner source for one cycle, recording its packets."""
        original_offer = self.fabric.offer

        def recording_offer(packet: Packet) -> None:
            self.trace.append(
                TraceRecord(
                    cycle=cycle,
                    src=packet.src,
                    dst=packet.dst,
                    size_bits=packet.size_bits,
                    message_class=packet.message_class,
                )
            )
            original_offer(packet)

        self.fabric.offer = recording_offer  # type: ignore[method-assign]
        try:
            self.inner.step(cycle)
        finally:
            self.fabric.offer = original_offer  # type: ignore[method-assign]


class TraceSource:
    """Replays a :class:`TrafficTrace` into a fabric cycle-accurately."""

    def __init__(self, fabric: MultiNocFabric, trace: TrafficTrace) -> None:
        self.fabric = fabric
        self.trace = trace
        self._index = 0
        self.packets_generated = 0

    @property
    def exhausted(self) -> bool:
        """True once every record has been replayed."""
        return self._index >= len(self.trace.records)

    def step(self, cycle: int) -> None:
        """Offer every packet recorded for ``cycle``."""
        records = self.trace.records
        index = self._index
        while index < len(records) and records[index].cycle <= cycle:
            record = records[index]
            self.fabric.offer(
                Packet(
                    src=record.src,
                    dst=record.dst,
                    size_bits=record.size_bits,
                    message_class=record.message_class,
                )
            )
            self.packets_generated += 1
            index += 1
        self._index = index
