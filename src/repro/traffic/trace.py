"""Traffic trace recording and replay.

The paper's methodology is trace-driven: instruction traces feed a
cycle-level backend.  This module provides the network-level analogue —
any traffic source can be recorded into a :class:`TrafficTrace` and
replayed cycle-accurately later (or on a different fabric
configuration), which makes experiments repeatable independent of the
generator that produced them and enables apples-to-apples comparisons
of designs under the *identical* packet sequence.

Traces serialize to a simple text format (one packet per line) so they
can be stored alongside experiment results.  Version 1 files start
with a ``#catnap-trace v1`` header; each line carries five mandatory
integer fields (``cycle src dst size_bits message_class``) and an
optional sixth (``tenant``).  Malformed input fails loudly with the
offending line number.  For traces of millions of packets use the
chunked binary format in :mod:`repro.workloads.stream`, which replays
under bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.noc.backend import NEVER
from repro.noc.flit import Packet
from repro.noc.multinoc import MultiNocFabric

__all__ = [
    "TRACE_TEXT_VERSION",
    "TraceRecord",
    "TrafficTrace",
    "RecordingSource",
    "TraceSource",
]

#: Version written by :meth:`TrafficTrace.save` (``#catnap-trace v1``).
TRACE_TEXT_VERSION = 1

_HEADER_PREFIX = "#catnap-trace"


@dataclass(frozen=True)
class TraceRecord:
    """One recorded packet injection."""

    cycle: int
    src: int
    dst: int
    size_bits: int
    message_class: int
    #: Tenant tag for multi-tenant serving traffic (-1 = untagged).
    tenant: int = -1

    def validate(self) -> None:
        """Raise :class:`ValueError` on any out-of-range field."""
        if self.cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {self.cycle}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(
                f"src/dst must be >= 0, got {self.src}/{self.dst}"
            )
        if self.size_bits <= 0:
            raise ValueError(
                f"size_bits must be positive, got {self.size_bits}"
            )
        if self.message_class < 0:
            raise ValueError(
                f"message_class must be >= 0, got {self.message_class}"
            )
        if self.tenant < -1:
            raise ValueError(f"tenant must be >= -1, got {self.tenant}")


class TrafficTrace:
    """An ordered collection of packet-injection records."""

    def __init__(self, records: list[TraceRecord] | None = None) -> None:
        self.records: list[TraceRecord] = list(records or [])

    def append(self, record: TraceRecord) -> None:
        """Add one record (records must be appended in cycle order)."""
        if self.records and record.cycle < self.records[-1].cycle:
            raise ValueError("trace records must be in cycle order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> int:
        """Cycle of the last recorded injection (0 when empty)."""
        return self.records[-1].cycle if self.records else 0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace with a version header, one line per packet.

        Untagged records emit the classic five fields; records carrying
        a tenant tag append it as a sixth field, so files of untagged
        traffic stay byte-compatible with pre-versioned readers.
        """
        lines = [f"{_HEADER_PREFIX} v{TRACE_TEXT_VERSION}"]
        for r in self.records:
            line = f"{r.cycle} {r.src} {r.dst} {r.size_bits} {r.message_class}"
            if r.tenant >= 0:
                line += f" {r.tenant}"
            lines.append(line)
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "TrafficTrace":
        """Read a trace written by :meth:`save`.

        Accepts headerless (pre-version) files for backward
        compatibility.  Every malformed line — wrong field count,
        non-integer fields, out-of-range values, cycle-order
        violations, or an unsupported header version — raises
        :class:`ValueError` naming the offending line number.
        """
        trace = cls()
        for lineno, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if line.startswith(_HEADER_PREFIX):
                version = line[len(_HEADER_PREFIX):].strip()
                if version != f"v{TRACE_TEXT_VERSION}":
                    raise ValueError(
                        f"unsupported trace version {version!r} on "
                        f"line {lineno} (expected "
                        f"'v{TRACE_TEXT_VERSION}')"
                    )
                continue
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (5, 6):
                raise ValueError(
                    f"malformed trace line {lineno}: expected 5 or 6 "
                    f"fields, got {len(parts)}: {line!r}"
                )
            try:
                fields = [int(p) for p in parts]
            except ValueError:
                raise ValueError(
                    f"malformed trace line {lineno}: non-integer "
                    f"field in {line!r}"
                ) from None
            record = TraceRecord(*fields)
            try:
                record.validate()
                trace.append(record)
            except ValueError as exc:
                raise ValueError(
                    f"malformed trace line {lineno}: {exc}"
                ) from None
        return trace


class RecordingSource:
    """Wraps any traffic source and records what it offers.

    The wrapped source must expose ``step(cycle)`` and offer packets
    through the fabric passed here; recording hooks the fabric's
    ``offer`` just for the duration of each step.
    """

    def __init__(self, fabric: MultiNocFabric, inner) -> None:
        self.fabric = fabric
        self.inner = inner
        self.trace = TrafficTrace()

    def next_offer_cycle(self, cycle: int) -> int:
        """Delegate the skip horizon to the wrapped source."""
        probe = getattr(self.inner, "next_offer_cycle", None)
        return probe(cycle) if probe is not None else cycle

    def step(self, cycle: int) -> None:
        """Run the inner source for one cycle, recording its packets."""
        original_offer = self.fabric.offer

        def recording_offer(packet: Packet) -> None:
            self.trace.append(
                TraceRecord(
                    cycle=cycle,
                    src=packet.src,
                    dst=packet.dst,
                    size_bits=packet.size_bits,
                    message_class=packet.message_class,
                    tenant=packet.tenant,
                )
            )
            original_offer(packet)

        self.fabric.offer = recording_offer  # type: ignore[method-assign]
        try:
            self.inner.step(cycle)
        finally:
            self.fabric.offer = original_offer  # type: ignore[method-assign]


class TraceSource:
    """Replays a :class:`TrafficTrace` into a fabric cycle-accurately."""

    def __init__(self, fabric: MultiNocFabric, trace: TrafficTrace) -> None:
        self.fabric = fabric
        self.trace = trace
        self._index = 0
        self.packets_generated = 0

    @property
    def exhausted(self) -> bool:
        """True once every record has been replayed."""
        return self._index >= len(self.trace.records)

    def next_offer_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` with a pending record.

        Between records (and after the last one) :meth:`step` returns
        without side effects, so the skip backend may jump those spans
        byte-identically.
        """
        records = self.trace.records
        if self._index >= len(records):
            return NEVER
        return max(cycle, records[self._index].cycle)

    def step(self, cycle: int) -> None:
        """Offer every packet recorded for ``cycle``."""
        records = self.trace.records
        index = self._index
        while index < len(records) and records[index].cycle <= cycle:
            record = records[index]
            self.fabric.offer(
                Packet(
                    src=record.src,
                    dst=record.dst,
                    size_bits=record.size_bits,
                    message_class=record.message_class,
                    tenant=record.tenant,
                )
            )
            self.packets_generated += 1
            index += 1
        self._index = index
