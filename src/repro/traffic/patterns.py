"""Synthetic traffic patterns (paper §4.1, §6.3).

Patterns map a source node to a destination node on the router grid.
The paper evaluates uniform random, transpose, and bit complement;
transpose and bit complement are the adversarial, non-uniform patterns
that stress congestion detection (Figure 11).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.noc.topology import ConcentratedMesh
from repro.util.rng import DeterministicRng

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "TransposePattern",
    "BitComplementPattern",
    "HotspotPattern",
    "make_pattern",
    "PATTERN_NAMES",
]

PATTERN_NAMES = ("uniform", "transpose", "bit_complement", "hotspot")


class TrafficPattern(ABC):
    """Maps source nodes to destination nodes."""

    def __init__(self, mesh: ConcentratedMesh) -> None:
        self.mesh = mesh

    @abstractmethod
    def destination(self, src: int, rng: DeterministicRng) -> int | None:
        """Destination for a packet from ``src``.

        Returns ``None`` when the pattern maps the node to itself (such
        packets are never injected).
        """


class UniformRandomPattern(TrafficPattern):
    """Each packet targets a uniformly random other node."""

    def destination(self, src: int, rng: DeterministicRng) -> int | None:
        num_nodes = self.mesh.num_nodes
        dst = rng.randrange(num_nodes - 1)
        if dst >= src:
            dst += 1
        return dst


class TransposePattern(TrafficPattern):
    """Node (x, y) sends to node (y, x); diagonal nodes stay silent.

    Requires a square mesh.  Transpose concentrates traffic along a few
    paths, which is why it saturates much earlier than uniform random.
    """

    def __init__(self, mesh: ConcentratedMesh) -> None:
        super().__init__(mesh)
        if mesh.cols != mesh.rows:
            raise ValueError("transpose requires a square mesh")

    def destination(self, src: int, rng: DeterministicRng) -> int | None:
        x, y = self.mesh.coordinates(src)
        if x == y:
            return None
        return self.mesh.node_at(y, x)


class BitComplementPattern(TrafficPattern):
    """Node i sends to node (N-1-i): every packet crosses the centre."""

    def destination(self, src: int, rng: DeterministicRng) -> int | None:
        dst = self.mesh.num_nodes - 1 - src
        return None if dst == src else dst


class HotspotPattern(TrafficPattern):
    """A fraction of traffic targets a few hotspot nodes (extension).

    Not evaluated in the paper, but the classic stress case for
    congestion detection: with probability ``hotspot_fraction`` a packet
    goes to one of the ``num_hotspots`` centre nodes; otherwise the
    destination is uniform random.
    """

    def __init__(
        self,
        mesh: ConcentratedMesh,
        hotspot_fraction: float = 0.2,
        num_hotspots: int = 4,
    ) -> None:
        super().__init__(mesh)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be a probability")
        if num_hotspots < 1:
            raise ValueError("num_hotspots must be >= 1")
        self.hotspot_fraction = hotspot_fraction
        centre_x = mesh.cols // 2
        centre_y = mesh.rows // 2
        candidates = []
        for dy in (0, -1, 1, -2, 2):
            for dx in (0, -1, 1, -2, 2):
                x, y = centre_x + dx, centre_y + dy
                if 0 <= x < mesh.cols and 0 <= y < mesh.rows:
                    node = mesh.node_at(x, y)
                    if node not in candidates:
                        candidates.append(node)
        self.hotspots = candidates[:num_hotspots]
        self._uniform = UniformRandomPattern(mesh)

    def destination(self, src: int, rng: DeterministicRng) -> int | None:
        if rng.random() < self.hotspot_fraction:
            dst = self.hotspots[rng.randrange(len(self.hotspots))]
            return None if dst == src else dst
        return self._uniform.destination(src, rng)


def make_pattern(name: str, mesh: ConcentratedMesh) -> TrafficPattern:
    """Build a traffic pattern by name."""
    if name == "uniform":
        return UniformRandomPattern(mesh)
    if name == "transpose":
        return TransposePattern(mesh)
    if name == "bit_complement":
        return BitComplementPattern(mesh)
    if name == "hotspot":
        return HotspotPattern(mesh)
    raise ValueError(f"unknown traffic pattern {name!r}")
