"""Attribution layer: per-packet latency phases, per-subnet energy.

``repro.explain`` decomposes *where* every cycle of packet latency and
every joule of network energy went, under the same per-instance
shadowing contract as :mod:`repro.telemetry` — an unattached fabric
runs the plain class bytecode.  Enable with ``REPRO_EXPLAIN=1`` (or
``--explain`` on the experiments CLI); see ``docs/explain.md``.
"""

from repro.explain.hub import (
    ExplainHub,
    explain_enabled,
    maybe_attach,
    parse_explain_spec,
)

__all__ = [
    "ExplainHub",
    "explain_enabled",
    "maybe_attach",
    "parse_explain_spec",
]
