"""``python -m repro.explain`` — inspect attribution artifacts.

Subcommands::

    show                 per-artifact attribution summary
    blame [--top-k N]    worst wakeup-stalled packets across artifacts
    tax                  per-subnet wakeup-tax and energy-per-flit

All verbs read the ``*.explain.json`` artifacts under ``--dir``
(default ``$REPRO_EXPLAIN_DIR`` or ``results/explain``) that an
``--explain`` run flushed.  Exit codes: 0 on success, 1 when no
artifact could be read, 2 for argparse errors.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.explain.hub import DEFAULT_DIR, PHASE_NAMES
from repro.obs.artifacts import EXPLAIN_SUFFIXES, read_json_artifact
from repro.util import env
from repro.util.tables import format_table

__all__ = ["main"]


def _load_documents(directory: str) -> list[tuple[str, dict]]:
    """Every readable (path, document) under ``directory``, sorted."""
    documents: list[tuple[str, dict]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return documents
    for name in names:
        if not name.endswith(EXPLAIN_SUFFIXES):
            continue
        path = os.path.join(directory, name)
        doc = read_json_artifact(path)
        if doc is not None and doc.get("schema") == "repro.explain/1":
            documents.append((path, doc))
    return documents


def _show(documents: list[tuple[str, dict]]) -> str:
    rows = []
    for path, doc in documents:
        latency = doc.get("latency")
        row: dict[str, object] = {
            "config": doc.get("config", "?"),
            "seed": doc.get("seed", "?"),
            "cycles": doc.get("cycles", 0),
        }
        if latency:
            packets = latency.get("packets", 0)
            totals = latency.get("phase_totals", {})
            total_cycles = latency.get("latency_cycles", 0)
            row["packets"] = packets
            row["unfinished"] = latency.get("unfinished", 0)
            row["mismatches"] = latency.get("phase_mismatches", 0)
            row["wakeup_frac"] = (
                totals.get("wakeup_stall", 0) / total_cycles
                if total_cycles
                else 0.0
            )
        row["artifact"] = os.path.basename(path)
        rows.append(row)
    return format_table(rows, title="attribution artifacts:")


def _blame(documents: list[tuple[str, dict]], top_k: int) -> str:
    stall_index = PHASE_NAMES.index("wakeup_stall")
    candidates = []
    for _path, doc in documents:
        latency = doc.get("latency")
        if not latency:
            continue
        config = doc.get("config", "?")
        for record in latency.get("records", ()):
            phases = record[6:]
            candidates.append(
                {
                    "config": config,
                    "packet": record[0],
                    "src": record[1],
                    "dst": record[2],
                    "subnet": record[3],
                    "latency": record[5] - record[4],
                    "wakeup_stall": phases[stall_index],
                    "ni_queue": phases[0],
                    "selection_stall": phases[1],
                }
            )
    candidates.sort(
        key=lambda row: (-row["wakeup_stall"], -row["latency"],
                         row["config"], row["packet"]),
    )
    return format_table(
        candidates[:top_k],
        title=f"top {top_k} wakeup-stalled packets:",
    )


def _tax(documents: list[tuple[str, dict]]) -> str:
    rows = []
    for _path, doc in documents:
        tax = doc.get("tax", {})
        for entry in tax.get("per_subnet", ()):
            row: dict[str, object] = {
                "config": doc.get("config", "?"),
                "seed": doc.get("seed", "?"),
            }
            row.update(entry)
            energy = row.pop("energy_j", None)
            if energy is not None:
                row["energy_uj"] = round(energy * 1e6, 3)
            per_flit = row.pop("energy_per_flit_j", None)
            if per_flit is not None:
                row["energy_per_flit_pj"] = round(per_flit * 1e12, 6)
            rows.append(row)
    return format_table(
        rows, title="per-subnet wakeup tax / energy per flit:"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explain",
        description=(
            "Inspect attribution artifacts (see docs/explain.md)."
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dir",
        default=None,
        help=(
            "artifact directory (default: $REPRO_EXPLAIN_DIR or "
            "results/explain)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "show",
        parents=[common],
        help="per-artifact attribution summary",
    )
    blame = sub.add_parser(
        "blame",
        parents=[common],
        help="worst wakeup-stalled packets",
    )
    blame.add_argument(
        "--top-k",
        type=int,
        default=10,
        help="number of packets to show (default 10)",
    )
    sub.add_parser(
        "tax",
        parents=[common],
        help="per-subnet wakeup tax and energy per flit",
    )

    args = parser.parse_args(argv)
    directory = (
        args.dir
        if args.dir is not None
        else env.text("REPRO_EXPLAIN_DIR", DEFAULT_DIR)
    )
    documents = _load_documents(directory)
    if not documents:
        print(
            f"explain: no attribution artifacts under {directory}",
            file=sys.stderr,
        )
        return 1
    if args.command == "show":
        print(_show(documents))
    elif args.command == "blame":
        print(_blame(documents, max(1, args.top_k)))
    else:
        print(_tax(documents))
    return 0
