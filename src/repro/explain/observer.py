"""Sweep-runner integration: report attribution artifacts per point.

Explain hubs attach inside sweep worker processes (the fabric
constructor reads ``REPRO_EXPLAIN``), so the parent CLI process never
sees the hub objects — only the ``*.explain.json`` files they flush.
:class:`ExplainObserver` plugs into the sweep observer chain and
reports every artifact that appears in the explain directory while a
sweep runs, mirroring :class:`repro.telemetry.observer.
TelemetryObserver`.

Directory scanning lives in
:class:`repro.obs.artifacts.ArtifactScanner`, shared with the
telemetry/perf observers and the run ledger so everyone agrees on
what counts as an attribution artifact.
"""

from __future__ import annotations

from repro.experiments.runner import SweepObserver, SweepStats
from repro.explain.hub import DEFAULT_DIR
from repro.obs.artifacts import EXPLAIN_SUFFIXES, ArtifactScanner
from repro.util import env

__all__ = ["ExplainObserver"]


class ExplainObserver(SweepObserver):
    """Announces new attribution artifacts as sweep points complete."""

    def __init__(
        self, directory: str | None = None, stream=None
    ) -> None:
        import sys

        self.directory = directory or env.text(
            "REPRO_EXPLAIN_DIR", DEFAULT_DIR
        )
        self.stream = stream if stream is not None else sys.stderr
        self._scanner = ArtifactScanner(
            self.directory, EXPLAIN_SUFFIXES
        )
        #: Every artifact path reported so far, in report order.
        self.reported: list[str] = []

    def _report_fresh(self) -> None:
        for path in self._scanner.fresh():
            self.reported.append(path)
            print(f"  explain: {path}", file=self.stream)

    # -- SweepObserver hooks ------------------------------------------
    def sweep_started(self, total: int) -> None:
        # Pre-existing artifacts belong to earlier runs; only report
        # what this sweep produces.
        self._scanner.prime()

    def point_finished(self, index, spec, rows, elapsed, cached) -> None:
        self._report_fresh()

    def sweep_finished(self, stats: SweepStats) -> None:
        # Parallel workers may flush after their point_finished record
        # was consumed; catch any stragglers.
        self._report_fresh()
