"""Entry point for ``python -m repro.explain``."""

from repro.explain.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
