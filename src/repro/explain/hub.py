"""The attribution hub: exact latency and energy decomposition.

``ExplainHub`` observes one :class:`~repro.noc.multinoc.MultiNocFabric`
under the per-instance shadowing contract (the same as
:class:`repro.telemetry.hub.TelemetryHub`): every probe is an instance
attribute, so a fabric without a hub executes the original unhooked
class methods.  Attach order is perf → faults → checker → telemetry →
explain: the hub attaches last, so attribution sees post-fault,
checked, telemetry-visible behaviour.

**Latency attribution.**  Every delivered packet's end-to-end latency
``received_cycle - created_cycle`` is split into eight named phases
that sum to it *exactly* (no sampling, no estimation):

* ``ni_queue`` — cycles queued behind other packets at the source NI;
* ``selection_stall`` — cycles at the queue head with no free VC slot
  on the policy-selected subnet;
* ``wakeup_stall`` — cycles the assigned head flit waited because the
  target subnet's local router was asleep or waking (the wakeup tax);
* ``ni_stream_wait`` — remaining pre-injection cycles (credit waits,
  NI link round-robin);
* ``inject_pipe`` — the injection pipeline latency;
* ``router_residency`` — cycles the head flit sat buffered in routers;
* ``link`` — head-flit link/hop traversal cycles;
* ``serialization`` — head ejection to tail ejection (body streaming
  plus tail transit).

The probe placement makes the identity structural: ``_assign_head``
brackets ``[created, assigned)``, the post-``ni.step`` slot scan
classifies ``[assigned, injected)``, and the telescoping
``inject``/``send``/``eject`` arrival tracker covers
``[injected, head_eject]``; the remainder is serialization.  The hub
still counts ``phase_mismatches`` so tests can assert it stayed zero.

**Energy attribution.**  Every ``window_cycles`` cycles the hub
snapshots the per-subnet :class:`~repro.noc.network.ActivityCounters`
and :class:`~repro.core.gating.GatingStats` and stores the *integer
deltas*.  Joules per window (dynamic / static / sleep-transition) are
derived presentationally; reconciliation works on the integers —
:meth:`reconstructed_report` rebuilds a
:class:`~repro.noc.multinoc.FabricReport` from the baseline plus the
summed deltas, and :func:`repro.power.network_power.
compute_network_power` over it is *bitwise identical* to the same
model over the fabric's own report (integer sums are exact; the float
formulas are applied once on both sides).

Created-but-undelivered packets at run end (sentinel ``-1``
timestamps) are excluded from every distribution and reported as
``unfinished``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Any, Callable

from repro.core.regional import OR_NETWORK_SWITCH_ENERGY_J
from repro.noc.network import ActivityCounters
from repro.noc.router import PowerState, Router
from repro.power.router_power import RouterPowerModel
from repro.util import env
from repro.util.histogram import BoundedHistogram

if TYPE_CHECKING:
    from repro.noc.flit import Flit, Packet
    from repro.noc.interface import NetworkInterface
    from repro.noc.multinoc import FabricReport, MultiNocFabric

__all__ = [
    "ExplainHub",
    "PHASE_NAMES",
    "explain_enabled",
    "maybe_attach",
    "parse_explain_spec",
]

#: Defaults for the environment knobs.
DEFAULT_DIR = os.path.join("results", "explain")
DEFAULT_MAX_PACKETS = 20_000
#: Energy sampling window (cycles); a constructor knob, not an env var.
DEFAULT_WINDOW = 1024

#: The latency phases, in packet-lifetime order.  Their values sum to
#: ``received_cycle - created_cycle`` for every delivered packet.
PHASE_NAMES = (
    "ni_queue",
    "selection_stall",
    "wakeup_stall",
    "ni_stream_wait",
    "inject_pipe",
    "router_residency",
    "link",
    "serialization",
)

#: Integer counter fields tracked per subnet per energy window.
_ACTIVITY_FIELDS = ActivityCounters.__slots__
_GATING_FIELDS = (
    "active_cycles",
    "sleep_cycles",
    "wakeup_cycles",
    "sleep_periods",
    "compensated_sleep_cycles",
    "short_sleep_periods",
)


def explain_enabled() -> bool:
    """True when ``REPRO_EXPLAIN`` asks for attribution."""
    return env.flag("REPRO_EXPLAIN")


def maybe_attach(fabric: "MultiNocFabric") -> "ExplainHub | None":
    """Attach a hub to ``fabric`` when ``REPRO_EXPLAIN`` is set."""
    if not explain_enabled():
        return None
    return ExplainHub.from_env(fabric).attach()


def parse_explain_spec(spec: str) -> tuple[bool, bool]:
    """Validate an ``--explain`` / ``REPRO_EXPLAIN`` value.

    Returns ``(latency, energy)`` enable flags.  ``"1"`` (and the
    empty string) enable both; otherwise the value is a comma list of
    ``latency`` / ``energy``.  Anything else raises ``ValueError`` —
    the experiments CLI turns that into a parse error (exit 2).
    """
    value = spec.strip()
    if value in ("", "1"):
        return True, True
    latency = energy = False
    for part in value.split(","):
        name = part.strip()
        if name == "latency":
            latency = True
        elif name == "energy":
            energy = True
        else:
            raise ValueError(
                f"unknown attribution component {name!r}; expected "
                "'latency', 'energy', or '1'"
            )
    return latency, energy


class _PacketTrace:
    """Per-packet phase accumulators while the packet is in flight."""

    __slots__ = (
        "assigned",
        "selection_stall",
        "wakeup_stall",
        "arrival",
        "inject_pipe",
        "residency",
        "link",
        "head_eject",
    )

    def __init__(self) -> None:
        self.assigned = -1
        self.selection_stall = 0
        self.wakeup_stall = 0
        self.arrival = -1
        self.inject_pipe = 0
        self.residency = 0
        self.link = 0
        self.head_eject = -1


class ExplainHub:
    """Latency and energy attribution for one fabric instance."""

    def __init__(
        self,
        fabric: "MultiNocFabric",
        out_dir: str | None = None,
        max_packets: int = DEFAULT_MAX_PACKETS,
        window_cycles: int = DEFAULT_WINDOW,
        latency: bool = True,
        energy: bool = True,
    ) -> None:
        if window_cycles < 1:
            raise ValueError("window_cycles must be >= 1")
        self.fabric = fabric
        self.out_dir = out_dir
        self.max_packets = max_packets
        self.window_cycles = window_cycles
        self.latency = latency
        self.energy = energy
        self.attached = False
        num_subnets = fabric.config.num_subnets
        # (object, attribute, had_instance_attr, saved_value) records
        # for detach; restored in reverse attach order.
        self._saved: list[tuple[object, str, bool, object]] = []
        # --- latency ----------------------------------------------------
        self._packets: dict[int, _PacketTrace] = {}
        # Global packet ids depend on how many packets the process has
        # ever made; records carry hub-relative ids (first-touch order,
        # deterministic for a seeded run) so the attribution digest is
        # byte-identical across worker counts and backends.
        self._id_map: dict[int, int] = {}
        self._next_relative_id = 0
        self.packets_seen = 0
        self.truncated_packets = 0
        self.phase_mismatches = 0
        self.latency_cycles = 0
        self.phase_totals = [0] * len(PHASE_NAMES)
        #: Capped per-packet detail: [id, src, dst, subnet, created,
        #: received, <one value per PHASE_NAMES entry>].
        self.records: list[list[int]] = []
        self.wakeup_stall_histogram = BoundedHistogram()
        self.packets_by_subnet = [0] * num_subnets
        self.wakeup_stall_by_subnet = [0] * num_subnets
        self.stalled_packets_by_subnet = [0] * num_subnets
        # --- energy -----------------------------------------------------
        #: Closed windows of integer counter deltas (see module doc).
        self.energy_windows: list[dict] = []
        self._baseline: tuple[list[dict[str, int]], int] | None = None
        self._last_counters: tuple[list[dict[str, int]], int] | None = None
        self._window_start = 0
        self._orig_step: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Construction from the environment
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, fabric: "MultiNocFabric") -> "ExplainHub":
        """Build a hub configured by ``REPRO_EXPLAIN*`` variables."""
        latency, energy = parse_explain_spec(
            env.text("REPRO_EXPLAIN", "")
        )
        out_dir = env.text("REPRO_EXPLAIN_DIR", DEFAULT_DIR)
        return cls(
            fabric, out_dir=out_dir, latency=latency, energy=energy
        )

    # ------------------------------------------------------------------
    # Attach / detach (per-instance shadowing)
    # ------------------------------------------------------------------
    def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
        had = name in obj.__dict__
        self._saved.append((obj, name, had, obj.__dict__.get(name)))
        setattr(obj, name, replacement)

    def attach(self) -> "ExplainHub":
        """Install every probe on the fabric; returns ``self``.

        ``fabric.step`` is always shadowed (even latency-only): the
        skip kernel defers to dense per-cycle semantics whenever a
        non-checker shadow owns ``step``, which is exactly what makes
        attribution byte-identical across backends.
        """
        if self.attached:
            return self
        fabric = self.fabric
        self._orig_step = fabric.step
        self._orig_report = fabric.report
        self._shadow(fabric, "step", self._explain_step)
        self._shadow(fabric, "report", self._explain_report)
        if self.latency:
            for ni in fabric.nis:
                self._shadow(
                    ni,
                    "_assign_head",
                    self._make_assign_probe(ni, ni._assign_head),
                )
                self._shadow(
                    ni, "step", self._make_stall_probe(ni, ni.step)
                )
            for network in fabric.subnets:
                self._shadow(
                    network,
                    "inject",
                    self._make_inject_probe(network.inject),
                )
                self._shadow(
                    network, "send", self._make_send_probe(network.send)
                )
                self._shadow(
                    network,
                    "eject",
                    self._make_eject_probe(network.eject),
                )
        telemetry = getattr(fabric, "telemetry", None)
        if telemetry is not None:
            # Telemetry attaches before explain, so its hub exists by
            # now; merge the phase spans into its Perfetto trace.
            self._shadow(
                telemetry,
                "chrome_trace_doc",
                self._make_trace_merge(telemetry.chrome_trace_doc),
            )
        self._baseline = self._counters_now()
        self._last_counters = self._baseline
        self._window_start = fabric.cycle
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every probe, restoring the pre-attach attributes."""
        if not self.attached:
            return
        for obj, name, had, value in reversed(self._saved):
            if had:
                setattr(obj, name, value)
            else:
                delattr(obj, name)
        self._saved.clear()
        self.attached = False

    # ------------------------------------------------------------------
    # Shadowed fabric methods
    # ------------------------------------------------------------------
    def _explain_step(self) -> None:
        orig_step = self._orig_step
        if orig_step is None:  # pragma: no cover - attach() sets it
            raise RuntimeError("explain hub is not attached")
        orig_step()
        if (
            self.energy
            and self.fabric.cycle - self._window_start
            >= self.window_cycles
        ):
            self._close_window(self.fabric.cycle)

    def _explain_report(self) -> "FabricReport":
        report = self._orig_report()
        if self.out_dir is not None:
            self.flush()
        return report

    # ------------------------------------------------------------------
    # Latency probes
    # ------------------------------------------------------------------
    def _trace_for(self, packet: "Packet") -> _PacketTrace:
        trace = self._packets.get(packet.packet_id)
        if trace is None:
            trace = _PacketTrace()
            self._packets[packet.packet_id] = trace
            self._id_map[packet.packet_id] = self._next_relative_id
            self._next_relative_id += 1
        return trace

    def _make_assign_probe(
        self,
        ni: "NetworkInterface",
        orig: Callable[[int], int],
    ) -> Callable[[int], int]:
        # Brackets [created, assigned): a failed attempt with this
        # packet at the head is a selection stall; everything else in
        # that interval is queueing behind other packets.
        def assign(cycle: int) -> int:
            queue = ni.queue
            head = queue[0] if queue else None
            subnet = orig(cycle)
            if head is not None:
                trace = self._trace_for(head)
                if subnet >= 0:
                    trace.assigned = cycle
                else:
                    trace.selection_stall += 1
            return subnet

        return assign

    def _make_stall_probe(
        self,
        ni: "NetworkInterface",
        orig: Callable[[int], None],
    ) -> Callable[[int], None]:
        # Classifies [assigned, injected): after ni.step, every slot
        # whose head flit has not left (index == 0) stalled this cycle;
        # gating.step has not run yet inside fabric.step, so the local
        # router's power state is exactly what streaming saw.
        subnets = self.fabric.subnets

        def step(cycle: int) -> None:
            orig(cycle)
            if not ni._active_slots:
                return
            active = ni._subnet_active
            node = ni.node
            for subnet in range(len(active)):
                if not active[subnet]:
                    continue
                gated = (
                    subnets[subnet].routers[node].power_state
                    != PowerState.ACTIVE
                )
                if not gated:
                    continue
                for slot in ni._slots[subnet]:
                    if slot is not None and slot.index == 0:
                        self._trace_for(slot.packet).wakeup_stall += 1

        return step

    def _make_inject_probe(
        self,
        orig: Callable[["Flit", int, int, int], None],
    ) -> Callable[["Flit", int, int, int], None]:
        pipeline = self.fabric.config.timing.pipeline_cycles

        def inject(flit: "Flit", node: int, vc: int, cycle: int) -> None:
            orig(flit, node, vc, cycle)
            if flit.is_head:
                trace = self._packets.get(flit.packet.packet_id)
                if trace is not None:
                    trace.inject_pipe = pipeline
                    trace.arrival = cycle + pipeline

        return inject

    def _make_send_probe(
        self,
        orig: Callable[["Flit", Router, int, int, int], None],
    ) -> Callable[["Flit", Router, int, int, int], None]:
        hop = self.fabric.config.timing.hop_cycles

        def send(
            flit: "Flit",
            downstream: Router,
            in_port: int,
            vc: int,
            cycle: int,
        ) -> None:
            orig(flit, downstream, in_port, vc, cycle)
            if flit.is_head:
                trace = self._packets.get(flit.packet.packet_id)
                if trace is not None and trace.arrival >= 0:
                    trace.residency += cycle - trace.arrival
                    trace.arrival = cycle + hop
                    trace.link += hop

        return send

    def _make_eject_probe(
        self,
        orig: Callable[["Flit", int, int], None],
    ) -> Callable[["Flit", int, int], None]:
        def eject(flit: "Flit", node: int, cycle: int) -> None:
            # orig completes the ejection chain: on a tail flit the NI
            # sets received_cycle before control returns here.
            orig(flit, node, cycle)
            packet = flit.packet
            if flit.is_head:
                trace = self._packets.get(packet.packet_id)
                if trace is not None and trace.arrival >= 0:
                    trace.residency += cycle - trace.arrival
                    trace.head_eject = cycle
                    trace.arrival = -1
            if flit.is_tail:
                self._complete(packet)

        return eject

    def _complete(self, packet: "Packet") -> None:
        trace = self._packets.pop(packet.packet_id, None)
        if trace is None:
            return
        relative_id = self._id_map.pop(packet.packet_id, -1)
        created = packet.created_cycle
        received = packet.received_cycle
        if (
            received < 0
            or packet.injected_cycle < 0
            or trace.assigned < 0
            or trace.head_eject < 0
        ):
            # Sentinel timestamps: never folded into distributions.
            return
        injected = packet.injected_cycle
        phases = (
            (trace.assigned - created) - trace.selection_stall,
            trace.selection_stall,
            trace.wakeup_stall,
            (injected - trace.assigned) - trace.wakeup_stall,
            trace.inject_pipe,
            trace.residency,
            trace.link,
            received - trace.head_eject,
        )
        latency = received - created
        if sum(phases) != latency:
            self.phase_mismatches += 1
        self.packets_seen += 1
        self.latency_cycles += latency
        for index, value in enumerate(phases):
            self.phase_totals[index] += value
        subnet = packet.subnet
        if 0 <= subnet < len(self.packets_by_subnet):
            self.packets_by_subnet[subnet] += 1
            self.wakeup_stall_by_subnet[subnet] += trace.wakeup_stall
            if trace.wakeup_stall:
                self.stalled_packets_by_subnet[subnet] += 1
        self.wakeup_stall_histogram.record(trace.wakeup_stall)
        if len(self.records) >= self.max_packets:
            self.truncated_packets += 1
            return
        self.records.append(
            [
                relative_id,
                packet.src,
                packet.dst,
                subnet,
                created,
                received,
                *phases,
            ]
        )

    # ------------------------------------------------------------------
    # Energy windows
    # ------------------------------------------------------------------
    def _counters_now(self) -> tuple[list[dict[str, int]], int]:
        fabric = self.fabric
        subnets: list[dict[str, int]] = []
        for index in range(fabric.config.num_subnets):
            counters = fabric.subnets[index].counters
            stats = fabric.gating.stats[index]
            record = {
                name: getattr(counters, name)
                for name in _ACTIVITY_FIELDS
            }
            for name in _GATING_FIELDS:
                record[name] = getattr(stats, name)
            subnets.append(record)
        return subnets, fabric.monitor.regional.transitions

    def _close_window(self, end_cycle: int) -> None:
        current, rcs = self._counters_now()
        assert self._last_counters is not None
        previous, previous_rcs = self._last_counters
        self.energy_windows.append(
            {
                "start": self._window_start,
                "end": end_cycle,
                "rcs_transitions": rcs - previous_rcs,
                "subnets": [
                    {
                        name: now[name] - old[name]
                        for name in now
                    }
                    for now, old in zip(current, previous)
                ],
            }
        )
        self._last_counters = (current, rcs)
        self._window_start = end_cycle

    def _sync_windows(self) -> None:
        """Bring the window ledger up to date with the fabric.

        ``fabric.report()`` finalizes gating (closing still-open sleep
        periods); finalize is idempotent, so doing it here first makes
        every report-time document identical whichever of
        ``fabric.report()``, :meth:`energy_doc`, or
        :meth:`reconstructed_report` runs first.  The residual window
        may be zero-length when finalize moved counters after the last
        full window closed.
        """
        if not self.attached:
            return
        fabric = self.fabric
        fabric.gating.finalize(fabric.cycle)
        if (
            fabric.cycle > self._window_start
            or self._counters_now() != self._last_counters
        ):
            self._close_window(fabric.cycle)

    def _totals(self) -> tuple[list[dict[str, int]], int]:
        """Counter deltas accumulated since attach (baseline-relative)."""
        current, rcs = self._counters_now()
        assert self._baseline is not None
        base, base_rcs = self._baseline
        return (
            [
                {name: now[name] - old[name] for name in now}
                for now, old in zip(current, base)
            ],
            rcs - base_rcs,
        )

    def reconstructed_report(self) -> "FabricReport":
        """Rebuild a :class:`FabricReport` from baseline + window sums.

        Closes the pending partial window first, then integrates the
        per-window integer deltas on top of the attach-time baseline.
        Running :func:`~repro.power.network_power.compute_network_power`
        over the result is bitwise identical to running it over the
        fabric's own report — the reconciliation contract.
        """
        from repro.core.gating import GatingStats
        from repro.noc.multinoc import FabricReport

        fabric = self.fabric
        self._sync_windows()
        assert self._baseline is not None
        base, rcs = self._baseline
        totals = [dict(record) for record in base]
        for window in self.energy_windows:
            rcs += window["rcs_transitions"]
            for record, delta in zip(totals, window["subnets"]):
                for name, value in delta.items():
                    record[name] += value
        return FabricReport(
            config=fabric.config,
            cycles=fabric.cycle,
            activity=[
                {name: record[name] for name in _ACTIVITY_FIELDS}
                for record in totals
            ],
            gating=[
                GatingStats(
                    active_cycles=record["active_cycles"],
                    sleep_cycles=record["sleep_cycles"],
                    wakeup_cycles=record["wakeup_cycles"],
                    sleep_periods=record["sleep_periods"],
                    compensated_sleep_cycles=record[
                        "compensated_sleep_cycles"
                    ],
                    short_sleep_periods=record["short_sleep_periods"],
                )
                for record in totals
            ],
            gating_policy=fabric.gating.policy,
            rcs_transitions=rcs,
            avg_packet_latency=0.0,
            avg_network_latency=0.0,
            throughput_packets=0.0,
            throughput_flits=0.0,
            offered_rate=0.0,
            packets_received=0,
            subnet_injection_share=[],
        )

    def _power_model(self) -> RouterPowerModel:
        config = self.fabric.config
        return RouterPowerModel(
            config.link_width_bits, config.voltage_v, config.num_subnets
        )

    def _window_joules(
        self, record: dict[str, int], model: RouterPowerModel
    ) -> tuple[float, float, float]:
        """(dynamic, static, sleep-transition) joules of one window.

        The same event energies as ``compute_network_power``, applied
        to a window's integer deltas; sleep-transition energy is the
        ``breakeven * sleep_periods`` leakage-equivalent charge the
        model adds per entered sleep period.
        """
        config = self.fabric.config
        dynamic = (
            (record["buffer_writes"] + record["buffer_reads"])
            / 2.0
            * model.buffer_energy_per_flit
            + record["crossbar_traversals"]
            * (
                model.crossbar_energy_per_flit
                + model.control_energy_per_flit
            )
            + record["link_traversals"] * model.link_energy_per_flit
            + (record["flits_injected"] + record["flits_ejected"])
            * model.ni_energy_per_flit
            + (record["active_cycles"] + record["wakeup_cycles"])
            * model.clock_energy_per_cycle
        )
        leak_per_cycle = model.leakage_watts / (
            config.frequency_ghz * 1e9
        )
        total_router_cycles = (
            record["active_cycles"]
            + record["sleep_cycles"]
            + record["wakeup_cycles"]
        )
        static = (
            total_router_cycles - record["sleep_cycles"]
        ) * leak_per_cycle
        sleep_transition = (
            config.gating.breakeven_cycles
            * record["sleep_periods"]
            * leak_per_cycle
        )
        return dynamic, static, sleep_transition

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def latency_doc(self) -> dict:
        """JSON-safe latency-attribution section."""
        return {
            "phases": list(PHASE_NAMES),
            "packets": self.packets_seen,
            "unfinished": len(self._packets),
            "truncated": self.truncated_packets,
            "phase_mismatches": self.phase_mismatches,
            "latency_cycles": self.latency_cycles,
            "phase_totals": dict(
                zip(PHASE_NAMES, self.phase_totals)
            ),
            "wakeup_stall": self.wakeup_stall_histogram.to_dict(),
            "records": [list(record) for record in self.records],
        }

    def energy_doc(self) -> dict:
        """JSON-safe energy-attribution section (integer deltas)."""
        self._sync_windows()
        model = self._power_model()
        windows = []
        for window in self.energy_windows:
            subnets = []
            for record in window["subnets"]:
                dynamic, static, transition = self._window_joules(
                    record, model
                )
                subnets.append(
                    {
                        **record,
                        "dynamic_j": dynamic,
                        "static_j": static,
                        "sleep_transition_j": transition,
                    }
                )
            windows.append(
                {
                    "start": window["start"],
                    "end": window["end"],
                    "rcs_transitions": window["rcs_transitions"],
                    "subnets": subnets,
                }
            )
        assert self._baseline is not None
        base, base_rcs = self._baseline
        totals, rcs = self._totals()
        return {
            "window_cycles": self.window_cycles,
            "baseline": {
                "subnets": [dict(record) for record in base],
                "rcs_transitions": base_rcs,
            },
            "windows": windows,
            "totals": {
                "subnets": [dict(record) for record in totals],
                "rcs_transitions": rcs,
                "rcs_j": rcs * OR_NETWORK_SWITCH_ENERGY_J,
            },
        }

    def tax_doc(self) -> dict:
        """Per-subnet wakeup-tax and energy-per-flit table.

        ``energy_per_flit_j`` divides each subnet's attributed energy
        (dynamic + static + sleep transition; the fabric-level RCS OR
        network is excluded as it belongs to no subnet) by the flits it
        carried since attach.
        """
        model = self._power_model() if self.energy else None
        totals = self._totals()[0] if self.energy else None
        rows = []
        for subnet in range(self.fabric.config.num_subnets):
            row: dict[str, object] = {"subnet": subnet}
            if self.latency:
                packets = self.packets_by_subnet[subnet]
                stall = self.wakeup_stall_by_subnet[subnet]
                row["packets"] = packets
                row["wakeup_stall_cycles"] = stall
                row["stalled_packets"] = (
                    self.stalled_packets_by_subnet[subnet]
                )
                row["mean_wakeup_stall"] = (
                    stall / packets if packets else 0.0
                )
            if totals is not None and model is not None:
                record = totals[subnet]
                dynamic, static, transition = self._window_joules(
                    record, model
                )
                energy = dynamic + static + transition
                flits = record["flits_injected"]
                row["flits_injected"] = flits
                row["energy_j"] = energy
                row["energy_per_flit_j"] = (
                    energy / flits if flits else None
                )
            rows.append(row)
        return {"per_subnet": rows}

    def _document_body(self) -> dict:
        fabric = self.fabric
        return {
            "schema": "repro.explain/1",
            "config": fabric.config.name,
            "seed": fabric.seed,
            "cycles": fabric.cycle,
            "latency": self.latency_doc() if self.latency else None,
            "energy": self.energy_doc() if self.energy else None,
            "tax": self.tax_doc(),
        }

    def attribution_digest(self) -> str:
        """SHA-256 over the canonical attribution document.

        Covers only simulation-determined content (no paths, pids, or
        wall-clock), so the digest is byte-identical across worker
        counts and backends for the same seeded point.
        """
        canonical = json.dumps(
            self._document_body(),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def document(self) -> dict:
        """The full attribution artifact document, digest included."""
        body = self._document_body()
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        )
        body["digest"] = hashlib.sha256(
            canonical.encode("utf-8")
        ).hexdigest()
        return body

    # ------------------------------------------------------------------
    # Perfetto merge
    # ------------------------------------------------------------------
    def phase_trace_events(self) -> list[dict]:
        """Per-packet phase slices in Chrome trace-event form."""
        events: list[dict] = []
        for record in self.records:
            pid = record[3] if record[3] >= 0 else 0
            cursor = record[4]
            for name, value in zip(PHASE_NAMES, record[6:]):
                if value > 0:
                    events.append(
                        {
                            "ph": "X",
                            "cat": "explain-phase",
                            "name": name,
                            "pid": pid,
                            "tid": record[1],
                            "ts": cursor,
                            "dur": value,
                            "args": {"packet": record[0]},
                        }
                    )
                cursor += value
        return events

    def _make_trace_merge(
        self, orig: Callable[[], dict]
    ) -> Callable[[], dict]:
        def merged() -> dict:
            doc = orig()
            doc["traceEvents"].extend(self.phase_trace_events())
            return doc

        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def flush(self) -> dict[str, str]:
        """Write the attribution artifact; return its path.

        Names follow the telemetry convention
        (``{config}-s{seed}-p{pid}-r{n}`` with the process-wide flush
        ref from :func:`repro.obs.artifacts.next_flush_ref`) so
        parallel sweep workers and repeated flushes never collide.
        """
        from repro.obs.artifacts import next_flush_ref

        out_dir = (
            self.out_dir if self.out_dir is not None else DEFAULT_DIR
        )
        os.makedirs(out_dir, exist_ok=True)
        fabric = self.fabric
        prefix = f"{fabric.config.name}-s{fabric.seed}-p{os.getpid()}"
        stem = f"{prefix}-r{next_flush_ref(prefix)}"
        path = os.path.join(out_dir, f"{stem}.explain.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.document(), handle, separators=(",", ":"))
        return {"explain": path}
