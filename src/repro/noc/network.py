"""A single subnetwork: a mesh of routers plus its transfer delay line.

One of the N equal subnets of the paper's Multi-NoC (§2.2, Figure 1) —
a Single-NoC is the N=1 special case.  :class:`SubnetNetwork` owns the
routers of one subnet, moves flits between them with the configured
pipeline + link latency, returns credits, and accumulates the
:class:`ActivityCounters` the power model (§4.2) consumes.
"""

from __future__ import annotations

from typing import Callable

from repro.noc.config import NocConfig
from repro.noc.flit import Flit
from repro.noc.router import PowerState, Router
from repro.noc.routing import XYRouting
from repro.noc.topology import ConcentratedMesh, Port

__all__ = ["SubnetNetwork", "ActivityCounters"]


class ActivityCounters:
    """Per-subnet event counts consumed by the power model.

    All counts are in flit events; ``flit_cycles`` integrates buffered
    flits over time (for average-occupancy statistics).
    """

    __slots__ = (
        "buffer_writes",
        "buffer_reads",
        "crossbar_traversals",
        "link_traversals",
        "flits_injected",
        "flits_ejected",
        "packets_injected",
        "packets_ejected",
        "flit_cycles",
    )

    def __init__(self) -> None:
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.crossbar_traversals = 0
        self.link_traversals = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_injected = 0
        self.packets_ejected = 0
        self.flit_cycles = 0

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}


class SubnetNetwork:
    """One subnet's routers, links, and bookkeeping.

    Parameters
    ----------
    subnet:
        Index of this subnet within the Multi-NoC (0 = lowest order).
    config:
        Shared fabric configuration.
    mesh, routing:
        Topology and routing function shared by all subnets.
    """

    def __init__(
        self,
        subnet: int,
        config: NocConfig,
        mesh: ConcentratedMesh,
        routing: XYRouting,
    ) -> None:
        self.subnet = subnet
        self.config = config
        self.mesh = mesh
        self.routing = routing
        self.counters = ActivityCounters()
        self.routers = [
            Router(node, subnet, config.vcs_per_port, config.flits_per_vc)
            for node in range(mesh.num_nodes)
        ]
        for router in self.routers:
            router.network = self
            router._route_table = routing.table
            router._route_nodes = routing.num_nodes
        for node in range(mesh.num_nodes):
            for port, neighbor in mesh.neighbors(node).items():
                self.routers[node].connect(
                    port, self.routers[neighbor], neighbor
                )
        self._hop_cycles = config.timing.hop_cycles
        ring_len = self._hop_cycles + 1
        self._ring: list[list[tuple[Router, int, int, Flit]]] = [
            [] for _ in range(ring_len)
        ]
        self._ring_len = ring_len
        #: callable(flit, subnet, node, cycle) installed by the fabric.
        self.eject_sink: Callable[[Flit, int, int, int], None] | None = None
        #: callable(router, requester_node) installed by the gating
        #: controller; collects look-ahead wakeup requests.
        self.wakeup_sink: Callable[[Router, int], None] | None = None
        #: Flits currently inside this subnet (buffered + in flight).
        self.flits_in_network = 0

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def send(
        self, flit: Flit, downstream: Router, in_port: int, vc: int,
        cycle: int,
    ) -> None:
        """Put ``flit`` on the link toward ``downstream``.

        The flit lands in the downstream input buffer ``hop_cycles``
        cycles later (router pipeline + link traversal).
        """
        slot = (cycle + self._hop_cycles) % self._ring_len
        self._ring[slot].append((downstream, in_port, vc, flit))
        if flit.is_head:
            # Head-flit link traversals count the packet's hops (its
            # X-Y routing distance; validated against the topology).
            flit.packet.hops += 1
        counters = self.counters
        counters.buffer_reads += 1
        counters.crossbar_traversals += 1
        counters.link_traversals += 1

    def inject(
        self, flit: Flit, node: int, vc: int, cycle: int
    ) -> None:
        """Inject ``flit`` from the NI into the local router at ``node``.

        Injection uses the same pipeline latency as a hop minus the
        inter-router link (the NI sits next to its router).
        """
        router = self.routers[node]
        router.expected_arrivals += 1
        slot = (cycle + self.config.timing.pipeline_cycles) % self._ring_len
        self._ring[slot].append((router, Port.LOCAL, vc, flit))
        self.flits_in_network += 1
        counters = self.counters
        counters.flits_injected += 1
        if flit.is_head:
            counters.packets_injected += 1

    def eject(self, flit: Flit, node: int, cycle: int) -> None:
        """Hand an ejected flit to the fabric's network interface."""
        counters = self.counters
        counters.buffer_reads += 1
        counters.crossbar_traversals += 1
        counters.flits_ejected += 1
        if flit.is_tail:
            counters.packets_ejected += 1
        self.flits_in_network -= 1
        if self.eject_sink is None:
            raise RuntimeError("no ejection sink installed")
        self.eject_sink(flit, self.subnet, node, cycle)

    def request_wakeup(self, router: Router, requester_node: int) -> None:
        """Forward a look-ahead wakeup request to the gating controller."""
        if self.wakeup_sink is not None:
            self.wakeup_sink(router, requester_node)

    # ------------------------------------------------------------------
    # Per-cycle evaluation
    # ------------------------------------------------------------------
    def deliver_arrivals(self, cycle: int) -> None:
        """Land all flits whose link traversal completes this cycle."""
        slot = self._ring[cycle % self._ring_len]
        if not slot:
            return
        writes = len(slot)
        for router, in_port, vc, flit in slot:
            router.deliver(in_port, vc, flit)
        slot.clear()
        self.counters.buffer_writes += writes

    def step_routers(self, cycle: int) -> None:
        """Run switch allocation + traversal on every busy router."""
        for router in self.routers:
            if router.buffered_flits:
                router.step(cycle)
        self.counters.flit_cycles += self.flits_in_network

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def resync_credits(self) -> int:
        """Recompute every upstream credit counter from ground truth.

        Credit-resynchronization recovery (:mod:`repro.faults`): for a
        router-to-router link the correct credit count is the
        downstream VC capacity minus its buffer occupancy minus the
        flits in flight on the link.  Returns the total absolute
        correction applied (0 when every counter was already
        consistent — the steady state without faults).
        """
        in_flight: dict[tuple[int, int, int], int] = {}
        for router, in_port, vc, _flit in self.in_flight():
            key = (id(router), in_port, vc)
            in_flight[key] = in_flight.get(key, 0) + 1
        capacity = self.config.flits_per_vc
        vcs = self.config.vcs_per_port
        corrected = 0
        for router in self.routers:
            for out_port in range(Port.COUNT):
                if out_port == Port.LOCAL:
                    continue
                downstream = router.neighbor_router[out_port]
                if downstream is None:
                    continue
                in_port = Port.OPPOSITE[out_port]
                port = downstream.ports[in_port]
                credits = router.credits[out_port]
                for vc in range(vcs):
                    truth = (
                        capacity
                        - port.vcs[vc].occupancy
                        - in_flight.get((id(downstream), in_port, vc), 0)
                    )
                    if credits[vc] != truth:
                        corrected += abs(credits[vc] - truth)
                        credits[vc] = truth
        return corrected

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_flight(self):
        """Yield every link-in-flight flit as (router, in_port, vc, flit).

        ``router`` is the destination the flit will land at.  Used by
        the runtime invariant checker (:mod:`repro.analysis.invariants`)
        to recount credits and conservation laws from first principles;
        the delay-line internals stay private to this class.
        """
        for slot in self._ring:
            for router, in_port, vc, flit in slot:
                yield router, in_port, vc, flit

    @property
    def is_idle(self) -> bool:
        """True when no flit is buffered or in flight in this subnet."""
        return self.flits_in_network == 0

    def active_router_count(self) -> int:
        """Number of routers currently in the ACTIVE power state."""
        return sum(
            1
            for router in self.routers
            if router.power_state == PowerState.ACTIVE
        )
