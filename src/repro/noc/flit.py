"""Packets and flits (paper §2.3, §4.1).

A message is carried as one :class:`Packet`; the network interface
segments a packet into :class:`Flit` units no wider than the subnet
datapath, so flit count per packet scales with the number of subnets
(the serialization cost of Figure 6).  All flits of a packet travel on
the same subnet (paper §2.3), so a packet records its subnet at
injection.  :class:`MessageClass` carries the MESI message type used by
class-partitioned selection (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

__all__ = ["Packet", "Flit", "MessageClass"]

_packet_ids = count()


class MessageClass:
    """Symbolic message classes mapped onto virtual channels.

    The paper avoids protocol deadlock by assigning dependent message
    classes to different virtual channels within every subnet (§2.3).
    """

    REQUEST = 0
    FORWARD = 1
    RESPONSE = 2
    SYNTHETIC = 3

    ALL = (REQUEST, FORWARD, RESPONSE, SYNTHETIC)


@dataclass(slots=True)
class Packet:
    """One network message.

    Attributes
    ----------
    src, dst:
        Node ids (router positions) of the sender and receiver.
    size_bits:
        Payload + header size; the NI derives the flit count from the
        subnet width.
    message_class:
        Virtual-channel class (see :class:`MessageClass`).
    created_cycle:
        Cycle the packet was handed to the NI (for end-to-end latency).
    injected_cycle:
        Cycle the head flit left the injection queue into a subnet.
    received_cycle:
        Cycle the tail flit was ejected at the destination.
    subnet:
        Subnet chosen at injection (-1 before injection).
    hops:
        Router-to-router link traversals of the head flit — under X-Y
        routing this equals the Manhattan distance between ``src`` and
        ``dst`` nodes (0 for tile pairs sharing a node).
    tenant:
        Originating tenant for multi-tenant serving workloads
        (:mod:`repro.workloads`); -1 marks untagged traffic, which is
        excluded from per-tenant QoS statistics.
    """

    src: int
    dst: int
    size_bits: int
    message_class: int = MessageClass.SYNTHETIC
    created_cycle: int = 0
    injected_cycle: int = -1
    received_cycle: int = -1
    subnet: int = -1
    num_flits: int = 0
    hops: int = 0
    tenant: int = -1
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Opaque payload for closed-loop system simulation (e.g. the
    #: transaction this message belongs to).
    payload: object = None

    @property
    def latency(self) -> int:
        """End-to-end latency (creation to tail ejection)."""
        if self.received_cycle < 0:
            raise ValueError("packet has not been received yet")
        return self.received_cycle - self.created_cycle

    @property
    def network_latency(self) -> int:
        """Latency from injection into the subnet to tail ejection."""
        if self.received_cycle < 0 or self.injected_cycle < 0:
            raise ValueError("packet has not traversed the network yet")
        return self.received_cycle - self.injected_cycle


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet.

    ``route`` is the precomputed output port for the *current* router
    (look-ahead routing): it is set for the next hop while the flit is
    traversing the switch of the previous one.
    """

    packet: Packet
    is_head: bool
    is_tail: bool
    index: int
    #: Output port at the current router, precomputed one hop ahead.
    route: int = -1
    #: Virtual channel allocated at the current input port.
    vc: int = -1
