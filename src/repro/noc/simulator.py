"""Open-loop simulation driver with warmup / measure / cooldown phases.

:func:`run_open_loop` implements the synthetic-traffic methodology of
the paper's §6.3 evaluation (Figures 6, 10, 11, 13, 14): the network is
warmed to steady state, statistics are gathered over a fixed window,
and the source keeps running through a cooldown so packets created near
the end of the window can complete and contribute their latency.
:class:`SimulationPhases` fixes the three cycle counts and is part of
every synthetic sweep point's cache identity
(:class:`repro.experiments.runner.PointSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.multinoc import FabricReport, MultiNocFabric
from repro.util.validation import check_positive

__all__ = ["SimulationPhases", "run_open_loop"]


@dataclass(frozen=True)
class SimulationPhases:
    """Cycle counts of the three open-loop phases."""

    warmup: int = 1000
    measure: int = 4000
    cooldown: int = 1000

    def __post_init__(self) -> None:
        check_positive("warmup", self.warmup)
        check_positive("measure", self.measure)
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")

    @property
    def total(self) -> int:
        """Total simulated cycles."""
        return self.warmup + self.measure + self.cooldown

    def scaled(self, factor: float) -> "SimulationPhases":
        """Return phases scaled by ``factor`` (min 1 cycle each)."""
        return SimulationPhases(
            warmup=max(1, round(self.warmup * factor)),
            measure=max(1, round(self.measure * factor)),
            cooldown=max(0, round(self.cooldown * factor)),
        )


def run_open_loop(
    fabric: MultiNocFabric,
    source,
    phases: SimulationPhases = SimulationPhases(),
) -> FabricReport:
    """Run ``source`` over ``fabric`` and return the fabric report.

    ``source`` must expose ``step(cycle)`` which offers packets to the
    fabric for the given cycle.  Each phase is one span handed to the
    fabric's :class:`~repro.noc.backend.FabricBackend`, so measurement
    boundaries always fall on span boundaries — where every backend
    guarantees byte-identical fabric state.
    """
    backend = fabric.backend
    backend.run(phases.warmup, source)
    fabric.stats.begin_measurement(fabric.cycle)
    backend.run(phases.measure, source)
    fabric.stats.end_measurement(fabric.cycle)
    backend.run(phases.cooldown, source)
    return fabric.report()
