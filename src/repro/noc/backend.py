"""Simulation kernels behind the :class:`FabricBackend` interface.

A backend owns the *time loop* of a :class:`~repro.noc.multinoc.
MultiNocFabric`: given a span of cycles (and optionally a traffic
source), it advances the fabric to the end of the span.  Two backends
ship:

``dense``
    The reference kernel: call ``source.step`` and ``fabric.step`` once
    per simulated cycle.  This is exactly the loop the fabric has always
    run; it is the semantic definition every other backend is measured
    against.

``skip``
    An energy-proportional kernel for an energy-proportionality paper:
    routers that hold no flits cost no Python work.  Busy cycles run a
    *mirror* of ``MultiNocFabric.step`` that iterates only occupied
    virtual channels (via per-router occupancy bitmasks that reproduce
    the dense allocator's rotated scan order bit for bit), and fully
    quiescent spans are skipped in one jump to the next event horizon —
    the earliest pending injection, in-flight arrival, wakeup
    completion, or requested span end — with the power-gating state
    machine advanced in closed form.

Equivalence is a hard contract, not an aspiration: for any workload,
``skip`` must leave the fabric in a byte-identical state to ``dense``
(same ``FabricReport``, same RNG positions, same counters).  The
figure-table tests and ``tests/test_backend.py`` enforce this.

Backends also respect the per-instance shadowing contract (see
``docs/architecture.md``): when perf, faults, or telemetry have
shadowed ``fabric.step``, the skip backend defers to that shadowed
per-cycle step, because those layers observe every cycle.  The
invariant checker is the one observer the skip kernel composes with
directly — its laws hold at every cycle boundary, so the kernel drives
:meth:`~repro.analysis.invariants.InvariantChecker.note_steps` at the
checker's own cadence instead of stepping densely.

Backend selection: ``MultiNocFabric(config, backend="skip")`` or the
``REPRO_BACKEND`` environment variable (the experiments CLI's
``--backend`` flag sets it for sweep workers).  Unset means ``dense``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.gating import GatingPolicy
from repro.noc.buffers import vc_candidates
from repro.noc.router import PowerState
from repro.noc.topology import Port
from repro.util import env

if TYPE_CHECKING:
    from repro.noc.multinoc import MultiNocFabric

__all__ = [
    "FabricBackend",
    "DenseBackend",
    "SkipBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "NEVER",
    "backend_names",
    "make_backend",
    "backend_from_env",
]

#: Name used when neither the constructor nor the environment chooses.
DEFAULT_BACKEND = "dense"

#: Sentinel horizon for "the source never becomes active again".
NEVER = 1 << 62

#: ``Port.OPPOSITE`` as a dense tuple (LOCAL has no opposite: -1).
_OPPOSITE = tuple(
    Port.OPPOSITE.get(port, -1) for port in range(Port.COUNT)
)

#: Qualnames of the standard credit-sink closures.  Both close over
#: exactly one ``credits`` list and do ``credits[vc] += 1``, so the
#: skip kernel may update that list directly instead of calling the
#: closure; any other installed sink is called as-is.
_STD_SINK_QUALNAMES = frozenset(
    {
        "Router._make_credit_sink.<locals>.sink",
        "NetworkInterface._make_credit_sink.<locals>.sink",
    }
)


#: _alloc_orders(mc, V)[start] — the VC-allocation visit order
#: ``candidates[(j + start) % n]`` of the dense allocator, precomputed
#: per (message class, VC count) so the mirror kernel's inlined
#: allocator does no per-attempt index arithmetic.
_ALLOC_ORDERS: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}


def _alloc_orders(
    message_class: int, vcs: int
) -> tuple[tuple[int, ...], ...]:
    key = (message_class, vcs)
    orders = _ALLOC_ORDERS.get(key)
    if orders is None:
        candidates = vc_candidates(message_class, vcs)
        n = len(candidates)
        orders = tuple(
            tuple(candidates[(j + start) % n] for j in range(n))
            for start in range(n)
        )
        _ALLOC_ORDERS[key] = orders
    return orders


class FabricBackend:
    """Time-loop strategy for one fabric instance.

    Subclasses must satisfy the invariants documented in
    ``docs/architecture.md``: byte-identical fabric state at every span
    boundary, per-cycle deference to shadowed ``step`` observers, and
    ``source.step(cycle)`` called for every cycle at which the source
    may act.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def __init__(self, fabric: "MultiNocFabric") -> None:
        self.fabric = fabric

    def run(self, cycles: int, source=None) -> None:
        """Advance the fabric by ``cycles``, stepping ``source`` too."""
        raise NotImplementedError

    def drain(self, max_cycles: int) -> bool:
        """Run until the fabric is empty; True when fully drained."""
        fabric = self.fabric
        for _ in range(max_cycles):
            if fabric.in_flight_flits == 0 and all(
                not ni.queue and not ni.active_streams for ni in fabric.nis
            ):
                return True
            self.run(1)
        return False


class DenseBackend(FabricBackend):
    """The reference per-cycle kernel: every router, every cycle."""

    name = "dense"

    def run(self, cycles: int, source=None) -> None:
        # ``fabric.step`` is looked up per iteration on purpose: the
        # shadowing contract lets observers attach or detach between
        # cycles, and the dense kernel must honour the current shadow.
        fabric = self.fabric
        if source is None:
            for _ in range(cycles):
                fabric.step()
        else:
            source_step = source.step
            for _ in range(cycles):
                source_step(fabric.cycle)
                fabric.step()


class SkipBackend(FabricBackend):
    """Idle-aware kernel: occupied-channel scans and quiescence jumps.

    The kernel keeps one occupancy bitmask per router (bit ``p * V + v``
    set iff input VC ``(p, v)`` buffers at least one flit).  Masks are
    rebuilt from ground truth at every span start (:meth:`_sync`), so
    external callers may still drive ``fabric.step`` directly between
    spans.
    """

    name = "skip"

    def __init__(self, fabric: "MultiNocFabric") -> None:
        super().__init__(fabric)
        config = fabric.config
        self._vcs = config.vcs_per_port
        self._chan_count = Port.COUNT * config.vcs_per_port
        self._full_mask = (1 << self._chan_count) - 1
        # _masks[subnet][node]: occupied-channel bitmask of that router.
        self._masks: list[list[int]] = [
            [0] * fabric.mesh.num_nodes for _ in fabric.subnets
        ]
        # _credit_targets[subnet][node][in_port]: the credits list the
        # standard sink closure would update (None = no sink, callable
        # = non-standard sink to invoke).  Rebuilt by _sync.
        self._credit_targets: list[list[list | None]] = [
            [None] * fabric.mesh.num_nodes for _ in fabric.subnets
        ]
        # _eject_fast[subnet]: the subnet's ejection chain is the stock
        # fabric wiring, so the kernel may run its tail-flit bookkeeping
        # inline (non-tail ejections are then pure no-ops).
        self._eject_fast: list[bool] = [False] * len(fabric.subnets)
        # _ni_fast: every NI is a plain, unshadowed NetworkInterface,
        # so the kernel may run the NI phase through its own mirror of
        # NetworkInterface.step.  Rebuilt by _sync.
        self._ni_fast = False
        # _track_any[subnet]: some router keeps blocking-delay
        # counters, so the mirror must maintain them.  Rebuilt by
        # _sync (False for every metric except Delay).
        self._track_any: list[bool] = [False] * len(fabric.subnets)
        # Static decomposition of the dense scan index (p * V + v):
        # blocked channel visits in the mirror only ever touch the input
        # bit, so the three fields live in parallel tuples instead of
        # the router's (port, bit, vc, channel) tuples.
        total = self._chan_count
        vcs = self._vcs
        self._scan_in_ports = tuple(i // vcs for i in range(total))
        self._scan_in_vcs = tuple(i % vcs for i in range(total))
        # _port_masks[offset][port]: that port's channel bits, rotated
        # by ``offset`` — the kernel clears them from its scan mask the
        # moment a port wins the crossbar (dense: ``used_in``), so the
        # one-flit-per-input-port rule costs no per-visit test.
        ones = (1 << vcs) - 1
        full = self._full_mask
        self._port_masks = tuple(
            tuple(
                full
                & ~(
                    (((ones << (p * vcs)) >> off)
                     | ((ones << (p * vcs)) << (total - off)))
                    & full
                )
                for p in range(Port.COUNT)
            )
            for off in range(total)
        )
        # _channels[subnet][node]: input VC channels in scan-index
        # order (the fourth field of Router._scan).  Rebuilt by _sync.
        self._channels: list[list[tuple]] = [
            [()] * fabric.mesh.num_nodes for _ in fabric.subnets
        ]

    # ------------------------------------------------------------------
    # Shadowing-contract composition
    # ------------------------------------------------------------------
    def _shadow_mode(self) -> str:
        """How ``fabric.step`` is currently shadowed.

        ``"none"``   — plain class bytecode; the kernel may run freely.
        ``"checker"`` — only the invariant checker wraps ``step``; the
        kernel runs and drives the checker's cadence itself.
        ``"defer"``  — perf, faults, or telemetry (alone or stacked)
        observe every cycle; the kernel defers to the shadowed step.
        """
        fabric = self.fabric
        shadow = vars(fabric).get("step")
        if shadow is None:
            return "none"
        checker = fabric.invariant_checker
        if (
            checker is not None
            and shadow == checker._checked_step
            and getattr(checker._orig_step, "__func__", None)
            is type(fabric).step
        ):
            return "checker"
        return "defer"

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, cycles: int, source=None) -> None:
        if cycles <= 0:
            return
        fabric = self.fabric
        mode = self._shadow_mode()
        if mode == "defer":
            # Per-cycle observers are attached; dense semantics through
            # the shadow chain is the only faithful execution.
            if source is None:
                for _ in range(cycles):
                    fabric.step()
            else:
                source_step = source.step
                for _ in range(cycles):
                    source_step(fabric.cycle)
                    fabric.step()
            return
        checker = fabric.invariant_checker if mode == "checker" else None
        self._sync()
        end = fabric.cycle + cycles
        while fabric.cycle < end:
            if not self._kernel_span(end, source, checker):
                self._jump(end, source, checker)

    def drain(self, max_cycles: int) -> bool:
        fabric = self.fabric
        if self._shadow_mode() == "defer":
            return super().drain(max_cycles)
        checker = (
            fabric.invariant_checker
            if self._shadow_mode() == "checker"
            else None
        )
        self._sync()
        nis = fabric.nis
        for _ in range(max_cycles):
            if fabric.in_flight_flits == 0 and all(
                not ni.queue and not ni.active_streams for ni in nis
            ):
                return True
            self._kernel_span(fabric.cycle + 1, None, checker)
        return False

    # ------------------------------------------------------------------
    # Mask maintenance
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Rebuild masks and fast-path wiring from ground truth.

        Runs at every span start, so wiring changed between spans
        (fault campaigns swapping sinks, tests overriding hooks) is
        picked up before the kernel trusts any cached view of it.
        """
        credit_target = self._credit_target
        track_any = self._track_any
        for masks, targets, channels, network in zip(
            self._masks,
            self._credit_targets,
            self._channels,
            self.fabric.subnets,
        ):
            track_any[network.subnet] = any(
                router.track_blocking for router in network.routers
            )
            for router in network.routers:
                mask = 0
                bit = 1
                for port in router.ports:
                    for channel in port.vcs:
                        if channel.fifo:
                            mask |= bit
                        bit <<= 1
                masks[router.node] = mask
                targets[router.node] = [
                    credit_target(sink) for sink in router.credit_sinks
                ]
                # Same p-major, v-minor order as the dense scan.
                channels[router.node] = tuple(
                    ch for port in router.ports for ch in port.vcs
                )
        self._sync_eject_fast()

    @staticmethod
    def _credit_target(sink):
        """Credits list behind a standard sink closure, else the sink.

        The stock sinks (router-to-router and NI-to-router) both close
        over one ``credits`` list and increment ``credits[vc]``;
        returning the list lets the kernel skip the call.  ``None`` and
        unrecognized callables pass through untouched.
        """
        if sink is None:
            return None
        if (
            getattr(sink, "__qualname__", "") in _STD_SINK_QUALNAMES
            and sink.__closure__ is not None
            and len(sink.__closure__) == 1
        ):
            cell = sink.__closure__[0].cell_contents
            if type(cell) is list:
                return cell
        return sink

    def _sync_eject_fast(self) -> None:
        """Detect the stock ejection chain, per subnet.

        The chain ``SubnetNetwork.eject_sink -> MultiNocFabric.
        _eject_to_ni -> NetworkInterface.receive_flit ->
        MultiNocFabric._on_packet_received`` reduces to: tail flits set
        ``received_cycle``, hit ``stats.record_received``, and invoke
        ``fabric.packet_sink``; non-tail flits do nothing.  When every
        link of the chain is the unmodified stock method, the kernel
        inlines exactly that; otherwise it calls the sink per flit.
        """
        from repro.noc.interface import NetworkInterface
        from repro.noc.multinoc import MultiNocFabric
        from repro.noc.routing import XYRouting

        fabric = self.fabric
        # The NI-step mirror requires the stock class with none of the
        # mirrored methods shadowed per instance; the ejection fast
        # path additionally requires the stock packet sink.
        shadowable = {
            "step", "_stream_subnet", "_assign_head", "receive_flit",
        }
        self._ni_fast = all(
            type(ni) is NetworkInterface
            and type(ni.routing) is XYRouting
            and not (vars(ni).keys() & shadowable)
            for ni in fabric.nis
        )
        ni_fast = self._ni_fast and all(
            getattr(ni.packet_sink, "__func__", None)
            is MultiNocFabric._on_packet_received
            and getattr(ni.packet_sink, "__self__", None) is fabric
            for ni in fabric.nis
        )
        for idx, network in enumerate(fabric.subnets):
            sink = network.eject_sink
            self._eject_fast[idx] = (
                ni_fast
                and getattr(sink, "__func__", None)
                is MultiNocFabric._eject_to_ni
                and getattr(sink, "__self__", None) is fabric
            )

    # ------------------------------------------------------------------
    # Busy cycles: the mirror kernel
    # ------------------------------------------------------------------
    def _kernel_span(self, end: int, source, checker) -> bool:
        """Run mirrored per-cycle steps until ``end`` or quiescence.

        Returns True when the span reached ``end``; False when the
        fabric went fully quiescent first (the caller may then jump).
        """
        fabric = self.fabric
        subnets = fabric.subnets
        nis = fabric.nis
        monitor = fabric.monitor
        gating = fabric.gating
        masks_by_subnet = self._masks
        vcs = self._vcs
        total = self._chan_count
        full = self._full_mask
        local = Port.LOCAL
        step_subnet = self._step_subnet
        step_nis = self._step_nis
        ni_fast = self._ni_fast
        source_step = source.step if source is not None else None
        quiet_source = self._source_quiet_probe(source)
        gating_none = gating.policy == GatingPolicy.NONE
        # Batched gating stats for the NONE policy (flushed before any
        # checker pass and at span exit, so observers see exact counts):
        # under NONE every router of every subnet is active every cycle,
        # so a cycle count per span reconstructs the stats exactly.
        none_cycles = 0

        def flush_none() -> None:
            nonlocal none_cycles
            if none_cycles:
                for idx, network in enumerate(subnets):
                    gating.stats[idx].active_cycles += (
                        none_cycles * len(network.routers)
                    )
                none_cycles = 0

        cycle = fabric.cycle
        while cycle < end:
            if source_step is not None:
                source_step(cycle)
            fabric_active = False
            for subnet_idx, network in enumerate(subnets):
                masks = masks_by_subnet[subnet_idx]
                ring = network._ring
                slot = ring[cycle % network._ring_len]
                if slot:
                    # Router.deliver + InputPort.push, inlined.
                    for router, in_port, vc, flit in slot:
                        port_obj = router.ports[in_port]
                        channel = port_obj.vcs[vc]
                        fifo = channel.fifo
                        if len(fifo) >= channel.depth:
                            raise OverflowError(
                                "flit arrived at a full VC (credit bug)"
                            )
                        fifo.append(flit)
                        port_obj.occupancy += 1
                        router.buffered_flits += 1
                        router.expected_arrivals -= 1
                        router.idle_cycles = 0
                        masks[router.node] |= 1 << (in_port * vcs + vc)
                    network.counters.buffer_writes += len(slot)
                    slot.clear()
            monitor.update(cycle, subnets, nis)
            if ni_fast:
                if step_nis(cycle):
                    fabric_active = True
            else:
                for ni in nis:
                    if ni.queue or ni._active_slots or ni._ir_rate > 1e-9:
                        # An NI outside this condition runs the exact
                        # no-op branch of NetworkInterface.step;
                        # skipping the call is byte-identical.
                        ni.step(cycle)
                        fabric_active = True
            for subnet_idx, network in enumerate(subnets):
                if network.flits_in_network:
                    fabric_active = True
                    step_subnet(
                        network, masks_by_subnet[subnet_idx], cycle,
                        total, full, local,
                    )
                # Dense step_routers integrates occupancy after this
                # subnet's ejections, so the post-step count is charged.
                network.counters.flit_cycles += network.flits_in_network
            if gating_none:
                none_cycles += 1
            else:
                gating.step(cycle)
            cycle += 1
            fabric.cycle = cycle
            if checker is not None:
                flush_none()
                checker.note_steps(1, cycle - 1)
            if not fabric_active and quiet_source(cycle):
                if self._quiescent():
                    flush_none()
                    return False
        flush_none()
        return True

    def _step_nis(self, cycle: int) -> bool:
        """Mirror of the fabric's NI phase (guarded by ``_ni_fast``).

        One call per cycle instead of one ``NetworkInterface.step``
        call per active NI, with the hot ``_stream_subnet`` /
        ``SubnetNetwork.inject`` bodies inlined statement for
        statement.  ``_assign_head`` stays a call (it owns the
        selection policy and packet segmentation and runs once per
        packet, not per cycle).  Returns True when any NI did work —
        the same condition the generic gate reports.
        """
        fabric = self.fabric
        subnets = fabric.subnets
        vcs = self._vcs
        n_sub = len(subnets)
        local = Port.LOCAL
        pipeline = fabric.config.timing.pipeline_cycles
        active_any = False
        for ni in fabric.nis:
            if not ni.queue and not ni._active_slots:
                # The exact decay-only branch of NetworkInterface.step.
                rate = ni._ir_rate
                if rate > 1e-9:
                    active_any = True
                    alpha = ni._ir_alpha
                    ni._ir_rate = rate - alpha * rate
                    rates = ni._ir_rate_subnet
                    for s in range(n_sub):
                        r = rates[s]
                        rates[s] = r - alpha * r
                continue
            active_any = True
            node = ni.node
            routing = ni.routing
            rtable = routing._table
            rstride = routing._n
            sent = 0
            if ni._active_slots:
                sactive = ni._subnet_active
                orders = ni._stream_orders
                rrs = ni._stream_rr
                slots_by = ni._slots
                credits_by = ni._credits
                for subnet in range(n_sub):
                    if not sactive[subnet]:
                        continue
                    # NetworkInterface._stream_subnet, inlined.
                    network = subnets[subnet]
                    router = network.routers[node]
                    if router.power_state:
                        # At least one slot is occupied (the per-subnet
                        # count says so), so the dense loop issues
                        # exactly one wakeup request and sends nothing.
                        if ni.gating is not None:
                            ni.gating.request_wakeup(router)
                        continue
                    slots = slots_by[subnet]
                    credits = credits_by[subnet]
                    for vc in orders[rrs[subnet]]:
                        slot = slots[vc]
                        if slot is None:
                            continue
                        if credits[vc] <= 0:
                            continue
                        flit = slot.flits[slot.index]
                        credits[vc] -= 1
                        flit.vc = vc
                        # XYRouting.output_port is exactly this flat
                        # table lookup.
                        flit.route = rtable[
                            node * rstride + flit.packet.dst
                        ]
                        if flit.is_head:
                            slot.packet.injected_cycle = cycle
                        # SubnetNetwork.inject, inlined.
                        router.expected_arrivals += 1
                        network._ring[
                            (cycle + pipeline) % network._ring_len
                        ].append((router, local, vc, flit))
                        network.flits_in_network += 1
                        counters = network.counters
                        counters.flits_injected += 1
                        if flit.is_head:
                            counters.packets_injected += 1
                        ni._queue_flits -= 1
                        slot.index += 1
                        if flit.is_tail:
                            slots[vc] = None
                            ni._active_slots -= 1
                            sactive[subnet] -= 1
                        nrr = vc + 1
                        rrs[subnet] = nrr if nrr < vcs else 0
                        sent |= 1 << subnet
                        break
            fresh = ni._assign_head(cycle)
            if fresh >= 0 and not sent & (1 << fresh):
                ni._stream_subnet(fresh, cycle)
            alpha = ni._ir_alpha
            r = ni._ir_rate
            ni._ir_rate = r + alpha * (ni._assigned_this_cycle - r)
            rates = ni._ir_rate_subnet
            assigned = ni._assigned_subnet
            for s in range(n_sub):
                r = rates[s]
                rates[s] = r + alpha * (
                    (1.0 if s == assigned else 0.0) - r
                )
            ni._assigned_this_cycle = 0
            ni._assigned_subnet = -1
        return active_any

    def _step_subnet(
        self,
        network,
        masks: list,
        cycle: int,
        total: int,
        full: int,
        local: int,
    ) -> None:
        """Mirror of :meth:`SubnetNetwork.step_routers` (minus the
        ``flit_cycles`` charge) over occupied channels only.

        One call per busy subnet per cycle: network-level state
        (counters, delay-line slot, ejection sink) is hoisted out of
        the per-router loop, and each router's occupancy mask is
        iterated in exactly the order the dense rotated scan visits
        non-empty channels.  The bodies of ``Router._forward``,
        ``Router._eject``, and ``Router._allocate_vc`` (and the
        ``SubnetNetwork.send`` / ``SubnetNetwork.eject`` calls they
        make) are inlined statement for statement — every counter,
        credit, VC round-robin advance, and allocation moves
        identically to the dense kernel.  Counter increments (and each
        router's ``buffered_flits``) are batched per subnet-cycle;
        nothing inside the loop reads them.
        """
        vcs = self._vcs
        orders_get = _ALLOC_ORDERS.get
        in_ports = self._scan_in_ports
        in_vcs = self._scan_in_vcs
        port_masks = self._port_masks
        channels_row = self._channels[network.subnet]
        track_subnet = self._track_any[network.subnet]
        counters = network.counters
        send_append = network._ring[
            (cycle + network._hop_cycles) % network._ring_len
        ].append
        eject_sink = network.eject_sink
        subnet = network.subnet
        eject_fast = self._eject_fast[subnet]
        targets_by_node = self._credit_targets[subnet]
        fabric = self.fabric
        record_received = fabric.stats.record_received
        request_wakeup = network.request_wakeup
        opposite = _OPPOSITE
        buffer_reads = 0
        crossbar = 0
        links = 0
        flits_ejected = 0
        packets_ejected = 0
        ejected = 0
        for node, router in enumerate(network.routers):
            mask = masks[node]
            if not mask:
                continue
            offset = router._rr
            nrr = offset + 1
            router._rr = nrr if nrr < total else 0
            if offset:
                rot = ((mask >> offset) | (mask << (total - offset))) & full
            else:
                rot = mask
            # Dense heads_waiting counts every channel non-empty when
            # the scan visits it; pops only empty the channel being
            # visited, so that equals the start-of-cycle popcount.
            if track_subnet:
                track = router.track_blocking
                heads_waiting = mask.bit_count() if track else 0
            else:
                track = False
            channels = channels_row[node]
            ports = router.ports
            credits = router.credits
            neighbor = router.neighbor_router
            ctargets = targets_by_node[node]
            pmasks = port_masks[offset]
            used_out = 0
            moved = 0
            removed = 0
            while rot:
                low = rot & -rot
                rot &= rot - 1
                index = low.bit_length() - 1 + offset
                if index >= total:
                    index -= total
                channel = channels[index]
                fifo = channel.fifo
                flit = fifo[0]
                out_port = flit.route
                out_bit = 1 << out_port
                if used_out & out_bit:
                    continue
                if out_port == local:
                    # Router._eject + SubnetNetwork.eject, inlined.
                    in_port = in_ports[index]
                    fifo.popleft()
                    ports[in_port].occupancy -= 1
                    removed += 1
                    target = ctargets[in_port]
                    if target is not None:
                        if target.__class__ is list:
                            target[in_vcs[index]] += 1
                        else:
                            target(in_vcs[index])
                    is_tail = flit.is_tail
                    if is_tail and channel.out_port >= 0:
                        channel.out_port = -1
                        channel.out_vc = -1
                    buffer_reads += 1
                    crossbar += 1
                    flits_ejected += 1
                    ejected += 1
                    if is_tail:
                        packets_ejected += 1
                        if eject_fast:
                            # The stock chain, inlined (_sync proved
                            # the wiring): tail bookkeeping only.
                            packet = flit.packet
                            packet.received_cycle = cycle
                            record_received(packet, cycle)
                            fsink = fabric.packet_sink
                            if fsink is not None:
                                fsink(packet, cycle)
                        else:
                            if eject_sink is None:
                                raise RuntimeError(
                                    "no ejection sink installed"
                                )
                            eject_sink(flit, subnet, node, cycle)
                    elif not eject_fast:
                        if eject_sink is None:
                            raise RuntimeError(
                                "no ejection sink installed"
                            )
                        eject_sink(flit, subnet, node, cycle)
                    if not fifo:
                        mask &= ~(1 << index)
                    rot &= pmasks[in_port]
                    used_out |= out_bit
                    moved += 1
                    continue
                if channel.out_port < 0:
                    # Router._allocate_vc, inlined.  A successful
                    # allocation proves the downstream router active,
                    # so the dense kernel's re-fetch and power-state
                    # re-check after allocation are pure no-ops here.
                    downstream = neighbor[out_port]
                    if downstream is None:
                        raise RuntimeError(
                            f"route to missing neighbour at node "
                            f"{node} port {Port.NAMES[out_port]}"
                        )
                    if downstream.power_state:
                        request_wakeup(downstream, node)
                        continue
                    orders = orders_get((flit.packet.message_class, vcs))
                    if orders is None:
                        orders = _alloc_orders(
                            flit.packet.message_class, vcs
                        )
                    n = len(orders)
                    start = router._vc_rr
                    router._vc_rr = (start + 1) % n
                    owner = router.out_owner[out_port]
                    out_vc = -1
                    for c in orders[start % n]:
                        if not owner[c]:
                            owner[c] = True
                            channel.out_port = out_port
                            channel.out_vc = c
                            out_vc = c
                            break
                    if out_vc < 0:
                        continue
                    if credits[out_port][out_vc] <= 0:
                        continue
                else:
                    out_vc = channel.out_vc
                    if credits[out_port][out_vc] <= 0:
                        continue
                    downstream = neighbor[out_port]
                    if downstream is None or downstream.power_state:
                        if downstream is not None:
                            request_wakeup(downstream, node)
                        continue
                # Router._forward + SubnetNetwork.send, inlined.
                table = router._route_table
                dst = flit.packet.dst
                if table is not None:
                    next_route = table[
                        router.neighbor_node[out_port]
                        * router._route_nodes
                        + dst
                    ]
                else:
                    next_route = router._lookahead_route(out_port, dst)
                in_port = in_ports[index]
                fifo.popleft()
                ports[in_port].occupancy -= 1
                removed += 1
                credits[out_port][out_vc] -= 1
                target = ctargets[in_port]
                if target is not None:
                    if target.__class__ is list:
                        target[in_vcs[index]] += 1
                    else:
                        target(in_vcs[index])
                if flit.is_tail:
                    router.out_owner[out_port][out_vc] = False
                    channel.out_port = -1
                    channel.out_vc = -1
                flit.route = next_route
                flit.vc = out_vc
                downstream.expected_arrivals += 1
                send_append(
                    (downstream, opposite[out_port], out_vc, flit)
                )
                if flit.is_head:
                    flit.packet.hops += 1
                buffer_reads += 1
                crossbar += 1
                links += 1
                if not fifo:
                    mask &= ~(1 << index)
                rot &= pmasks[in_port]
                used_out |= out_bit
                moved += 1
            if removed:
                router.buffered_flits -= removed
            if track:
                router.blocked_accum += heads_waiting - moved
                router.moved_accum += moved
            masks[node] = mask
        counters.buffer_reads += buffer_reads
        counters.crossbar_traversals += crossbar
        counters.link_traversals += links
        counters.flits_ejected += flits_ejected
        counters.packets_ejected += packets_ejected
        network.flits_in_network -= ejected

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------
    def _source_quiet_probe(self, source) -> Callable[[int], bool]:
        """Predicate: at ``cycle`` the source offers nothing and can
        report its next active cycle (else it is never quiet)."""
        if source is None:
            return lambda cycle: True
        next_offer = getattr(source, "next_offer_cycle", None)
        if next_offer is None:
            return lambda cycle: False
        return lambda cycle: next_offer(cycle) > cycle

    def _quiescent(self) -> bool:
        """True when a clock jump is provably invisible.

        Requires: no flit anywhere (buffered or in flight), every NI
        frozen (empty and with decayed injection-rate averages), the
        congestion monitor structurally clear (idle-skippable metric,
        zero latched LCS bits, all regional bits low), no pending or
        watchdog-armed wakeups, and no fault engine attached.
        """
        fabric = self.fabric
        for network in fabric.subnets:
            if network.flits_in_network:
                return False
        for ni in fabric.nis:
            if ni.queue or ni._active_slots or ni._ir_rate > 1e-9:
                return False
        monitor = fabric.monitor
        if not monitor._idle_skippable:
            return False
        if any(monitor._latched_count):
            return False
        if any(any(row) for row in monitor.regional._rcs):
            return False
        gating = fabric.gating
        if gating._pending_wakes or gating._wake_timeout is not None:
            return False
        return True

    def _jump(self, end: int, source, checker) -> None:
        """Advance the clock over a quiescent span in one step.

        Only power-gating bookkeeping evolves during quiescence, and
        each router's state machine runs independently (no congestion,
        no wakeup requests), so it is advanced in closed form; every
        other per-cycle phase is a proven no-op.
        """
        fabric = self.fabric
        start = fabric.cycle
        horizon = end
        if source is not None:
            horizon = min(horizon, source.next_offer_cycle(start))
        if horizon <= start:
            # The source reactivates immediately; nothing to skip —
            # run one mirrored cycle and let the caller re-evaluate.
            self._kernel_span(start + 1, source, checker)
            return
        span = horizon - start
        self._advance_gating(start, horizon)
        fabric.cycle = horizon
        if checker is not None:
            checker.note_steps(span, horizon - 1)

    def _advance_gating(self, start: int, end: int) -> None:
        """Closed-form gating over quiescent cycles ``[start, end)``."""
        gating = self.fabric.gating
        span = end - start
        if gating.policy == GatingPolicy.NONE:
            for subnet_idx, network in enumerate(gating.subnets):
                gating.stats[subnet_idx].active_cycles += (
                    span * len(network.routers)
                )
            return
        detect = gating.idle_detect_cycles
        for subnet_idx, network in enumerate(gating.subnets):
            stats = gating.stats[subnet_idx]
            gate_this_subnet = not (gating.keep_subnet0 and subnet_idx == 0)
            for router in network.routers:
                if not gate_this_subnet:
                    stats.active_cycles += span
                    continue
                t = start
                while t < end:
                    state = router.power_state
                    if state == PowerState.SLEEP:
                        stats.sleep_cycles += end - t
                        t = end
                    elif state == PowerState.ACTIVE:
                        # Drained and uncongested: sleeps once the idle
                        # window fills (counted active through the
                        # transition cycle, exactly as the dense loop).
                        sleep_at = t + max(
                            0, detect - router.idle_cycles - 1
                        )
                        if sleep_at >= end:
                            stats.active_cycles += end - t
                            router.idle_cycles += end - t
                            t = end
                        else:
                            stats.active_cycles += sleep_at - t + 1
                            router.idle_cycles += sleep_at - t + 1
                            gating._sleep(router, sleep_at)
                            t = sleep_at + 1
                    else:  # WAKEUP
                        ready = gating._state[id(router)].wake_ready
                        done_at = ready if ready > t else t
                        if done_at >= end:
                            stats.wakeup_cycles += end - t
                            t = end
                        else:
                            stats.wakeup_cycles += done_at - t + 1
                            gating._wake_complete(router, done_at)
                            t = done_at + 1


#: Registry of selectable backends, keyed by CLI/env name.
BACKENDS: dict[str, type[FabricBackend]] = {
    DenseBackend.name: DenseBackend,
    SkipBackend.name: SkipBackend,
}


def backend_names() -> tuple[str, ...]:
    """Valid backend names, sorted (for CLI help and errors)."""
    return tuple(sorted(BACKENDS))


def make_backend(name: str, fabric: "MultiNocFabric") -> FabricBackend:
    """Instantiate the backend called ``name`` for ``fabric``.

    Raises ``ValueError`` with the valid names for anything unknown, so
    callers (the CLI validates earlier; library users hit this) get an
    actionable message instead of an AttributeError mid-simulation.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric backend {name!r}; "
            f"choose from {', '.join(backend_names())}"
        ) from None
    return cls(fabric)


def backend_from_env() -> str:
    """Backend name selected by ``REPRO_BACKEND`` (default ``dense``)."""
    return env.text("REPRO_BACKEND", DEFAULT_BACKEND)
