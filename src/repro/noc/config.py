"""Configuration records for networks, routers, and Multi-NoC fabrics.

The defaults reproduce the paper's Table 1 / Section 4 setup: an 8x8
concentrated mesh for a 256-core processor, 2 GHz two-stage routers with
4 virtual channels per port and 4 flits per VC, and a constant aggregate
datapath of 512 bits split evenly among subnets.

Named constructors build the exact configurations evaluated in the paper
(``1NT-512b``, ``2NT-256b``, ``4NT-128b``, ``8NT-64b``, and the 64-core
variants used in Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.validation import check_positive

__all__ = [
    "RouterTimingConfig",
    "PowerGatingConfig",
    "CongestionConfig",
    "NocConfig",
    "AGGREGATE_WIDTH_BITS_256_CORE",
    "AGGREGATE_WIDTH_BITS_64_CORE",
    "CONTROL_PACKET_BITS",
    "DATA_PACKET_BITS",
    "SYNTHETIC_PACKET_BITS",
]

#: Aggregate datapath (bits) sustaining 8 GB/s per core at 2 GHz for 256
#: cores on an 8x8 concentrated mesh (paper Section 2.2).
AGGREGATE_WIDTH_BITS_256_CORE = 512

#: Aggregate datapath for the 64-core, 4x4 concentrated mesh (Section 6.6).
AGGREGATE_WIDTH_BITS_64_CORE = 256

#: Control packet payload: 72-bit header only (paper Section 4.1).
CONTROL_PACKET_BITS = 72

#: Data packet: 64-byte cache block plus 72-bit header.
DATA_PACKET_BITS = 64 * 8 + 72

#: Synthetic-workload packet size (paper Section 4.1).
SYNTHETIC_PACKET_BITS = 512


@dataclass(frozen=True)
class RouterTimingConfig:
    """Timing of the two-stage speculative router pipeline.

    ``pipeline_cycles`` covers route computation / VC allocation /
    speculative switch allocation plus switch traversal; ``link_cycles``
    is the inter-router wire traversal.
    """

    pipeline_cycles: int = 2
    link_cycles: int = 1

    @property
    def hop_cycles(self) -> int:
        """Zero-load latency contributed by one hop."""
        return self.pipeline_cycles + self.link_cycles

    def __post_init__(self) -> None:
        check_positive("pipeline_cycles", self.pipeline_cycles)
        check_positive("link_cycles", self.link_cycles)


@dataclass(frozen=True)
class PowerGatingConfig:
    """Power-gating constants from the paper's SPICE analysis (§4.3).

    ``wakeup_cycles`` is the full T-wakeup delay; ``hidden_wakeup_cycles``
    is the portion hidden by look-ahead routing (wakeup signal from the
    upstream router).  ``breakeven_cycles`` is T-breakeven: the minimum
    sleep length for a switch-off to save energy.  ``idle_detect_cycles``
    is T-idle-detect: how long buffers must stay empty before the
    buffer-empty condition is set.
    """

    enabled: bool = True
    wakeup_cycles: int = 10
    hidden_wakeup_cycles: int = 3
    breakeven_cycles: int = 12
    idle_detect_cycles: int = 4
    #: Keep subnet 0 always on (Catnap keeps the 0th subnet active).
    keep_subnet0_active: bool = True

    def __post_init__(self) -> None:
        check_positive("wakeup_cycles", self.wakeup_cycles)
        if not 0 <= self.hidden_wakeup_cycles <= self.wakeup_cycles:
            raise ValueError(
                "hidden_wakeup_cycles must be within [0, wakeup_cycles]"
            )
        check_positive("breakeven_cycles", self.breakeven_cycles)
        check_positive("idle_detect_cycles", self.idle_detect_cycles)


@dataclass(frozen=True)
class CongestionConfig:
    """Thresholds and timing for local/regional congestion detection.

    Defaults are the best-performing thresholds reported in §4.1:
    BFM 9 flits, BFA 2 flits, Delay 1.5 cycles, IQOcc 4 flits; the 1-bit
    OR network updates regional status every 6 cycles (SPICE: 2.7 ns at
    2 GHz).
    """

    metric: str = "bfm"
    bfm_threshold_flits: int = 9
    bfa_threshold_flits: float = 2.0
    delay_threshold_cycles: float = 1.5
    iqocc_threshold_flits: int = 4
    injection_rate_threshold: float = 0.20
    injection_rate_window: int = 64
    delay_sample_period: int = 8
    #: Minimum cycles a congested status is held before it may reset.
    hold_cycles: int = 6
    rcs_update_period: int = 6
    #: Use the regional OR network (False = local-only variants).
    use_regional: bool = True
    #: Regions per mesh axis for the OR network: 1 = one global region,
    #: 2 = the paper's four quadrants, 4 = sixteen fine regions.
    rcs_divisions: int = 2

    _KNOWN_METRICS = ("bfm", "bfa", "ir", "iqocc", "delay")

    def __post_init__(self) -> None:
        if self.metric not in self._KNOWN_METRICS:
            raise ValueError(
                f"metric must be one of {self._KNOWN_METRICS}, "
                f"got {self.metric!r}"
            )
        check_positive("bfm_threshold_flits", self.bfm_threshold_flits)
        check_positive("rcs_update_period", self.rcs_update_period)
        check_positive("rcs_divisions", self.rcs_divisions)


@dataclass(frozen=True)
class NocConfig:
    """Full description of a (possibly multi-) network-on-chip.

    Attributes
    ----------
    mesh_cols, mesh_rows:
        Dimensions of the concentrated mesh of routers.
    tiles_per_node:
        Cores sharing one network interface (concentration factor).
    num_subnets:
        Number of physical subnetworks; 1 models a Single-NoC.
    link_width_bits:
        Datapath width of **each** subnet.
    vcs_per_port, flits_per_vc:
        Input-buffer organization (constant in flits across configs,
        per paper §2.3).
    injection_queue_flits:
        Capacity of the shared NI injection queue, in flits.
    frequency_ghz, voltage_v:
        Operating point (see ``repro.power.technology`` for Table 2).
    selection_policy:
        ``"catnap"``, ``"round_robin"``, ``"random"``, ``"ir"`` (the
        Catnap discipline driven by the IR metric), or
        ``"class_partition"`` (CCNoC-style specialization, §7.2).
    """

    mesh_cols: int = 8
    mesh_rows: int = 8
    tiles_per_node: int = 4
    num_subnets: int = 1
    link_width_bits: int = 512
    vcs_per_port: int = 4
    flits_per_vc: int = 4
    injection_queue_flits: int = 16
    frequency_ghz: float = 2.0
    voltage_v: float = 0.750
    selection_policy: str = "catnap"
    timing: RouterTimingConfig = field(default_factory=RouterTimingConfig)
    gating: PowerGatingConfig = field(
        default_factory=lambda: PowerGatingConfig(enabled=False)
    )
    congestion: CongestionConfig = field(default_factory=CongestionConfig)

    def __post_init__(self) -> None:
        check_positive("mesh_cols", self.mesh_cols)
        check_positive("mesh_rows", self.mesh_rows)
        check_positive("num_subnets", self.num_subnets)
        check_positive("link_width_bits", self.link_width_bits)
        check_positive("vcs_per_port", self.vcs_per_port)
        check_positive("flits_per_vc", self.flits_per_vc)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of mesh nodes (router positions per subnet)."""
        return self.mesh_cols * self.mesh_rows

    @property
    def num_cores(self) -> int:
        """Number of processor cores attached to the fabric."""
        return self.num_nodes * self.tiles_per_node

    @property
    def aggregate_width_bits(self) -> int:
        """Total datapath width across all subnets."""
        return self.num_subnets * self.link_width_bits

    @property
    def buffer_depth_flits(self) -> int:
        """Input-buffer depth per port in flits (constant across configs)."""
        return self.vcs_per_port * self.flits_per_vc

    def flits_per_packet(self, packet_bits: int) -> int:
        """Number of flits needed to carry ``packet_bits`` on one subnet."""
        check_positive("packet_bits", packet_bits)
        return -(-packet_bits // self.link_width_bits)

    @property
    def name(self) -> str:
        """Short configuration label, e.g. ``4NT-128b`` or ``4NT-128b-PG``."""
        label = f"{self.num_subnets}NT-{self.link_width_bits}b"
        if self.gating.enabled:
            label += "-PG"
        return label

    def with_power_gating(self, enabled: bool = True) -> "NocConfig":
        """Return a copy with power gating turned on (or off)."""
        return replace(self, gating=replace(self.gating, enabled=enabled))

    def with_policy(self, policy: str) -> "NocConfig":
        """Return a copy using a different subnet-selection policy."""
        return replace(self, selection_policy=policy)

    # ------------------------------------------------------------------
    # Named paper configurations
    # ------------------------------------------------------------------
    @staticmethod
    def single_noc_512(power_gating: bool = False) -> "NocConfig":
        """1NT-512b: the bandwidth-equivalent Single-NoC baseline."""
        return NocConfig(
            num_subnets=1,
            link_width_bits=512,
            voltage_v=0.750,
            gating=PowerGatingConfig(enabled=power_gating),
        )

    @staticmethod
    def single_noc_128(power_gating: bool = False) -> "NocConfig":
        """1NT-128b: the under-provisioned Single-NoC (Figure 2)."""
        return NocConfig(
            num_subnets=1,
            link_width_bits=128,
            voltage_v=0.625,
            gating=PowerGatingConfig(enabled=power_gating),
        )

    @staticmethod
    def multi_noc(
        num_subnets: int = 4,
        power_gating: bool = False,
        selection_policy: str = "catnap",
        aggregate_width_bits: int = AGGREGATE_WIDTH_BITS_256_CORE,
    ) -> "NocConfig":
        """N-subnet Multi-NoC with constant aggregate width.

        With the default four subnets this is the paper's ``4NT-128b``
        design at 0.625 V (Table 2's highlighted Multi-NoC row).
        """
        if aggregate_width_bits % num_subnets:
            raise ValueError(
                "aggregate width must divide evenly among subnets"
            )
        width = aggregate_width_bits // num_subnets
        return NocConfig(
            num_subnets=num_subnets,
            link_width_bits=width,
            voltage_v=0.625 if width <= 128 else 0.750,
            selection_policy=selection_policy,
            gating=PowerGatingConfig(enabled=power_gating),
        )

    @staticmethod
    def mesh_64_core(
        num_subnets: int = 2, power_gating: bool = False
    ) -> "NocConfig":
        """64-core 4x4 concentrated mesh used in Figure 14."""
        if AGGREGATE_WIDTH_BITS_64_CORE % num_subnets:
            raise ValueError("aggregate width must divide among subnets")
        width = AGGREGATE_WIDTH_BITS_64_CORE // num_subnets
        return NocConfig(
            mesh_cols=4,
            mesh_rows=4,
            num_subnets=num_subnets,
            link_width_bits=width,
            voltage_v=0.625 if width <= 128 else 0.750,
            gating=PowerGatingConfig(enabled=power_gating),
        )
