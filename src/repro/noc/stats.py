"""Latency and throughput statistics with warmup/measure windows (§6.3).

:class:`NetworkStats` produces the metrics plotted on the paper's
synthetic-traffic axes (Figures 6, 10, 11, 13, 14).

Open-loop synthetic experiments follow the standard methodology: warm
the network up, measure over a fixed window, and report (a) the average
packet latency of packets *created* inside the window and (b) the
accepted throughput as packets (and flits) ejected per node per cycle
inside the window.
"""

from __future__ import annotations

from repro.noc.flit import Packet

__all__ = ["NetworkStats"]


class NetworkStats:
    """Accumulates packet-level statistics for one fabric."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.measure_start: int | None = None
        self.measure_end: int | None = None
        # Whole-run counters.
        self.packets_offered = 0
        self.packets_received = 0
        self.flits_received = 0
        # Measurement-window counters.
        self.window_offered = 0
        self.window_received = 0
        self.window_flits_received = 0
        self.window_latency_sum = 0
        self.window_network_latency_sum = 0
        self.window_latency_samples = 0

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def begin_measurement(self, cycle: int) -> None:
        """Start the measurement window at ``cycle``."""
        self.measure_start = cycle

    def end_measurement(self, cycle: int) -> None:
        """Close the measurement window at ``cycle``."""
        self.measure_end = cycle

    def _in_window(self, cycle: int) -> bool:
        if self.measure_start is None or cycle < self.measure_start:
            return False
        return self.measure_end is None or cycle < self.measure_end

    @property
    def window_cycles(self) -> int:
        """Length of the (closed) measurement window."""
        if self.measure_start is None or self.measure_end is None:
            raise ValueError("measurement window is not closed")
        return self.measure_end - self.measure_start

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def record_offered(self, packet: Packet, cycle: int) -> None:
        """A packet was handed to an NI."""
        self.packets_offered += 1
        if self._in_window(cycle):
            self.window_offered += 1

    def record_received(self, packet: Packet, cycle: int) -> None:
        """A packet's tail flit was ejected at its destination."""
        self.packets_received += 1
        self.flits_received += packet.num_flits
        if self._in_window(cycle):
            self.window_received += 1
            self.window_flits_received += packet.num_flits
        if self._in_window(packet.created_cycle):
            self.window_latency_sum += packet.latency
            self.window_network_latency_sum += packet.network_latency
            self.window_latency_samples += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def average_packet_latency(self) -> float:
        """Mean created-to-received latency over window packets."""
        if not self.window_latency_samples:
            return 0.0
        return self.window_latency_sum / self.window_latency_samples

    def average_network_latency(self) -> float:
        """Mean injected-to-received latency over window packets."""
        if not self.window_latency_samples:
            return 0.0
        return (
            self.window_network_latency_sum / self.window_latency_samples
        )

    def throughput_packets(self) -> float:
        """Accepted packets per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_received / (self.num_nodes * cycles)

    def throughput_flits(self) -> float:
        """Accepted flits per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_flits_received / (self.num_nodes * cycles)

    def offered_rate(self) -> float:
        """Offered packets per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_offered / (self.num_nodes * cycles)
