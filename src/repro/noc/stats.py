"""Latency and throughput statistics with warmup/measure windows (§6.3).

:class:`NetworkStats` produces the metrics plotted on the paper's
synthetic-traffic axes (Figures 6, 10, 11, 13, 14).

Open-loop synthetic experiments follow the standard methodology: warm
the network up, measure over a fixed window, and report (a) the average
packet latency of packets *created* inside the window and (b) the
accepted throughput as packets (and flits) ejected per node per cycle
inside the window.
"""

from __future__ import annotations

from repro.noc.flit import Packet
from repro.util.histogram import BoundedHistogram

__all__ = ["NetworkStats", "TenantStats"]


class TenantStats:
    """Per-tenant QoS accumulator (multi-tenant serving workloads).

    Mirrors the window semantics of the fabric-wide counters: offered
    packets count when handed to an NI inside the window, latency
    samples attribute to the packet's *creation* cycle, and the bounded
    histogram backs p50/p95/p99 without storing samples.
    """

    __slots__ = ("offered", "received", "latency_sum", "histogram")

    def __init__(self) -> None:
        self.offered = 0
        self.received = 0
        self.latency_sum = 0
        self.histogram = BoundedHistogram()

    def summary(self, tenant: int) -> dict:
        """JSON-safe QoS row for one tenant."""
        return {
            "tenant": tenant,
            "offered": self.offered,
            "received": self.received,
            "latency_avg": (
                self.latency_sum / self.received if self.received else 0.0
            ),
            "latency_p50": self.histogram.percentile(0.50),
            "latency_p95": self.histogram.percentile(0.95),
            "latency_p99": self.histogram.percentile(0.99),
        }


class NetworkStats:
    """Accumulates packet-level statistics for one fabric."""

    def __init__(self, num_nodes: int, num_subnets: int = 1) -> None:
        self.num_nodes = num_nodes
        self.num_subnets = num_subnets
        self.measure_start: int | None = None
        self.measure_end: int | None = None
        # Whole-run counters.
        self.packets_offered = 0
        self.packets_received = 0
        self.flits_received = 0
        # Packets reported received while still carrying a sentinel
        # ``-1`` timestamp (created but never fully injected at run
        # end); excluded from every latency statistic.
        self.unfinished_packets = 0
        # Per-subnet hop counts over all received packets (routing
        # ground truth: under X-Y the mean equals the mean Manhattan
        # distance of the delivered traffic).
        self.hops_sum = [0] * num_subnets
        self.hops_packets = [0] * num_subnets
        # Measurement-window counters.
        self.window_offered = 0
        self.window_received = 0
        self.window_flits_received = 0
        self.window_latency_sum = 0
        self.window_network_latency_sum = 0
        self.window_latency_samples = 0
        # Bounded end-to-end latency distribution of window packets
        # (exact unit bins below 128 cycles, power-of-two tail), so
        # reports can carry p50/p95/p99 without storing samples.
        self.latency_histogram = BoundedHistogram()
        # Lazily-populated per-tenant QoS accumulators, keyed by the
        # packet's tenant tag; untagged traffic (tenant -1) never
        # allocates an entry, so non-serving runs pay one comparison.
        self.tenant_stats: dict[int, TenantStats] = {}

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def begin_measurement(self, cycle: int) -> None:
        """Start the measurement window at ``cycle``."""
        self.measure_start = cycle

    def end_measurement(self, cycle: int) -> None:
        """Close the measurement window at ``cycle``."""
        self.measure_end = cycle

    def _in_window(self, cycle: int) -> bool:
        if self.measure_start is None or cycle < self.measure_start:
            return False
        return self.measure_end is None or cycle < self.measure_end

    @property
    def window_cycles(self) -> int:
        """Length of the (closed) measurement window."""
        if self.measure_start is None or self.measure_end is None:
            raise ValueError("measurement window is not closed")
        return self.measure_end - self.measure_start

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def _tenant(self, tenant: int) -> TenantStats:
        stats = self.tenant_stats.get(tenant)
        if stats is None:
            stats = self.tenant_stats[tenant] = TenantStats()
        return stats

    def record_offered(self, packet: Packet, cycle: int) -> None:
        """A packet was handed to an NI."""
        self.packets_offered += 1
        if self._in_window(cycle):
            self.window_offered += 1
            if packet.tenant >= 0:
                self._tenant(packet.tenant).offered += 1

    def record_received(self, packet: Packet, cycle: int) -> None:
        """A packet's tail flit was ejected at its destination.

        A packet still carrying a sentinel ``-1`` timestamp was never
        (fully) injected — it must not fold into the latency sums or
        the percentile histogram, where a sentinel-derived negative
        latency would silently land in bin 0.
        """
        if packet.injected_cycle < 0 or packet.received_cycle < 0:
            self.unfinished_packets += 1
            return
        self.packets_received += 1
        self.flits_received += packet.num_flits
        if 0 <= packet.subnet < self.num_subnets:
            self.hops_sum[packet.subnet] += packet.hops
            self.hops_packets[packet.subnet] += 1
        if self._in_window(cycle):
            self.window_received += 1
            self.window_flits_received += packet.num_flits
        if self._in_window(packet.created_cycle):
            self.window_latency_sum += packet.latency
            self.window_network_latency_sum += packet.network_latency
            self.window_latency_samples += 1
            self.latency_histogram.record(packet.latency)
            if packet.tenant >= 0:
                tenant = self._tenant(packet.tenant)
                tenant.received += 1
                tenant.latency_sum += packet.latency
                tenant.histogram.record(packet.latency)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def average_packet_latency(self) -> float:
        """Mean created-to-received latency over window packets."""
        if not self.window_latency_samples:
            return 0.0
        return self.window_latency_sum / self.window_latency_samples

    def average_network_latency(self) -> float:
        """Mean injected-to-received latency over window packets."""
        if not self.window_latency_samples:
            return 0.0
        return (
            self.window_network_latency_sum / self.window_latency_samples
        )

    def latency_percentile(self, q: float) -> float:
        """Window packet-latency quantile ``q`` in (0, 1] (0.0 empty)."""
        return self.latency_histogram.percentile(q)

    def average_hops_per_subnet(self) -> list[float]:
        """Mean hop count of received packets, per carrying subnet."""
        return [
            self.hops_sum[s] / self.hops_packets[s]
            if self.hops_packets[s]
            else 0.0
            for s in range(self.num_subnets)
        ]

    def average_hops(self) -> float:
        """Mean hop count over all received packets (all subnets)."""
        packets = sum(self.hops_packets)
        return sum(self.hops_sum) / packets if packets else 0.0

    def throughput_packets(self) -> float:
        """Accepted packets per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_received / (self.num_nodes * cycles)

    def throughput_flits(self) -> float:
        """Accepted flits per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_flits_received / (self.num_nodes * cycles)

    def tenants_summary(self) -> list[dict]:
        """Per-tenant QoS rows, sorted by tenant id (empty if untagged)."""
        return [
            self.tenant_stats[tenant].summary(tenant)
            for tenant in sorted(self.tenant_stats)
        ]

    def offered_rate(self) -> float:
        """Offered packets per node per cycle during the window."""
        cycles = self.window_cycles
        if not cycles:
            return 0.0
        return self.window_offered / (self.num_nodes * cycles)
