"""The Multi-NoC fabric: subnets, NIs, policies, gating — one object
(paper §2.2, Figure 1; the evaluated configurations of Table 1).

``MultiNocFabric`` wires together everything a configuration implies:
per-subnet router networks, the shared NIs, the congestion monitor, the
subnet-selection policy, and the power-gating controller.  A Single-NoC
is simply the one-subnet special case.

The fabric exposes a tile-level :meth:`offer` for producers (traffic
generators or the processor model), a :meth:`step` to advance one clock
cycle, and a :meth:`report` that snapshots everything the power model
and experiment drivers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.gating import GatingStats, PowerGatingController
from repro.core.monitor import CongestionMonitor
from repro.core.policies import make_policy
from repro.noc.backend import backend_from_env, make_backend
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.interface import NetworkInterface
from repro.noc.network import SubnetNetwork
from repro.noc.routing import XYRouting
from repro.noc.stats import NetworkStats
from repro.noc.topology import ConcentratedMesh
from repro.util import env
from repro.util.rng import DeterministicRng

__all__ = ["MultiNocFabric", "FabricReport"]


@dataclass
class FabricReport:
    """Snapshot of a finished (or running) fabric simulation.

    The power model consumes only this record, never live objects, so
    reports can be stored, compared, and serialized by experiments.
    """

    config: NocConfig
    cycles: int
    activity: list[dict[str, int]]
    gating: list[GatingStats]
    gating_policy: str
    rcs_transitions: int
    avg_packet_latency: float
    avg_network_latency: float
    throughput_packets: float
    throughput_flits: float
    offered_rate: float
    packets_received: int
    subnet_injection_share: list[float]
    #: Window packet-latency percentiles from the bounded histogram in
    #: :class:`repro.noc.stats.NetworkStats` (0.0 when no window).
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: Mean hop count of received packets per carrying subnet (X-Y
    #: routing ground truth; empty for analytic reports).
    avg_hops_per_subnet: list[float] = field(default_factory=list)
    #: Per-tenant QoS rows (:meth:`repro.noc.stats.NetworkStats.
    #: tenants_summary`), sorted by tenant id; empty unless a
    #: multi-tenant serving workload tagged its packets.
    tenants: list[dict] = field(default_factory=list)

    @property
    def csc_fraction(self) -> float:
        """Compensated sleep cycles over all router-cycles."""
        total = GatingStats()
        for stats in self.gating:
            total = total.merge(stats)
        return total.csc_fraction()


class MultiNocFabric:
    """A complete multiple network-on-chip instance."""

    def __init__(
        self,
        config: NocConfig,
        seed: int = 1,
        backend: str | None = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.mesh = ConcentratedMesh(
            config.mesh_cols, config.mesh_rows, config.tiles_per_node
        )
        self.routing = XYRouting(self.mesh)
        self.rng = DeterministicRng(seed, "fabric")
        self.subnets = [
            SubnetNetwork(subnet, config, self.mesh, self.routing)
            for subnet in range(config.num_subnets)
        ]
        self.nis = [
            NetworkInterface(node, config, self.subnets, self.routing)
            for node in range(self.mesh.num_nodes)
        ]
        self.monitor = CongestionMonitor(config, self.mesh)
        policy_name = config.selection_policy
        self.gating = PowerGatingController(
            config, self.subnets, self.monitor
        )
        self.stats = NetworkStats(self.mesh.num_nodes, config.num_subnets)
        self.cycle = 0
        #: Extra per-packet completion callback (used by the processor
        #: model to unblock cores).
        self.packet_sink: Callable[[Packet, int], None] | None = None
        for ni in self.nis:
            ni.policy = make_policy(
                policy_name,
                config.num_subnets,
                self.mesh.num_nodes,
                self.monitor,
                self.rng,
            )
            ni.gating = self.gating
            ni.packet_sink = self._on_packet_received
        for network in self.subnets:
            network.eject_sink = self._eject_to_ni
        if self.monitor.needs_blocking_counters:
            for network in self.subnets:
                for router in network.routers:
                    router.track_blocking = True
        # Time-loop kernel (repro.noc.backend): ``dense`` steps every
        # cycle; ``skip`` charges idle routers zero Python work.  Both
        # satisfy the same state-equivalence contract, so the choice
        # never alters results — only wall-clock.
        self.backend = make_backend(backend or backend_from_env(), self)
        # Simulator self-profiling (repro.perf): attached FIRST so the
        # invariant checker and telemetry hub below wrap the phased
        # step — their instance shadows capture whatever ``step`` is
        # bound at attach time, so the three observers compose.
        self.perf = None
        if env.flag("REPRO_PERF"):
            from repro.perf.profiler import PhaseProfiler

            self.perf = PhaseProfiler.from_env(self).attach()
        # Fault injection (repro.faults): attached after perf (so the
        # engine wraps the phased step) and before the checker and
        # telemetry (so the checker reconciles post-fault truth and
        # telemetry observes injected behaviour).
        self.faults = None
        if env.flag("REPRO_FAULTS"):
            from repro.faults.engine import FaultEngine

            self.faults = FaultEngine.from_env(self).attach()
        # Runtime invariant checking (repro.analysis.invariants): the
        # checker shadows ``step`` on this instance only, so unchecked
        # fabrics keep the unhooked fast path with zero overhead.
        self.invariant_checker = None
        if env.flag("REPRO_CHECK"):
            from repro.analysis.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker(self).attach()
        # Telemetry (repro.telemetry): same per-instance shadowing
        # contract — an unattached fabric keeps the unhooked class
        # methods, so telemetry-off runs execute the identical code
        # path as a build without the telemetry package.
        self.telemetry = None
        if env.flag("REPRO_TELEMETRY"):
            from repro.telemetry.hub import TelemetryHub

            self.telemetry = TelemetryHub.from_env(self).attach()
        # Attribution (repro.explain): attached LAST so the phase and
        # energy decompositions observe post-fault, checked,
        # telemetry-visible behaviour — and so the hub can merge its
        # phase spans into the telemetry trace when both are on.
        self.explain = None
        if env.flag("REPRO_EXPLAIN"):
            from repro.explain.hub import ExplainHub

            self.explain = ExplainHub.from_env(self).attach()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _eject_to_ni(self, flit, subnet: int, node: int, cycle: int) -> None:
        self.nis[node].receive_flit(flit, subnet, cycle)

    def _on_packet_received(self, packet: Packet, cycle: int) -> None:
        self.stats.record_received(packet, cycle)
        if self.packet_sink is not None:
            self.packet_sink(packet, cycle)

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Hand an outbound packet to the source node's NI."""
        self.nis[packet.src].offer(packet, self.cycle)
        self.stats.record_offered(packet, self.cycle)

    def offer_from_tile(
        self,
        src_tile: int,
        dst_tile: int,
        size_bits: int,
        message_class: int,
        payload: object = None,
    ) -> Packet:
        """Create and offer a packet between two processor tiles."""
        packet = Packet(
            src=self.mesh.tile_node(src_tile),
            dst=self.mesh.tile_node(dst_tile),
            size_bits=size_bits,
            message_class=message_class,
            payload=payload,
        )
        self.offer(packet)
        return packet

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole fabric by one router clock cycle."""
        cycle = self.cycle
        subnets = self.subnets
        for network in subnets:
            network.deliver_arrivals(cycle)
        self.monitor.update(cycle, subnets, self.nis)
        for ni in self.nis:
            ni.step(cycle)
        for network in subnets:
            network.step_routers(cycle)
        self.gating.step(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance the fabric by ``cycles`` clock cycles.

        Delegates to the configured :class:`~repro.noc.backend.
        FabricBackend`; :meth:`step` remains the single-cycle reference
        the dense backend (and every shadow observer) is built on.
        """
        self.backend.run(cycles)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight_flits(self) -> int:
        """Flits currently anywhere in the fabric."""
        return sum(network.flits_in_network for network in self.subnets)

    def drain(self, max_cycles: int = 100_000) -> bool:
        """Run until every flit has been delivered (or the cap is hit).

        Returns True when the fabric fully drained.  Sources must stop
        offering packets before draining.
        """
        return self.backend.drain(max_cycles)

    def subnet_injection_share(self) -> list[float]:
        """Fraction of injected packets carried by each subnet."""
        totals = [0] * self.config.num_subnets
        for ni in self.nis:
            for subnet, count in enumerate(ni.injected_per_subnet):
                totals[subnet] += count
        grand = sum(totals)
        if not grand:
            return [0.0] * self.config.num_subnets
        return [count / grand for count in totals]

    def report(self) -> FabricReport:
        """Snapshot statistics for power modelling and experiments."""
        self.gating.finalize(self.cycle)
        return FabricReport(
            config=self.config,
            cycles=self.cycle,
            activity=[
                network.counters.snapshot() for network in self.subnets
            ],
            gating=list(self.gating.stats),
            gating_policy=self.gating.policy,
            rcs_transitions=self.monitor.regional.transitions,
            avg_packet_latency=self.stats.average_packet_latency(),
            avg_network_latency=self.stats.average_network_latency(),
            throughput_packets=(
                self.stats.throughput_packets()
                if self.stats.measure_start is not None
                and self.stats.measure_end is not None
                else 0.0
            ),
            throughput_flits=(
                self.stats.throughput_flits()
                if self.stats.measure_start is not None
                and self.stats.measure_end is not None
                else 0.0
            ),
            offered_rate=(
                self.stats.offered_rate()
                if self.stats.measure_start is not None
                and self.stats.measure_end is not None
                else 0.0
            ),
            packets_received=self.stats.packets_received,
            subnet_injection_share=self.subnet_injection_share(),
            latency_p50=self.stats.latency_percentile(0.50),
            latency_p95=self.stats.latency_percentile(0.95),
            latency_p99=self.stats.latency_percentile(0.99),
            avg_hops_per_subnet=self.stats.average_hops_per_subnet(),
            tenants=self.stats.tenants_summary(),
        )
