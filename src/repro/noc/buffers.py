"""Input-buffer and virtual-channel state for a router port (§2.3, §4.1).

The paper's routers are input-buffered with 4 virtual channels per port
and 4 flits per VC; buffer depth *in flits* is constant across network
configurations (§2.3).  Flow control is credit-based per VC.
:class:`InputPort` owns one :class:`VirtualChannel` per VC; its maximum
occupancy is what the winning BFM congestion metric (§3.2.1) reads.
"""

from __future__ import annotations

from collections import deque

from repro.noc.flit import Flit, MessageClass

__all__ = ["VirtualChannel", "InputPort", "vc_candidates"]

#: Virtual channels each message class may allocate.  Dependent protocol
#: classes are kept on disjoint VCs for protocol-level deadlock freedom
#: (paper §2.3); synthetic traffic may use any VC.
_VC_MAP_4 = {
    MessageClass.REQUEST: (0,),
    MessageClass.FORWARD: (1,),
    MessageClass.RESPONSE: (2, 3),
    MessageClass.SYNTHETIC: (0, 1, 2, 3),
}


#: Memo for :func:`vc_candidates` — it sits on the per-flit allocation
#: path of every router, and its result is a pure function of its two
#: small-integer arguments.
_VC_CANDIDATES_MEMO: dict[tuple[int, int], tuple[int, ...]] = {}


def vc_candidates(message_class: int, vcs_per_port: int) -> tuple[int, ...]:
    """Virtual channels ``message_class`` may use on a port.

    For the canonical 4-VC router the protocol classes get disjoint VC
    sets; for other VC counts the classes are spread modulo the VC count
    (synthetic traffic always gets every VC).
    """
    key = (message_class, vcs_per_port)
    cached = _VC_CANDIDATES_MEMO.get(key)
    if cached is not None:
        return cached
    if message_class == MessageClass.SYNTHETIC:
        result = tuple(range(vcs_per_port))
    elif vcs_per_port == 4:
        result = _VC_MAP_4[message_class]
    else:
        result = (message_class % vcs_per_port,)
    _VC_CANDIDATES_MEMO[key] = result
    return result


class VirtualChannel:
    """One VC FIFO plus its wormhole allocation state.

    ``out_port``/``out_vc`` record the output VC the packet at the front
    of this buffer holds; wormhole switching keeps them allocated from
    head to tail flit.
    """

    __slots__ = ("fifo", "out_port", "out_vc", "depth")

    def __init__(self, depth: int) -> None:
        self.fifo: deque[Flit] = deque()
        self.depth = depth
        self.out_port = -1
        self.out_vc = -1

    @property
    def occupancy(self) -> int:
        """Number of buffered flits."""
        return len(self.fifo)

    @property
    def has_allocation(self) -> bool:
        """Whether the packet at the front holds an output VC."""
        return self.out_port >= 0

    def release_allocation(self) -> None:
        """Drop the output-VC allocation (after the tail flit departs)."""
        self.out_port = -1
        self.out_vc = -1


class InputPort:
    """All VCs of one router input port, with an occupancy counter.

    ``occupancy`` (total flits across VCs) is maintained incrementally
    because the BFM congestion metric reads it every cycle.
    """

    __slots__ = ("vcs", "occupancy")

    def __init__(self, vcs_per_port: int, flits_per_vc: int) -> None:
        self.vcs = [VirtualChannel(flits_per_vc) for _ in range(vcs_per_port)]
        self.occupancy = 0

    def push(self, vc: int, flit: Flit) -> None:
        """Enqueue an arriving flit into virtual channel ``vc``."""
        channel = self.vcs[vc]
        if len(channel.fifo) >= channel.depth:
            raise OverflowError("flit arrived at a full VC (credit bug)")
        channel.fifo.append(flit)
        self.occupancy += 1

    def pop(self, vc: int) -> Flit:
        """Dequeue the front flit of virtual channel ``vc``."""
        flit = self.vcs[vc].fifo.popleft()
        self.occupancy -= 1
        return flit

    @property
    def is_empty(self) -> bool:
        """True when no VC holds any flit."""
        return self.occupancy == 0
