"""Concentrated mesh topology.

Nodes are router positions on a ``cols x rows`` grid, numbered row-major
(node ``= y * cols + x``).  Each node concentrates ``tiles_per_node``
processor tiles behind one shared network interface (paper Figure 1).

The grid is partitioned into quadrant *regions* for the regional
congestion-status OR network: the paper splits the 8x8 mesh into four
4x4 regions; we generalize to the four quadrants of any even-sided mesh.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["Port", "ConcentratedMesh"]


class Port:
    """Router port indices; LOCAL connects to the network interface."""

    LOCAL = 0
    EAST = 1
    WEST = 2
    NORTH = 3
    SOUTH = 4

    COUNT = 5
    NAMES = ("local", "east", "west", "north", "south")

    #: Port on the neighbouring router that a given output port feeds
    #: into (east output arrives on the neighbour's west input, etc.).
    OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}


@dataclass(frozen=True)
class ConcentratedMesh:
    """Geometry, neighbours, and regions of a concentrated mesh."""

    cols: int
    rows: int
    tiles_per_node: int = 4

    def __post_init__(self) -> None:
        check_positive("cols", self.cols)
        check_positive("rows", self.rows)
        check_positive("tiles_per_node", self.tiles_per_node)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of routers in one subnet."""
        return self.cols * self.rows

    @property
    def num_tiles(self) -> int:
        """Number of processor tiles attached to the mesh."""
        return self.num_nodes * self.tiles_per_node

    def coordinates(self, node: int) -> tuple[int, int]:
        """Return ``(x, y)`` grid coordinates of ``node``."""
        self._check_node(node)
        return node % self.cols, node // self.cols

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at grid position ``(x, y)``."""
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"({x}, {y}) outside {self.cols}x{self.rows}")
        return y * self.cols + x

    def tile_node(self, tile: int) -> int:
        """Node (router position) serving processor tile ``tile``."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile // self.tiles_per_node

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def neighbor(self, node: int, port: int) -> int | None:
        """Node reached from ``node`` through output ``port``.

        Returns ``None`` for the LOCAL port or when the port faces the
        mesh edge.
        """
        x, y = self.coordinates(node)
        if port == Port.EAST and x + 1 < self.cols:
            return node + 1
        if port == Port.WEST and x > 0:
            return node - 1
        if port == Port.NORTH and y > 0:
            return node - self.cols
        if port == Port.SOUTH and y + 1 < self.rows:
            return node + self.cols
        return None

    def neighbors(self, node: int) -> dict[int, int]:
        """Mapping of output port -> neighbour node for ``node``."""
        result = {}
        for port in (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH):
            other = self.neighbor(node, port)
            if other is not None:
                result[port] = other
        return result

    # ------------------------------------------------------------------
    # Regions (for the 1-bit OR network)
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        """Number of congestion-aggregation regions (quadrants)."""
        return (2 if self.cols > 1 else 1) * (2 if self.rows > 1 else 1)

    def region_of(self, node: int) -> int:
        """Quadrant region index of ``node``.

        Regions are numbered 0..3 as (west/east) x (north/south)
        quadrants; degenerate meshes collapse to fewer regions.
        """
        x, y = self.coordinates(node)
        col_half = x >= (self.cols + 1) // 2
        row_half = y >= (self.rows + 1) // 2
        cols_split = self.cols > 1
        if not cols_split:
            return int(row_half)
        return int(row_half) * 2 + int(col_half)

    def region_nodes(self, region: int) -> list[int]:
        """All nodes belonging to ``region``."""
        if not 0 <= region < self.num_regions:
            raise ValueError(f"region {region} out of range")
        return [
            node
            for node in range(self.num_nodes)
            if self.region_of(node) == region
        ]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
