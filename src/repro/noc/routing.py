"""Deterministic dimension-ordered (X-Y) look-ahead routing (§4.1).

:class:`XYRouting` implements the routing function of the paper's
Table 1 router configuration.

X-Y routing first corrects the X coordinate, then Y, and finally ejects
at the LOCAL port.  Look-ahead routing (Galles' SGI Spider scheme, used
by the paper's routers) computes a flit's output port one hop ahead: a
router receiving a head flit already knows which of its output ports the
flit takes, and computes the port the flit will take at the *next*
router.
"""

from __future__ import annotations

from repro.noc.topology import ConcentratedMesh, Port

__all__ = ["XYRouting"]


class XYRouting:
    """X-Y deterministic routing over a concentrated mesh.

    The route table is precomputed for every (current, destination) node
    pair at construction, making per-flit lookups O(1) in the simulation
    hot loop.
    """

    def __init__(self, mesh: ConcentratedMesh) -> None:
        self._mesh = mesh
        n = mesh.num_nodes
        # _table[current * n + dst] -> output port at `current`.
        self._table = [Port.LOCAL] * (n * n)
        for current in range(n):
            cx, cy = mesh.coordinates(current)
            for dst in range(n):
                dx, dy = mesh.coordinates(dst)
                if dx > cx:
                    port = Port.EAST
                elif dx < cx:
                    port = Port.WEST
                elif dy < cy:
                    port = Port.NORTH
                elif dy > cy:
                    port = Port.SOUTH
                else:
                    port = Port.LOCAL
                self._table[current * n + dst] = port
        self._n = n

    @property
    def mesh(self) -> ConcentratedMesh:
        """Topology this routing function is defined over."""
        return self._mesh

    @property
    def table(self) -> list[int]:
        """Flat route table: ``table[current * num_nodes + dst]``.

        Exposed so routers can perform look-ahead lookups without a
        method call in the simulation hot loop.
        """
        return self._table

    @property
    def num_nodes(self) -> int:
        """Stride of the flat route table."""
        return self._n

    def output_port(self, current: int, dst: int) -> int:
        """Output port taken at ``current`` for a packet headed to ``dst``."""
        return self._table[current * self._n + dst]

    def next_hop(self, current: int, dst: int) -> int | None:
        """Next router on the path, or ``None`` if ejecting here."""
        port = self.output_port(current, dst)
        if port == Port.LOCAL:
            return None
        return self._mesh.neighbor(current, port)

    def path(self, src: int, dst: int) -> list[int]:
        """Full router path from ``src`` to ``dst`` inclusive."""
        path = [src]
        current = src
        while current != dst:
            nxt = self.next_hop(current, dst)
            if nxt is None:
                raise RuntimeError("X-Y routing must always progress")
            path.append(nxt)
            current = nxt
        return path
