"""Shared network interface (NI) of a node (paper §2.3, Figure 3).

Four tiles share one NI.  The NI queues outbound packets; when a packet
reaches the head of the queue the subnet-selection policy picks a
subnet, the packet is segmented into flits no wider than the subnet
datapath, and the flits stream into the local router of that subnet.
Each subnet link carries at most one flit per cycle, but packets of
different virtual channels may interleave on it (one streaming packet
per VC), so a single-flit control packet is not blocked behind a long
data packet of another message class.  All flits of a packet travel on
the same subnet.

The NI is also where two congestion metrics are measured (injection
rate, injection-queue occupancy) and where sleeping local routers are
woken before injection.

:meth:`NetworkInterface.step` is the ``ni_packetization`` phase of the
simulator's self-profile (``REPRO_PERF=1``, see ``docs/perf.md``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.noc.buffers import vc_candidates
from repro.noc.config import NocConfig
from repro.noc.flit import Flit, Packet
from repro.noc.router import PowerState
from repro.noc.topology import Port

if TYPE_CHECKING:
    from repro.core.gating import PowerGatingController
    from repro.core.policies import SubnetSelectionPolicy
    from repro.noc.network import SubnetNetwork
    from repro.noc.routing import XYRouting

__all__ = ["NetworkInterface"]

#: _rr_orders(v)[start] == ((start) % v, (start+1) % v, ...): the VC
#: visit order of the streaming round-robin, precomputed because the
#: modulo arithmetic shows up in the per-cycle injection path.
_RR_ORDERS: dict[int, tuple[tuple[int, ...], ...]] = {}


def _rr_orders(vcs: int) -> tuple[tuple[int, ...], ...]:
    orders = _RR_ORDERS.get(vcs)
    if orders is None:
        orders = tuple(
            tuple((start + k) % vcs for k in range(vcs))
            for start in range(vcs)
        )
        _RR_ORDERS[vcs] = orders
    return orders


class _StreamSlot:
    """A packet mid-injection on one (subnet, VC) pair."""

    __slots__ = ("packet", "flits", "index", "vc")

    def __init__(self, packet: Packet, flits: list[Flit], vc: int) -> None:
        self.packet = packet
        self.flits = flits
        self.index = 0
        self.vc = vc


class NetworkInterface:
    """Injection/ejection endpoint shared by the tiles of one node."""

    def __init__(
        self,
        node: int,
        config: NocConfig,
        subnets: "list[SubnetNetwork]",
        routing: "XYRouting",
    ) -> None:
        self.node = node
        self.config = config
        self.subnets = subnets
        self.routing = routing
        self.queue: deque[Packet] = deque()
        vcs = config.vcs_per_port
        # _slots[subnet][vc]: packet streaming on that VC (or None).
        self._slots: list[list[_StreamSlot | None]] = [
            [None] * vcs for _ in range(config.num_subnets)
        ]
        self._active_slots = 0
        # _subnet_active[subnet]: active slots on that subnet, so the
        # per-cycle streaming loop touches only subnets with traffic.
        self._subnet_active = [0] * config.num_subnets
        self._credits = [
            [config.flits_per_vc] * vcs for _ in range(config.num_subnets)
        ]
        self._stream_rr = [0] * config.num_subnets
        self._stream_orders = _rr_orders(vcs)
        for subnet, network in enumerate(subnets):
            network.routers[node].credit_sinks[Port.LOCAL] = (
                self._make_credit_sink(subnet)
            )
        self.policy: "SubnetSelectionPolicy | None" = None
        self.gating: "PowerGatingController | None" = None
        #: callable(packet, cycle) invoked when a packet fully arrives.
        self.packet_sink: Callable[[Packet, int], None] | None = None
        self._queue_flits = 0
        self._ir_alpha = 1.0 / config.congestion.injection_rate_window
        self._ir_rate = 0.0
        self._ir_rate_subnet = [0.0] * config.num_subnets
        self._assigned_this_cycle = 0
        self._assigned_subnet = -1
        #: Packets injected per subnet (Figure 12b utilization).
        self.injected_per_subnet = [0] * config.num_subnets

    def _make_credit_sink(self, subnet: int) -> Callable[[int], None]:
        credits = self._credits[subnet]

        def sink(vc: int) -> None:
            credits[vc] += 1

        return sink

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def offer(self, packet: Packet, cycle: int) -> None:
        """Enqueue an outbound packet from a tile.

        ``packet.num_flits`` is fixed here: the flit count depends only
        on the (uniform) subnet width.
        """
        packet.created_cycle = cycle
        packet.num_flits = self.config.flits_per_packet(packet.size_bits)
        self.queue.append(packet)
        self._queue_flits += packet.num_flits

    def queue_occupancy_flits(self) -> int:
        """Flits waiting at this NI (queued + unsent parts of streams)."""
        return self._queue_flits

    @property
    def queue_depth_packets(self) -> int:
        """Packets waiting in the NI queue (excludes streaming slots)."""
        return len(self.queue)

    @property
    def active_streams(self) -> int:
        """Packets currently streaming flits on some (subnet, VC)."""
        return self._active_slots

    def injection_rate(self) -> float:
        """Windowed average injection rate in packets/cycle (IR metric)."""
        return self._ir_rate

    def subnet_injection_rate(self, subnet: int) -> float:
        """Windowed injection rate of this node into one subnet.

        This is the signal the IR congestion metric thresholds: a
        subnet reads congested at this node once the node pushes more
        than the threshold rate into it.
        """
        return self._ir_rate_subnet[subnet]

    # ------------------------------------------------------------------
    # Per-cycle evaluation
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Assign the head packet to a subnet and stream all subnets."""
        if not self.queue and not self._active_slots:
            # Fast path for idle NIs: only the injection-rate averages
            # need decaying, and only while they are still meaningful.
            if self._ir_rate > 1e-9:
                alpha = self._ir_alpha
                self._ir_rate -= alpha * self._ir_rate
                rates = self._ir_rate_subnet
                for subnet in range(len(rates)):
                    rates[subnet] -= alpha * rates[subnet]
            return
        sent = 0
        if self._active_slots:
            active = self._subnet_active
            for subnet in range(len(active)):
                # A subnet with no active slot is a no-op in
                # _stream_subnet; skipping the call is identical.
                if active[subnet] and self._stream_subnet(subnet, cycle):
                    sent |= 1 << subnet
        # Assign after streaming so a VC whose tail left this cycle can
        # take the next packet back-to-back — but never two flits into
        # the same subnet in one cycle.
        fresh = self._assign_head(cycle)
        if fresh >= 0 and not sent & (1 << fresh):
            self._stream_subnet(fresh, cycle)
        alpha = self._ir_alpha
        self._ir_rate += alpha * (self._assigned_this_cycle - self._ir_rate)
        rates = self._ir_rate_subnet
        assigned = self._assigned_subnet
        for subnet in range(len(rates)):
            hit = 1.0 if subnet == assigned else 0.0
            rates[subnet] += alpha * (hit - rates[subnet])
        self._assigned_this_cycle = 0
        self._assigned_subnet = -1

    def _assign_head(self, cycle: int) -> int:
        """Assign the head packet to a subnet; return it (or -1)."""
        if not self.queue:
            return -1
        if self.policy is None:
            raise RuntimeError("NI has no selection policy")
        packet = self.queue[0]
        subnet = self.policy.select(self.node, cycle, packet)
        slots = self._slots[subnet]
        vc = -1
        for candidate in vc_candidates(
            packet.message_class, self.config.vcs_per_port
        ):
            if slots[candidate] is None:
                vc = candidate
                break
        if vc < 0:
            return -1
        self.queue.popleft()
        packet.subnet = subnet
        last = packet.num_flits - 1
        flits = [
            Flit(packet, i == 0, i == last, i)
            for i in range(packet.num_flits)
        ]
        slots[vc] = _StreamSlot(packet, flits, vc)
        self._active_slots += 1
        self._subnet_active[subnet] += 1
        self._assigned_this_cycle += 1
        self._assigned_subnet = subnet
        self.injected_per_subnet[subnet] += 1
        return subnet

    def _stream_subnet(self, subnet: int, cycle: int) -> bool:
        """Send at most one flit into ``subnet``; True when one left.

        Active VC slots share the NI-to-router link round-robin.
        """
        slots = self._slots[subnet]
        vcs = len(slots)
        network = self.subnets[subnet]
        router = network.routers[self.node]
        router_asleep = router.power_state != PowerState.ACTIVE
        woke = False
        credits = self._credits[subnet]
        for vc in self._stream_orders[self._stream_rr[subnet]]:
            slot = slots[vc]
            if slot is None:
                continue
            if router_asleep:
                if not woke and self.gating is not None:
                    self.gating.request_wakeup(router)
                    woke = True
                continue
            if credits[vc] <= 0:
                continue
            flit = slot.flits[slot.index]
            credits[vc] -= 1
            flit.vc = vc
            flit.route = self.routing.output_port(
                self.node, flit.packet.dst
            )
            if flit.is_head:
                slot.packet.injected_cycle = cycle
            network.inject(flit, self.node, vc, cycle)
            self._queue_flits -= 1
            slot.index += 1
            if flit.is_tail:
                slots[vc] = None
                self._active_slots -= 1
                self._subnet_active[subnet] -= 1
            self._stream_rr[subnet] = (vc + 1) % vcs
            return True
        return False

    # ------------------------------------------------------------------
    # Sink side
    # ------------------------------------------------------------------
    def receive_flit(self, flit: Flit, subnet: int, cycle: int) -> None:
        """Accept an ejected flit; complete the packet on its tail."""
        if flit.is_tail:
            packet = flit.packet
            packet.received_cycle = cycle
            if self.packet_sink is not None:
                self.packet_sink(packet, cycle)
