"""Two-stage speculative virtual-channel router.

Models the paper's router microarchitecture (§2.1, §4.1): five ports
(four neighbours + local NI), input-buffered with credit-based VC flow
control, wormhole switching, look-ahead X-Y routing, and a separable
round-robin switch allocator.  The two pipeline stages plus one link
cycle give the 3-cycle per-hop latency used throughout.

Power-gating hooks: a router exposes a coarse power state
(ACTIVE/SLEEP/WAKEUP) managed by a gating controller; a non-active
router accepts no flits, and upstream routers issue look-ahead wakeup
requests when a head flit targets a sleeping next hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.noc.buffers import InputPort, vc_candidates
from repro.noc.flit import Flit
from repro.noc.topology import Port

if TYPE_CHECKING:
    from repro.noc.network import SubnetNetwork

__all__ = ["PowerState", "Router"]


class PowerState:
    """Coarse router power states (paper §3.1)."""

    ACTIVE = 0
    SLEEP = 1
    WAKEUP = 2

    NAMES = ("active", "sleep", "wakeup")


class Router:
    """One router of one subnet.

    The router does not decide its own power transitions; a gating
    controller (see :mod:`repro.core.gating`) drives ``power_state``
    through :meth:`can_sleep`-style queries and the network step loop.
    """

    __slots__ = (
        "node",
        "subnet",
        "network",
        "ports",
        "credits",
        "out_owner",
        "neighbor_router",
        "neighbor_node",
        "credit_sinks",
        "vcs_per_port",
        "flits_per_vc",
        "buffered_flits",
        "expected_arrivals",
        "power_state",
        "idle_cycles",
        "track_blocking",
        "blocked_accum",
        "moved_accum",
        "_rr",
        "_vc_rr",
        "_scan",
        "_route_table",
        "_route_nodes",
    )

    def __init__(
        self,
        node: int,
        subnet: int,
        vcs_per_port: int,
        flits_per_vc: int,
    ) -> None:
        self.node = node
        self.subnet = subnet
        self.network: SubnetNetwork | None = None
        self.vcs_per_port = vcs_per_port
        self.flits_per_vc = flits_per_vc
        self.ports = [
            InputPort(vcs_per_port, flits_per_vc) for _ in range(Port.COUNT)
        ]
        # credits[out_port][vc]: free downstream buffer slots.
        self.credits = [
            [flits_per_vc] * vcs_per_port for _ in range(Port.COUNT)
        ]
        # out_owner[out_port][vc]: output VC currently held by a packet.
        self.out_owner = [
            [False] * vcs_per_port for _ in range(Port.COUNT)
        ]
        # Downstream router object per output port (None at mesh edges
        # and for LOCAL, which ejects to the NI).
        self.neighbor_router: list[Router | None] = [None] * Port.COUNT
        self.neighbor_node: list[int] = [-1] * Port.COUNT
        # credit_sinks[in_port]: callable(vc) crediting the sender that
        # feeds this input port (upstream router or the local NI).
        self.credit_sinks: list[Callable[[int], None] | None] = (
            [None] * Port.COUNT
        )
        self.buffered_flits = 0
        self.expected_arrivals = 0
        self.power_state = PowerState.ACTIVE
        self.idle_cycles = 0
        # Blocking-delay counters for the Delay congestion metric; only
        # maintained when track_blocking is set (it costs hot-loop work).
        self.track_blocking = False
        self.blocked_accum = 0
        self.moved_accum = 0
        self._rr = 0
        self._vc_rr = 0
        # Precomputed (in_port, in_bit, in_vc, channel) scan order for
        # the switch allocator; rotated by _rr each cycle for fairness.
        # Built lazily on the first step: the skip backend never reads
        # it, and 40 tuples per router add up at construction time.
        self._scan: list[tuple] | None = None
        # Route table cached from the routing function (set by the
        # owning network) for flat lookups in _lookahead_route.
        self._route_table: list[int] | None = None
        self._route_nodes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(
        self, out_port: int, downstream: "Router", downstream_node: int
    ) -> None:
        """Attach ``downstream`` behind output ``out_port``."""
        self.neighbor_router[out_port] = downstream
        self.neighbor_node[out_port] = downstream_node
        in_port = Port.OPPOSITE[out_port]
        downstream.credit_sinks[in_port] = self._make_credit_sink(out_port)

    def _make_credit_sink(self, out_port: int) -> Callable[[int], None]:
        credits = self.credits[out_port]

        def sink(vc: int) -> None:
            credits[vc] += 1

        return sink

    # ------------------------------------------------------------------
    # Flit arrival
    # ------------------------------------------------------------------
    def deliver(self, in_port: int, vc: int, flit: Flit) -> None:
        """Land an in-flight flit into input buffer ``(in_port, vc)``."""
        self.ports[in_port].push(vc, flit)
        self.buffered_flits += 1
        self.expected_arrivals -= 1
        self.idle_cycles = 0

    # ------------------------------------------------------------------
    # Congestion-metric views
    # ------------------------------------------------------------------
    def max_port_occupancy(self) -> int:
        """BFM input: max flit occupancy over all input ports.

        Written as a plain loop (not ``max`` over a generator): the BFM
        congestion metric polls this for every busy (node, subnet) pair
        every cycle, and the generator frame dominates at that rate.
        """
        best = 0
        for port in self.ports:
            occupancy = port.occupancy
            if occupancy > best:
                best = occupancy
        return best

    def mean_port_occupancy(self) -> float:
        """BFA input: mean flit occupancy over all input ports."""
        return sum(p.occupancy for p in self.ports) / Port.COUNT

    def occupancy_by_port(self) -> tuple[int, ...]:
        """Flit occupancy of each input port, indexed by ``Port``.

        Telemetry samplers poll this for the per-router occupancy
        heatmap; it is a read-only snapshot with no hot-loop cost.
        """
        return tuple(p.occupancy for p in self.ports)

    @property
    def is_drained(self) -> bool:
        """No buffered flits and none in flight toward this router."""
        return self.buffered_flits == 0 and self.expected_arrivals == 0

    def _scan_order(self) -> list[tuple]:
        """The (in_port, in_bit, in_vc, channel) allocator scan order,
        built on first use (also read by the perf router mirror)."""
        scan = self._scan
        if scan is None:
            scan = self._scan = [
                (p, 1 << p, v, self.ports[p].vcs[v])
                for p in range(Port.COUNT)
                for v in range(self.vcs_per_port)
            ]
        return scan

    # ------------------------------------------------------------------
    # Switch allocation + traversal (one cycle)
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Run VC allocation, switch allocation, and traversal.

        Winners are popped from their input VCs and handed to the
        network's delay line (or ejected to the NI); credits flow back
        to the senders.  At most one flit leaves per input port and per
        output port per cycle (crossbar constraint).
        """
        if self.buffered_flits == 0:
            return
        network = self.network
        if network is None:
            raise RuntimeError("router not attached to a network")
        scan = self._scan
        if scan is None:
            scan = self._scan_order()
        total = len(scan)
        offset = self._rr
        self._rr = (offset + 1) % total
        if offset:
            scan = scan[offset:] + scan[:offset]
        used_in = 0
        used_out = 0
        heads_waiting = 0
        moved = 0
        credits = self.credits
        for in_port, in_bit, in_vc, channel in scan:
            fifo = channel.fifo
            if not fifo:
                continue
            heads_waiting += 1
            if used_in & in_bit:
                continue
            flit = fifo[0]
            out_port = flit.route
            out_bit = 1 << out_port
            if used_out & out_bit:
                continue
            if out_port == Port.LOCAL:
                # Ejection: no VC allocation needed, bandwidth one
                # flit/cycle through the local output.
                self._eject(in_port, in_vc, flit, cycle)
                used_in |= in_bit
                used_out |= out_bit
                moved += 1
                continue
            if channel.out_port < 0 and not self._allocate_vc(
                channel, flit, out_port
            ):
                continue
            out_vc = channel.out_vc
            if credits[out_port][out_vc] <= 0:
                continue
            downstream = self.neighbor_router[out_port]
            if downstream is None or downstream.power_state:
                # Sleeping/waking next hop: look-ahead wakeup request.
                if downstream is not None:
                    network.request_wakeup(downstream, self.node)
                continue
            self._forward(
                in_port, in_vc, flit, out_port, out_vc, downstream,
                self._lookahead_route(out_port, flit.packet.dst), cycle,
            )
            used_in |= in_bit
            used_out |= out_bit
            moved += 1
        if self.track_blocking:
            # Blocking proxy for the Delay metric: every head flit that
            # stayed put this cycle accrued one blocked flit-cycle.
            self.blocked_accum += heads_waiting - moved
            self.moved_accum += moved

    def _allocate_vc(self, channel, flit: Flit, out_port: int) -> bool:
        """Try to allocate an output VC for the head flit of ``channel``.

        Returns True on success.  A sleeping downstream router cannot
        grant VCs; the allocator issues a wakeup request instead.
        """
        downstream = self.neighbor_router[out_port]
        if downstream is None:
            raise RuntimeError(
                f"route to missing neighbour at node {self.node} "
                f"port {Port.NAMES[out_port]}"
            )
        if downstream.power_state:
            if self.network is None:
                raise RuntimeError("router not attached to a network")
            self.network.request_wakeup(downstream, self.node)
            return False
        owner = self.out_owner[out_port]
        candidates = vc_candidates(
            flit.packet.message_class, self.vcs_per_port
        )
        start = self._vc_rr
        self._vc_rr = (start + 1) % len(candidates)
        for j in range(len(candidates)):
            vc = candidates[(j + start) % len(candidates)]
            if not owner[vc]:
                owner[vc] = True
                channel.out_port = out_port
                channel.out_vc = vc
                return True
        return False

    def _lookahead_route(self, out_port: int, dst: int) -> int:
        """Output port the flit will take at the downstream router.

        Look-ahead routing (route compute) runs while the flit crosses
        this switch; :mod:`repro.perf` times it as its own pipeline
        stage, so it stays a separate method from :meth:`_forward`.
        """
        table = self._route_table
        if table is not None:
            return table[
                self.neighbor_node[out_port] * self._route_nodes + dst
            ]
        network = self.network
        if network is None:
            raise RuntimeError("router not attached to a network")
        return network.routing.output_port(
            self.neighbor_node[out_port], dst
        )

    def _forward(
        self,
        in_port: int,
        in_vc: int,
        flit: Flit,
        out_port: int,
        out_vc: int,
        downstream: "Router",
        next_route: int,
        cycle: int,
    ) -> None:
        ports = self.ports
        channel = ports[in_port].vcs[in_vc]
        ports[in_port].pop(in_vc)
        self.buffered_flits -= 1
        self.credits[out_port][out_vc] -= 1
        credit_sink = self.credit_sinks[in_port]
        if credit_sink is not None:
            credit_sink(in_vc)
        if flit.is_tail:
            self.out_owner[out_port][out_vc] = False
            channel.release_allocation()
        network = self.network
        if network is None:
            raise RuntimeError("router not attached to a network")
        flit.route = next_route
        flit.vc = out_vc
        downstream.expected_arrivals += 1
        network.send(flit, downstream, Port.OPPOSITE[out_port], out_vc, cycle)

    def _eject(self, in_port: int, in_vc: int, flit: Flit, cycle: int) -> None:
        ports = self.ports
        channel = ports[in_port].vcs[in_vc]
        ports[in_port].pop(in_vc)
        self.buffered_flits -= 1
        credit_sink = self.credit_sinks[in_port]
        if credit_sink is not None:
            credit_sink(in_vc)
        if flit.is_tail and channel.has_allocation:
            channel.release_allocation()
        network = self.network
        if network is None:
            raise RuntimeError("router not attached to a network")
        network.eject(flit, self.node, cycle)
