"""Cycle-level network-on-chip substrate.

Public entry points: :class:`NocConfig` describes a fabric;
:class:`MultiNocFabric` instantiates it; :func:`run_open_loop` drives an
open-loop experiment.
"""

from repro.noc.config import (
    AGGREGATE_WIDTH_BITS_64_CORE,
    AGGREGATE_WIDTH_BITS_256_CORE,
    CONTROL_PACKET_BITS,
    DATA_PACKET_BITS,
    SYNTHETIC_PACKET_BITS,
    CongestionConfig,
    NocConfig,
    PowerGatingConfig,
    RouterTimingConfig,
)
from repro.noc.flit import Flit, MessageClass, Packet
from repro.noc.multinoc import FabricReport, MultiNocFabric
from repro.noc.router import PowerState, Router
from repro.noc.routing import XYRouting
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.noc.stats import NetworkStats
from repro.noc.topology import ConcentratedMesh, Port

__all__ = [
    "AGGREGATE_WIDTH_BITS_64_CORE",
    "AGGREGATE_WIDTH_BITS_256_CORE",
    "CONTROL_PACKET_BITS",
    "DATA_PACKET_BITS",
    "SYNTHETIC_PACKET_BITS",
    "CongestionConfig",
    "NocConfig",
    "PowerGatingConfig",
    "RouterTimingConfig",
    "Flit",
    "MessageClass",
    "Packet",
    "FabricReport",
    "MultiNocFabric",
    "PowerState",
    "Router",
    "XYRouting",
    "SimulationPhases",
    "run_open_loop",
    "NetworkStats",
    "ConcentratedMesh",
    "Port",
]
