"""Cycle-level network-on-chip substrate (paper §2, §4.1, Table 1).

Implements the simulated hardware the paper evaluates: concentrated
meshes of two-stage speculative VC routers with wormhole switching and
credit flow control, composed into a Multi-NoC fabric of narrow
subnets.  Public entry points: :class:`NocConfig` describes a fabric;
:class:`MultiNocFabric` instantiates it; :func:`run_open_loop` drives
an open-loop experiment.
"""

from repro.noc.config import (
    AGGREGATE_WIDTH_BITS_64_CORE,
    AGGREGATE_WIDTH_BITS_256_CORE,
    CONTROL_PACKET_BITS,
    DATA_PACKET_BITS,
    SYNTHETIC_PACKET_BITS,
    CongestionConfig,
    NocConfig,
    PowerGatingConfig,
    RouterTimingConfig,
)
from repro.noc.flit import Flit, MessageClass, Packet
from repro.noc.multinoc import FabricReport, MultiNocFabric
from repro.noc.router import PowerState, Router
from repro.noc.routing import XYRouting
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.noc.stats import NetworkStats
from repro.noc.topology import ConcentratedMesh, Port

__all__ = [
    "AGGREGATE_WIDTH_BITS_64_CORE",
    "AGGREGATE_WIDTH_BITS_256_CORE",
    "CONTROL_PACKET_BITS",
    "DATA_PACKET_BITS",
    "SYNTHETIC_PACKET_BITS",
    "CongestionConfig",
    "NocConfig",
    "PowerGatingConfig",
    "RouterTimingConfig",
    "Flit",
    "MessageClass",
    "Packet",
    "FabricReport",
    "MultiNocFabric",
    "PowerState",
    "Router",
    "XYRouting",
    "SimulationPhases",
    "run_open_loop",
    "NetworkStats",
    "ConcentratedMesh",
    "Port",
]
