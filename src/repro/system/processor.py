"""Closed-loop 256-core processor simulation (paper Table 1).

``Processor`` couples the event-driven cores, the MESI directory
engine, the memory controllers, and the cycle-level NoC fabric into the
closed loop the paper simulates: cores issue misses at their
benchmark's MPKI, every miss becomes coherence traffic through the
network, and cores stall when their window fills behind outstanding
misses — so network congestion feeds back into core performance.

System performance is the aggregate IPC, normalized by experiments to
the 1NT-512b no-power-gating baseline ("Normalized System
Performance" in Figures 2 and 8).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.noc.config import NocConfig
from repro.noc.multinoc import FabricReport, MultiNocFabric
from repro.system.coherence import (
    CoherenceEngine,
    CoherenceParams,
    Transaction,
)
from repro.system.core import CoreModel
from repro.system.memory import MemorySystem
from repro.system.workloads import WorkloadSpec, workload

__all__ = ["Processor", "SystemResult"]


@dataclass
class SystemResult:
    """Outcome of one closed-loop processor run."""

    config_name: str
    workload_name: str
    cycles: int
    aggregate_ipc: float
    avg_miss_latency: float
    transactions_completed: int
    control_fraction: float
    fabric_report: FabricReport

    @property
    def total_instructions(self) -> float:
        """Instructions retired across all cores."""
        return self.aggregate_ipc * self.cycles


class Processor:
    """A many-core processor driving one NoC fabric configuration."""

    def __init__(
        self,
        config: NocConfig,
        spec: WorkloadSpec | str,
        seed: int = 3,
        params: CoherenceParams | None = None,
        mlp_limit: int = 16,
        issue_width: int = 2,
    ) -> None:
        if isinstance(spec, str):
            spec = workload(spec, config.num_cores)
        if spec.num_cores != config.num_cores:
            raise ValueError(
                f"workload has {spec.num_cores} cores but the fabric "
                f"serves {config.num_cores}"
            )
        self.config = config
        self.spec = spec
        self.fabric = MultiNocFabric(config, seed=seed)
        self.memory = MemorySystem(self.fabric.mesh)
        self.params = params or CoherenceParams()
        self.engine = CoherenceEngine(
            self.fabric,
            self.memory,
            self.params,
            self._on_transaction_complete,
            seed=seed,
        )
        self.cores = [
            CoreModel(
                core_id,
                spec.core_mpki(core_id),
                mlp_limit=mlp_limit,
                issue_width=issue_width,
                seed=seed,
            )
            for core_id in range(spec.num_cores)
        ]
        self._miss_heap: list[tuple[int, int]] = [
            (core.next_miss_cycle, core.core_id) for core in self.cores
        ]
        heapq.heapify(self._miss_heap)
        # Window-fill checks: (cycle, core_id); lazily revalidated.
        self._stall_heap: list[tuple[int, int]] = []
        self._miss_latency_sum = 0
        self._miss_latency_samples = 0
        self.cycles_run = 0

    # ------------------------------------------------------------------
    # Closed-loop callbacks
    # ------------------------------------------------------------------
    def _on_transaction_complete(self, txn: Transaction, cycle: int) -> None:
        core = self.cores[txn.core_id]
        resumed = core.complete(txn.token, cycle)
        self._miss_latency_sum += cycle - txn.start_cycle
        self._miss_latency_samples += 1
        if resumed:
            heapq.heappush(
                self._miss_heap, (core.next_miss_cycle, core.core_id)
            )
        if not core.is_blocked:
            # The window-fill deadline moved to the new oldest miss.
            self._schedule_stall_check(core)

    def _schedule_stall_check(self, core) -> None:
        check = core.stall_check_cycle()
        if check is not None:
            heapq.heappush(self._stall_heap, (check, core.core_id))

    def _fire_due_misses(self, cycle: int) -> None:
        stall_heap = self._stall_heap
        cores = self.cores
        while stall_heap and stall_heap[0][0] <= cycle:
            _, core_id = heapq.heappop(stall_heap)
            core = cores[core_id]
            core.check_stall(cycle)
            if not core.is_blocked:
                # Stale check (the blocking miss completed in time);
                # re-arm for the current oldest miss, if any.
                check = core.stall_check_cycle()
                if check is not None and check > cycle:
                    heapq.heappush(stall_heap, (check, core_id))
        heap = self._miss_heap
        while heap and heap[0][0] <= cycle:
            due, core_id = heapq.heappop(heap)
            core = cores[core_id]
            # Lazy invalidation: skip stale entries (the core rescheduled
            # or is currently stalled).
            if core.is_blocked or core.next_miss_cycle != due:
                continue
            token = core.issue_miss(cycle)
            txn = Transaction(
                core_id=core_id,
                node=self.fabric.mesh.tile_node(core_id),
                start_cycle=cycle,
                token=token,
            )
            self.engine.start_transaction(txn, cycle)
            if not core.is_blocked:
                heapq.heappush(heap, (core.next_miss_cycle, core_id))
            self._schedule_stall_check(core)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> SystemResult:
        """Simulate ``cycles`` processor cycles and return the result."""
        fabric = self.fabric
        engine = self.engine
        fabric.stats.begin_measurement(fabric.cycle)
        end = fabric.cycle + cycles
        while fabric.cycle < end:
            cycle = fabric.cycle
            engine.process_due(cycle)
            self._fire_due_misses(cycle)
            fabric.step()
        fabric.stats.end_measurement(fabric.cycle)
        self.cycles_run += cycles
        for core in self.cores:
            core.finalize(fabric.cycle)
        total_ipc = sum(
            core.ipc(self.cycles_run) for core in self.cores
        )
        avg_miss_latency = (
            self._miss_latency_sum / self._miss_latency_samples
            if self._miss_latency_samples
            else 0.0
        )
        return SystemResult(
            config_name=self.config.name,
            workload_name=self.spec.name,
            cycles=self.cycles_run,
            aggregate_ipc=total_ipc,
            avg_miss_latency=avg_miss_latency,
            transactions_completed=engine.transactions_completed,
            control_fraction=engine.control_fraction,
            fabric_report=fabric.report(),
        )
