"""Multiprogrammed workloads (paper Table 3).

The paper builds four 256-core workloads from 32 instances each of
eight benchmarks, characterized by the per-core average MPKI (L1-MPKI +
L2-MPKI).  We reproduce the exact mixes; per-benchmark MPKI values are
assigned so every mix averages to the paper's reported value (3.9 /
7.8 / 11.7 / 39.0) while staying plausible for the benchmark (mcf and
the commercial workloads the highest, gromacs/deal the lowest).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BENCHMARK_MPKI",
    "WORKLOAD_MIXES",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "workload",
]

#: Misses per kilo-instruction (L1 + L2) per benchmark.  Chosen so the
#: Table 3 mixes average exactly to the paper's reported MPKI.
BENCHMARK_MPKI: dict[str, float] = {
    "applu": 4.0,
    "gromacs": 1.5,
    "deal": 2.5,
    "hmmer": 2.0,
    "calculix": 2.5,
    "gcc": 6.0,
    "sjeng": 5.0,
    "wrf": 7.7,
    "gobmk": 9.0,
    "h264ref": 6.2,
    "sphinx": 29.0,
    "cactus": 25.0,
    "namd": 5.1,
    "sjas": 50.0,
    "astar": 45.0,
    "mcf": 95.0,
    "tonto": 8.5,
    "tpcw": 80.0,
}

#: Table 3: eight benchmarks per mix, 32 instances each (256 cores).
WORKLOAD_MIXES: dict[str, tuple[str, ...]] = {
    "Light": (
        "applu", "gromacs", "deal", "hmmer",
        "calculix", "gcc", "sjeng", "wrf",
    ),
    "Medium-Light": (
        "gromacs", "deal", "gobmk", "wrf",
        "h264ref", "sphinx", "applu", "calculix",
    ),
    "Medium-Heavy": (
        "cactus", "deal", "calculix", "hmmer",
        "namd", "sjas", "gromacs", "sjeng",
    ),
    "Heavy": (
        "sjas", "astar", "mcf", "sphinx",
        "tonto", "tpcw", "deal", "hmmer",
    ),
}

WORKLOAD_NAMES = tuple(WORKLOAD_MIXES)


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully resolved multiprogrammed workload."""

    name: str
    benchmarks: tuple[str, ...]
    num_cores: int

    @property
    def instances_per_benchmark(self) -> int:
        """Copies of each benchmark in the mix."""
        return self.num_cores // len(self.benchmarks)

    def core_benchmark(self, core: int) -> str:
        """Benchmark assigned to ``core`` (blocks of consecutive cores,
        so whole nodes run one application — the spatially non-uniform
        case Catnap's regional detection targets)."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        return self.benchmarks[core // self.instances_per_benchmark]

    def core_mpki(self, core: int) -> float:
        """MPKI of the benchmark running on ``core``."""
        return BENCHMARK_MPKI[self.core_benchmark(core)]

    @property
    def average_mpki(self) -> float:
        """Mean per-core MPKI of the mix (Table 3's last column)."""
        return sum(
            BENCHMARK_MPKI[name] for name in self.benchmarks
        ) / len(self.benchmarks)


def workload(name: str, num_cores: int = 256) -> WorkloadSpec:
    """Resolve a Table 3 workload by name."""
    if name not in WORKLOAD_MIXES:
        raise ValueError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        )
    benchmarks = WORKLOAD_MIXES[name]
    if num_cores % len(benchmarks):
        raise ValueError("num_cores must divide evenly among benchmarks")
    return WorkloadSpec(name, benchmarks, num_cores)
