"""Cache hierarchy configuration (paper Table 1).

The reproduction drives the network from MPKI-parameterized miss
streams rather than an address-accurate cache simulation (the paper's
own traces are not available — see DESIGN.md).  This module keeps the
Table 1 hierarchy as an explicit record and derives the coherence-engine
parameters from it, so experiments that want to vary cache behaviour
have one obvious place to do it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.coherence import CoherenceParams

__all__ = ["CacheConfig", "TABLE1_CACHES"]


@dataclass(frozen=True)
class CacheConfig:
    """L1/L2 organization of one tile (Table 1)."""

    l1_size_kb: int = 32
    l1_ways: int = 4
    l1_latency: int = 2
    l1_mshrs: int = 32
    l2_size_kb: int = 256
    l2_ways: int = 16
    l2_latency: int = 6
    l2_mshrs: int = 32
    block_bytes: int = 64
    #: Fraction of L1 misses that hit in the shared L2.
    l2_hit_rate: float = 0.80
    #: Fraction of L2 hits owned dirty by a remote L1 (4-hop path).
    forward_fraction: float = 0.20
    #: Fraction of transactions that invalidate a sharer.
    invalidate_fraction: float = 0.20
    #: Fraction of misses that evict a dirty block.
    writeback_fraction: float = 0.30

    def coherence_params(self) -> CoherenceParams:
        """Parameters for the directory engine implied by this config."""
        return CoherenceParams(
            l2_hit_rate=self.l2_hit_rate,
            forward_fraction=self.forward_fraction,
            invalidate_fraction=self.invalidate_fraction,
            writeback_fraction=self.writeback_fraction,
            l2_latency=self.l2_latency,
            l1_latency=self.l1_latency,
        )


#: The exact hierarchy of Table 1.
TABLE1_CACHES = CacheConfig()
