"""Memory controllers and DRAM timing (paper Table 1).

Eight on-chip memory controllers sit on the top and bottom rows of the
mesh.  Each controller serves 64-byte lines at 16 GB/s (one line every
8 cycles at 2 GHz) with an 80-cycle DRAM access latency; requests queue
FIFO when they arrive faster than the service rate.
"""

from __future__ import annotations

from repro.noc.topology import ConcentratedMesh
from repro.util.validation import check_positive

__all__ = ["MemoryController", "place_memory_controllers", "MemorySystem"]

#: DRAM access latency in router cycles (Table 1: 80 cycles).
DRAM_LATENCY_CYCLES = 80

#: Cycles between line completions at 16 GB/s, 64-byte lines, 2 GHz.
SERVICE_INTERVAL_CYCLES = 8


class MemoryController:
    """One DDR channel group: fixed latency plus FIFO queueing."""

    def __init__(
        self,
        node: int,
        dram_latency: int = DRAM_LATENCY_CYCLES,
        service_interval: int = SERVICE_INTERVAL_CYCLES,
    ) -> None:
        check_positive("dram_latency", dram_latency)
        check_positive("service_interval", service_interval)
        self.node = node
        self.dram_latency = dram_latency
        self.service_interval = service_interval
        self._next_free = 0
        self.requests_served = 0

    def access(self, cycle: int) -> int:
        """Enqueue a line read arriving at ``cycle``.

        Returns the cycle at which the data is ready to be sent back.
        """
        start = max(cycle, self._next_free)
        self._next_free = start + self.service_interval
        self.requests_served += 1
        return start + self.dram_latency

    @property
    def queue_delay(self) -> int:
        """Current backlog, in cycles until a new request starts."""
        return max(0, self._next_free)


def place_memory_controllers(
    mesh: ConcentratedMesh, count: int = 8
) -> list[int]:
    """Node positions for ``count`` MCs on the top and bottom rows.

    MCs are spread evenly across the top row first, then the bottom row
    (matching the edge placement in the paper's Figure 1).
    """
    check_positive("count", count)
    per_row = -(-count // 2)
    nodes = []
    for row in (0, mesh.rows - 1):
        remaining = count - len(nodes)
        if remaining <= 0:
            break
        slots = min(per_row, remaining)
        for i in range(slots):
            x = round((i + 0.5) * mesh.cols / slots - 0.5)
            nodes.append(mesh.node_at(min(x, mesh.cols - 1), row))
    return nodes


class MemorySystem:
    """All memory controllers of the processor."""

    def __init__(self, mesh: ConcentratedMesh, count: int = 8) -> None:
        self.controllers = [
            MemoryController(node)
            for node in place_memory_controllers(mesh, count)
        ]

    def controller_for(self, address_hash: int) -> MemoryController:
        """Controller owning an address (uniform interleaving)."""
        return self.controllers[address_hash % len(self.controllers)]

    @property
    def nodes(self) -> list[int]:
        """Mesh nodes hosting a memory controller."""
        return [mc.node for mc in self.controllers]
