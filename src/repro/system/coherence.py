"""4-hop MESI directory protocol message generation (paper §4.1).

Every L1 miss becomes a directory transaction at the home L2 slice:

* **request** — 1-flit control packet, requestor -> home.
* **L2 hit, clean** — home replies with a data packet (64 B + 72 b
  header) after the 6-cycle bank latency.
* **L2 hit, owned remotely** — home forwards a control packet to the
  owner, which sends the data to the requestor (the 4-hop path).
* **L2 miss** — home forwards a control packet to the line's memory
  controller; DRAM access (80 cycles + channel queueing) and the data
  returns directly to the requestor.
* **invalidations** — a fraction of transactions send an invalidate to
  a sharer, which acknowledges to the requestor (control traffic that
  loads the network but does not gate completion — a simplification
  recorded in DESIGN.md).
* **writebacks** — a fraction of misses evict a dirty line: a
  fire-and-forget data packet to the home node.

Message classes map onto disjoint virtual channels (request / forward /
response), preserving protocol-level deadlock freedom as in the paper.
The resulting packet mix is ~60 % single-flit control packets, matching
the paper's reported workload composition.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.noc.config import CONTROL_PACKET_BITS, DATA_PACKET_BITS
from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.system.memory import MemorySystem
from repro.util.rng import DeterministicRng

__all__ = ["CoherenceParams", "Transaction", "CoherenceEngine"]


@dataclass(frozen=True)
class CoherenceParams:
    """Protocol behaviour probabilities and latencies."""

    l2_hit_rate: float = 0.80
    forward_fraction: float = 0.20
    invalidate_fraction: float = 0.20
    writeback_fraction: float = 0.30
    l2_latency: int = 6
    l1_latency: int = 2

    def __post_init__(self) -> None:
        for name in (
            "l2_hit_rate",
            "forward_fraction",
            "invalidate_fraction",
            "writeback_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")


@dataclass
class Transaction:
    """One outstanding L1 miss."""

    core_id: int
    node: int
    start_cycle: int
    #: Core-local miss token (see :meth:`CoreModel.issue_miss`).
    token: int = -1
    complete_cycle: int = -1


class CoherenceEngine:
    """Generates and sinks all coherence messages for the processor."""

    def __init__(
        self,
        fabric: MultiNocFabric,
        memory: MemorySystem,
        params: CoherenceParams,
        on_complete: Callable[[Transaction, int], None],
        seed: int = 23,
    ) -> None:
        self.fabric = fabric
        self.memory = memory
        self.params = params
        self.on_complete = on_complete
        self.rng = DeterministicRng(seed, "coherence")
        self._events: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        self.transactions_started = 0
        self.transactions_completed = 0
        self.control_packets = 0
        self.data_packets = 0
        fabric.packet_sink = self._on_packet

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule(
        self, cycle: int, action: Callable[[int], None]
    ) -> None:
        heapq.heappush(self._events, (cycle, self._seq, action))
        self._seq += 1

    def process_due(self, cycle: int) -> None:
        """Run every scheduled action due at or before ``cycle``."""
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, action = heapq.heappop(events)
            action(cycle)

    def _send(
        self,
        src: int,
        dst: int,
        size_bits: int,
        message_class: int,
        handler: Callable[[int], None] | None,
    ) -> None:
        if size_bits > CONTROL_PACKET_BITS:
            self.data_packets += 1
        else:
            self.control_packets += 1
        self.fabric.offer(
            Packet(
                src=src,
                dst=dst,
                size_bits=size_bits,
                message_class=message_class,
                payload=handler,
            )
        )

    def _on_packet(self, packet: Packet, cycle: int) -> None:
        handler = packet.payload
        if handler is not None:
            handler(cycle)

    # ------------------------------------------------------------------
    # Transaction flow
    # ------------------------------------------------------------------
    def start_transaction(self, txn: Transaction, cycle: int) -> None:
        """Begin the directory transaction for an L1 miss."""
        self.transactions_started += 1
        rng = self.rng
        home = rng.randrange(self.fabric.mesh.num_nodes)
        if rng.random() < self.params.writeback_fraction:
            # Dirty eviction accompanying the miss (fire-and-forget).
            wb_home = rng.randrange(self.fabric.mesh.num_nodes)
            if wb_home != txn.node:
                self._send(
                    txn.node,
                    wb_home,
                    DATA_PACKET_BITS,
                    MessageClass.RESPONSE,
                    None,
                )
        if home == txn.node:
            self._schedule(
                cycle + self.params.l2_latency,
                lambda c, t=txn, h=home: self._at_directory(t, h, c),
            )
            return
        self._send(
            txn.node,
            home,
            CONTROL_PACKET_BITS,
            MessageClass.REQUEST,
            lambda c, t=txn, h=home: self._schedule(
                c + self.params.l2_latency,
                lambda c2: self._at_directory(t, h, c2),
            ),
        )

    def _at_directory(self, txn: Transaction, home: int, cycle: int) -> None:
        rng = self.rng
        params = self.params
        if rng.random() < params.invalidate_fraction:
            self._send_invalidate(txn, home)
        if rng.random() < params.l2_hit_rate:
            if rng.random() < params.forward_fraction:
                self._forward_to_owner(txn, home)
            else:
                self._reply_data(txn, home)
        else:
            self._go_to_memory(txn, home, cycle)

    def _reply_data(self, txn: Transaction, home: int) -> None:
        if home == txn.node:
            # Local L2 hit: no network round trip.
            self._schedule(
                self.fabric.cycle + 1,
                lambda c, t=txn: self._complete(t, c),
            )
            return
        self._send(
            home,
            txn.node,
            DATA_PACKET_BITS,
            MessageClass.RESPONSE,
            lambda c, t=txn: self._complete(t, c),
        )

    def _forward_to_owner(self, txn: Transaction, home: int) -> None:
        owner = self.rng.randrange(self.fabric.mesh.num_nodes)
        if owner in (home, txn.node):
            self._reply_data(txn, home)
            return
        self._send(
            home,
            owner,
            CONTROL_PACKET_BITS,
            MessageClass.FORWARD,
            lambda c, t=txn, o=owner: self._schedule(
                c + self.params.l1_latency,
                lambda c2: self._owner_reply(t, o, c2),
            ),
        )

    def _owner_reply(self, txn: Transaction, owner: int, cycle: int) -> None:
        self._send(
            owner,
            txn.node,
            DATA_PACKET_BITS,
            MessageClass.RESPONSE,
            lambda c, t=txn: self._complete(t, c),
        )

    def _go_to_memory(self, txn: Transaction, home: int, cycle: int) -> None:
        mc = self.memory.controller_for(self.rng.getrandbits(30))
        if mc.node == home:
            ready = mc.access(cycle)
            self._schedule(
                ready, lambda c, t=txn, m=mc: self._memory_reply(t, m, c)
            )
            return
        self._send(
            home,
            mc.node,
            CONTROL_PACKET_BITS,
            MessageClass.FORWARD,
            lambda c, t=txn, m=mc: self._schedule(
                m.access(c),
                lambda c2: self._memory_reply(t, m, c2),
            ),
        )

    def _memory_reply(self, txn: Transaction, mc, cycle: int) -> None:
        if mc.node == txn.node:
            self._complete(txn, cycle)
            return
        self._send(
            mc.node,
            txn.node,
            DATA_PACKET_BITS,
            MessageClass.RESPONSE,
            lambda c, t=txn: self._complete(t, c),
        )

    def _send_invalidate(self, txn: Transaction, home: int) -> None:
        sharer = self.rng.randrange(self.fabric.mesh.num_nodes)
        if sharer == home:
            return
        # Invalidate to the sharer; the sharer acks to the requestor.
        # Acks load the network but do not gate completion (DESIGN.md).
        def ack(cycle: int, s: int = sharer) -> None:
            if s != txn.node:
                self._send(
                    s,
                    txn.node,
                    CONTROL_PACKET_BITS,
                    MessageClass.RESPONSE,
                    None,
                )

        self._send(
            home, sharer, CONTROL_PACKET_BITS, MessageClass.FORWARD, ack
        )

    def _complete(self, txn: Transaction, cycle: int) -> None:
        txn.complete_cycle = cycle
        self.transactions_completed += 1
        self.on_complete(txn, cycle)

    # ------------------------------------------------------------------
    @property
    def control_fraction(self) -> float:
        """Fraction of generated packets that are single-flit control."""
        total = self.control_packets + self.data_packets
        return self.control_packets / total if total else 0.0
