"""Event-driven processor core model.

Each core retires ``issue_width`` instructions per cycle while running
(Table 1: 2-wide fetch/issue/commit) and generates an L1 miss every
~``1000 / MPKI`` instructions (geometric gaps).  Two
mechanisms stall a core, modelling the paper's 64-entry, 2-wide cores:

* **Window fill** — retirement is in-order, so once the *oldest*
  outstanding miss is older than ``window_slack`` cycles (the time the
  64-entry window takes to fill behind it at 2-wide issue), the core
  stalls until that miss returns.  This is what makes performance
  sensitive to network latency even at low miss rates.
* **MLP limit** — at most ``mlp_limit`` misses overlap (MSHR/window
  occupancy); issuing the limit-filling miss stalls the core.

Cores are event-driven: misses and stall checks are scheduled by the
processor, so simulation cost scales with misses, not cores x cycles.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRng
from repro.util.validation import check_positive

__all__ = ["CoreModel"]


class CoreModel:
    """One processor core parameterized by its benchmark's MPKI."""

    __slots__ = (
        "core_id",
        "mpki",
        "mlp_limit",
        "window_slack",
        "issue_width",
        "outstanding",
        "blocked_since",
        "blocked_cycles",
        "misses_issued",
        "misses_completed",
        "next_miss_cycle",
        "_next_token",
        "_mean_gap",
        "_rng",
    )

    def __init__(
        self,
        core_id: int,
        mpki: float,
        mlp_limit: int = 16,
        window_slack: int = 32,
        issue_width: int = 2,
        seed: int = 11,
    ) -> None:
        check_positive("mpki", mpki)
        check_positive("mlp_limit", mlp_limit)
        check_positive("window_slack", window_slack)
        check_positive("issue_width", issue_width)
        self.core_id = core_id
        self.mpki = mpki
        self.mlp_limit = mlp_limit
        self.window_slack = window_slack
        self.issue_width = issue_width
        #: token -> issue cycle of each outstanding miss.
        self.outstanding: dict[int, int] = {}
        self.blocked_since = -1
        self.blocked_cycles = 0
        self.misses_issued = 0
        self.misses_completed = 0
        self._next_token = 0
        self._mean_gap = 1000.0 / mpki
        self._rng = DeterministicRng(seed, f"core/{core_id}")
        self.next_miss_cycle = self._draw_gap()

    def _draw_gap(self) -> int:
        """Cycles until the next miss while running.

        The gap is drawn in instructions and converted to cycles at the
        core's issue width.
        """
        gap = self._rng.expovariate(1.0 / self._mean_gap)
        return max(1, round(gap / self.issue_width))

    @property
    def is_blocked(self) -> bool:
        """True while the core is stalled."""
        return self.blocked_since >= 0

    def _oldest_issue(self) -> int | None:
        if not self.outstanding:
            return None
        return min(self.outstanding.values())

    def _block(self, cycle: int) -> None:
        if not self.is_blocked:
            self.blocked_since = cycle

    def _unblock(self, cycle: int) -> None:
        self.blocked_cycles += cycle - self.blocked_since
        self.blocked_since = -1
        self.next_miss_cycle = cycle + self._draw_gap()

    # ------------------------------------------------------------------
    # Event interface (driven by the processor)
    # ------------------------------------------------------------------
    def miss_due(self, cycle: int) -> bool:
        """Should a miss fire at ``cycle``? (False while blocked.)"""
        return not self.is_blocked and cycle >= self.next_miss_cycle

    def issue_miss(self, cycle: int) -> int:
        """Record a miss issuing at ``cycle``; return its token.

        Blocks the core immediately when the miss fills the MLP limit;
        otherwise the caller should schedule a window-fill check at
        :meth:`stall_check_cycle`.
        """
        token = self._next_token
        self._next_token += 1
        self.outstanding[token] = cycle
        self.misses_issued += 1
        if len(self.outstanding) >= self.mlp_limit:
            self._block(cycle)
        else:
            self.next_miss_cycle = cycle + self._draw_gap()
        return token

    def stall_check_cycle(self) -> int | None:
        """Cycle at which the window would fill behind the oldest miss.

        Returns ``None`` when nothing is outstanding or the core is
        already stalled.
        """
        if self.is_blocked:
            return None
        oldest = self._oldest_issue()
        if oldest is None:
            return None
        return oldest + self.window_slack

    def check_stall(self, cycle: int) -> None:
        """Stall the core if its oldest miss has exceeded the slack."""
        if self.is_blocked:
            return
        oldest = self._oldest_issue()
        if oldest is not None and cycle - oldest >= self.window_slack:
            self._block(cycle)

    def complete(self, token: int, cycle: int) -> bool:
        """A miss finished.  Returns True when the core resumed."""
        issue = self.outstanding.pop(token, None)
        if issue is None:
            raise RuntimeError(
                f"core {self.core_id}: unknown miss token {token}"
            )
        self.misses_completed += 1
        if not self.is_blocked:
            return False
        # Resume only once retirement can proceed: below the MLP limit
        # and no remaining miss already past the window slack.
        if len(self.outstanding) >= self.mlp_limit:
            return False
        oldest = self._oldest_issue()
        if oldest is not None and cycle - oldest >= self.window_slack:
            return False
        self._unblock(cycle)
        return True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finalize(self, cycle: int) -> None:
        """Close an open stall interval at the end of simulation."""
        if self.is_blocked:
            self.blocked_cycles += cycle - self.blocked_since
            self.blocked_since = -1

    def instructions_retired(self, cycles: int) -> int:
        """Instructions retired over ``cycles``.

        The core retires ``issue_width`` instructions per running cycle.
        """
        return self.issue_width * max(0, cycles - self.blocked_cycles)

    def ipc(self, cycles: int) -> float:
        """Instructions per cycle over the run."""
        if cycles <= 0:
            return 0.0
        return self.instructions_retired(cycles) / cycles
