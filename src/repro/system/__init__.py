"""Closed-loop many-core processor substrate."""

from repro.system.cache import TABLE1_CACHES, CacheConfig
from repro.system.coherence import (
    CoherenceEngine,
    CoherenceParams,
    Transaction,
)
from repro.system.core import CoreModel
from repro.system.memory import (
    MemoryController,
    MemorySystem,
    place_memory_controllers,
)
from repro.system.processor import Processor, SystemResult
from repro.system.workloads import (
    BENCHMARK_MPKI,
    WORKLOAD_MIXES,
    WORKLOAD_NAMES,
    WorkloadSpec,
    workload,
)

__all__ = [
    "TABLE1_CACHES",
    "CacheConfig",
    "CoherenceEngine",
    "CoherenceParams",
    "Transaction",
    "CoreModel",
    "MemoryController",
    "MemorySystem",
    "place_memory_controllers",
    "Processor",
    "SystemResult",
    "BENCHMARK_MPKI",
    "WORKLOAD_MIXES",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "workload",
]
