"""Figure 6 — performance of Single-NoC vs Multi-NoC designs.

Bandwidth-equivalent designs with 1, 2, 4, and 8 subnets (1NT-512b …
8NT-64b) under uniform random traffic, no power gating, round-robin
subnet selection: (a) saturation throughput — dropping noticeably
beyond four subnets — and (b) low-load latency — rising with subnet
count through serialization (more flits per packet).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_fig06", "SUBNET_COUNTS"]

SUBNET_COUNTS = (1, 2, 4, 8)

#: Offered load used to probe saturation throughput (packets/node/cyc).
SATURATION_LOAD = 0.45

#: Offered load used to probe zero-load (serialization) latency.
LOW_LOAD = 0.02


def run_fig06(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    subnet_counts: tuple[int, ...] = SUBNET_COUNTS,
) -> ExperimentResult:
    """Regenerate Figure 6 (throughput and latency vs subnet count)."""
    phases = synthetic_phases(scale)
    result = ExperimentResult(
        name="fig06",
        title="Throughput/latency vs number of subnets (uniform random)",
        columns=[
            "config", "num_subnets", "flits_per_packet",
            "saturation_throughput", "low_load_latency",
        ],
        notes=(
            "paper: ~equal throughput up to 4 subnets, loss at 8; "
            "latency rises a few cycles per doubling (serialization)"
        ),
    )
    configs = [
        NocConfig.multi_noc(
            num_subnets=count, selection_policy="round_robin"
        )
        for count in subnet_counts
    ]
    specs = [
        PointSpec.synthetic(config, "uniform", load, phases, seed)
        for config in configs
        for load in (SATURATION_LOAD, LOW_LOAD)
    ]
    rows = run_sweep(specs)
    for i, (count, config) in enumerate(zip(subnet_counts, configs)):
        saturated, low = rows[2 * i], rows[2 * i + 1]
        result.rows.append(
            {
                "config": config.name,
                "num_subnets": count,
                "flits_per_packet": config.flits_per_packet(512),
                "saturation_throughput": saturated["throughput"],
                "low_load_latency": low["latency"],
            }
        )
    return result
