"""Table 2 — voltage and frequency of 512-bit vs 128-bit routers.

Regenerated directly from the fitted 32 nm delay model in
:mod:`repro.power.technology`; reproduces the paper's four operating
points exactly.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import PointSpec, run_sweep

__all__ = ["run_table02"]


def run_table02(scale: float = 1.0) -> ExperimentResult:
    """Regenerate Table 2 (``scale`` accepted for API uniformity)."""
    result = ExperimentResult(
        name="table02",
        title="Router width vs frequency vs voltage (32nm)",
        columns=[
            "design", "router_width_bits", "frequency_ghz", "voltage_v",
            "highlighted",
        ],
        notes="highlighted rows are the evaluated 2 GHz operating points",
    )
    result.rows.extend(run_sweep([PointSpec.table02()]))
    return result
