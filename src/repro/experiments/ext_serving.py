"""Extension: energy proportionality under a serving diurnal curve.

Catnap's pitch is that a multi-NoC's power should track its load.  This
extension measures exactly that under serving-shaped traffic from
:mod:`repro.workloads`: a multi-tenant mix (``REPRO_WORKLOADS``, default
three tenants at 6%/3%/1%) is replayed at every other hour of the
default diurnal load curve, against both the power-gated 4-subnet
multi-NoC and the gated single 512-bit NoC.  Each row reports network
power next to offered load (the energy-proportionality story), the
per-tenant p99 latency (the QoS story: does the light tenant suffer
when the heavy one peaks?), and the per-subnet sleep fraction (the
mechanism: subnets riding the trough asleep).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig
from repro.util import env
from repro.workloads.sources import DEFAULT_DIURNAL_SHAPE
from repro.workloads.spec import DEFAULT_TENANT_MIX, parse_workload_spec

__all__ = ["run_ext_serving", "SERVING_HOURS"]

#: Hours of the diurnal curve sampled by the sweep (every other hour
#: covers the trough, both ramps, and the evening peak in 12 points).
SERVING_HOURS = tuple(range(0, 24, 2))


def _configs() -> list[NocConfig]:
    return [
        NocConfig.multi_noc(4, power_gating=True),
        NocConfig.single_noc_512(power_gating=True),
    ]


def _tenant_p99_cell(tenants: list[dict]) -> str:
    if not tenants:
        return "-"
    return "/".join(f"{entry['latency_p99']:.0f}" for entry in tenants)


def _sleep_cell(fractions: list[float]) -> str:
    if not fractions:
        return "-"
    return "/".join(f"{fraction:.2f}" for fraction in fractions)


def run_ext_serving(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    workload: str | None = None,
) -> ExperimentResult:
    """Energy proportionality vs load over the diurnal serving curve."""
    base_text = (
        workload
        if workload is not None
        else env.text("REPRO_WORKLOADS", DEFAULT_TENANT_MIX)
    )
    base = parse_workload_spec(base_text)
    if base.kind == "trace":
        raise ValueError(
            "ext_serving sweeps a generator workload over the diurnal "
            "curve; trace replays cannot be load-scaled"
        )
    phases = synthetic_phases(scale)
    result = ExperimentResult(
        name="ext_serving",
        title="Energy proportionality under a diurnal serving load",
        columns=[
            "hour", "load_mult", "config", "load", "latency",
            "latency_p99", "tenant_p99", "power_w", "static_w",
            "sleep_frac",
        ],
        notes=(
            f"workload {base.to_text()} scaled by the hour-of-day "
            "multiplier; tenant_p99 and sleep_frac list per-tenant / "
            "per-subnet values"
        ),
    )
    configs = _configs()
    specs = [
        PointSpec.serving(
            config,
            base.scaled(DEFAULT_DIURNAL_SHAPE[hour]).to_text(),
            phases,
            seed,
            hour=hour,
            load_mult=DEFAULT_DIURNAL_SHAPE[hour],
        )
        for hour in SERVING_HOURS
        for config in configs
    ]
    for row in run_sweep(specs):
        row["tenant_p99"] = _tenant_p99_cell(row.get("tenants") or [])
        row["sleep_frac"] = _sleep_cell(row.get("sleep_frac") or [])
        result.rows.append(row)
    return result
