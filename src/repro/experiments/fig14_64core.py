"""Figure 14 — Catnap on a smaller 64-core processor.

A 4x4 concentrated mesh (64 cores, 256-bit aggregate width): 1NT-256b
vs 2NT-128b, both power-gated, under uniform random traffic.  The
paper reports ~50 % CSC for the two-subnet Multi-NoC at a load of 0.03
against ~17 % for the Single-NoC, with the usual latency story — lower
benefits than the 256-core system because only two subnets fit the
bandwidth budget.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_fig14", "DEFAULT_LOADS"]

DEFAULT_LOADS = (0.01, 0.03, 0.07, 0.12, 0.18, 0.25)


def run_fig14(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    loads: tuple[float, ...] = DEFAULT_LOADS,
) -> ExperimentResult:
    """Regenerate Figure 14 (64-core CSC and latency vs load)."""
    phases = synthetic_phases(scale)
    configs = [
        NocConfig.mesh_64_core(num_subnets=1, power_gating=True),
        NocConfig.mesh_64_core(num_subnets=2, power_gating=True),
    ]
    result = ExperimentResult(
        name="fig14",
        title="64-core (4x4 cmesh): CSC and latency vs offered load",
        columns=["config", "load", "csc_pct", "latency", "throughput"],
        notes="paper at load 0.03: 2NT-128b ~50% CSC vs 1NT-256b ~17%",
    )
    specs = [
        PointSpec.synthetic(config, "uniform", load, phases, seed)
        for config in configs
        for load in loads
    ]
    result.rows.extend(run_sweep(specs))
    return result
