"""``python -m repro.experiments`` — the experiment CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
