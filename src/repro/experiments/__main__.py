"""``python -m repro.experiments`` — the experiment runner CLI."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
