"""Command-line entry point: regenerate any paper figure or table.

Usage::

    catnap-experiments --list
    catnap-experiments fig08 --scale 0.5
    catnap-experiments all --scale 0.25 --out results/
    catnap-experiments fig10 --jobs 8 --progress     # parallel sweep
    catnap-experiments fig10 --no-cache              # force re-simulation
    catnap-experiments fig06 --check                 # invariant-checked
    catnap-experiments fig06 --telemetry             # trace + time series
    catnap-experiments fig06 --perf                  # phase profile
    catnap-experiments fig06 --faults rate=0.001     # fault injection
    catnap-experiments fig06 --explain               # latency/energy attribution
    catnap-experiments fig06 --backend skip          # skip-ahead kernel
    catnap-experiments ext_serving --workload llm:batch=8   # serving mix
    catnap-experiments analysis lint                 # static lint passes

Each experiment prints its table to stdout and, with ``--out``, also
writes ``<name>.txt`` into the given directory.  Sweep execution is
delegated to :mod:`repro.experiments.runner`: ``--jobs``/``--no-cache``
/``--cache-dir`` set the corresponding ``REPRO_JOBS`` /
``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR`` environment variables so every
driver (and anything it spawns) sees the same policy.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments import runner
from repro.experiments.ablations import ABLATIONS
from repro.experiments.ext_serving import run_ext_serving
from repro.experiments.ext_specialization import run_ext_class_partition
from repro.experiments.fig02_bandwidth import run_fig02
from repro.experiments.fig06_subnet_scaling import run_fig06
from repro.experiments.fig07_power_breakdown import run_fig07
from repro.experiments.fig08_applications import (
    headline_summary,
    run_fig08,
)
from repro.experiments.fig09_csc import run_fig09
from repro.experiments.fig10_uniform_pg import run_fig10
from repro.experiments.fig11_congestion_metrics import run_fig11
from repro.experiments.fig12_bursty import run_fig12
from repro.experiments.fig13_ir_thresholds import run_fig13
from repro.experiments.fig14_64core import run_fig14
from repro.experiments.table02_voltage import run_table02

__all__ = [
    "EXPERIMENTS",
    "PAPER_EXPERIMENTS",
    "run_experiment",
    "render_experiment",
    "main",
]

EXPERIMENTS = {
    "fig02": run_fig02,
    "table02": run_table02,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "ext_class_partition": run_ext_class_partition,
    "ext_serving": run_ext_serving,
    **ABLATIONS,
}

#: Names run by ``catnap-experiments all`` (the paper's own artifacts);
#: ablations are opt-in by name because they are extensions.
PAPER_EXPERIMENTS = (
    "fig02", "table02", "fig06", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13", "fig14",
)

#: ASCII charts printed after the table: (x, y, group, row filter).
_CHART_SPECS: dict[str, list[tuple[str, str, str, dict]]] = {
    "fig10": [
        ("load", "latency", "config", {}),
        ("load", "csc_pct", "config", {}),
    ],
    "fig11": [
        ("load", "latency", "variant", {"pattern": "uniform"}),
        ("load", "latency", "variant", {"pattern": "transpose"}),
    ],
    "fig13": [
        ("load", "latency", "threshold", {"pattern": "uniform"}),
        ("load", "latency", "threshold", {"pattern": "transpose"}),
    ],
    "fig14": [("load", "csc_pct", "config", {})],
}


#: Columns appended by ``--percentiles`` when every row carries them.
_PERCENTILE_COLUMNS = ("latency_p50", "latency_p95", "latency_p99")


def render_experiment(result, percentiles: bool = False) -> str:
    """Table plus any ASCII charts for one experiment result.

    With ``percentiles``, latency percentile columns are appended to
    the table when the rows carry them; the default rendering is
    byte-identical to the paper tables regardless of what extra keys
    the rows hold (drivers pin their column lists explicitly).
    """
    if (
        percentiles
        and result.columns is not None
        and result.rows
        and all(
            all(key in row for key in _PERCENTILE_COLUMNS)
            for row in result.rows
        )
    ):
        from dataclasses import replace as _replace

        extra = [
            key
            for key in _PERCENTILE_COLUMNS
            if key not in result.columns
        ]
        result = _replace(result, columns=result.columns + extra)
    parts = [result.to_table()]
    for x, y, group, criteria in _CHART_SPECS.get(result.name, []):
        parts.append("")
        parts.append(result.to_chart(x, y, group, **criteria))
    return "\n".join(parts)


def run_experiment(name: str, scale: float = 1.0):
    """Run one experiment by name and return its result."""
    if name not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(EXPERIMENTS)} or 'all'"
        )
    return EXPERIMENTS[name](scale=scale)


class _TallyObserver(runner.SweepObserver):
    """Accumulates hit/miss counts and simulated-work totals across the
    sweeps of one experiment, optionally echoing per-point progress
    lines to stderr and fanning events out to extra observers."""

    def __init__(
        self,
        progress: bool,
        extra: list[runner.SweepObserver] | None = None,
    ):
        self.progress = (
            runner.ProgressObserver() if progress else None
        )
        self.extra = list(extra) if extra else []
        self.reset()

    def reset(self) -> None:
        self.points = 0
        self.hits = 0
        self.misses = 0
        self.sim_cycles = 0
        self.sim_flits = 0
        #: ``SweepStats.to_json()`` of every finished sweep, in order
        #: (across resets — an experiment's whole CLI invocation feeds
        #: one ``--stats-out`` document).
        if not hasattr(self, "sweep_stats"):
            self.sweep_stats: list[dict] = []

    def sweep_context(self, specs, jobs: int, cached: bool) -> None:
        if self.progress:
            self.progress.sweep_context(specs, jobs, cached)
        for observer in self.extra:
            observer.sweep_context(specs, jobs, cached)

    def sweep_started(self, total: int) -> None:
        if self.progress:
            self.progress.sweep_started(total)
        for observer in self.extra:
            observer.sweep_started(total)

    def point_started(self, index, spec) -> None:
        if self.progress:
            self.progress.point_started(index, spec)
        for observer in self.extra:
            observer.point_started(index, spec)

    def worker_heartbeat(
        self, pid: int, cycles: int, flits: int, elapsed: float
    ) -> None:
        if self.progress:
            self.progress.worker_heartbeat(pid, cycles, flits, elapsed)
        for observer in self.extra:
            observer.worker_heartbeat(pid, cycles, flits, elapsed)

    def point_finished(self, index, spec, rows, elapsed, cached) -> None:
        self.points += 1
        if cached:
            self.hits += 1
        else:
            self.misses += 1
        if self.progress:
            self.progress.point_finished(index, spec, rows, elapsed, cached)
        for observer in self.extra:
            observer.point_finished(index, spec, rows, elapsed, cached)

    def point_failed(self, index, spec, error) -> None:
        # Always loud, even without --progress: a permanently failed
        # point means missing table rows, which must not pass silently.
        if self.progress:
            self.progress.point_failed(index, spec, error)
        else:
            print(
                f"  [{index}] FAILED {spec.describe()}: {error}",
                file=sys.stderr,
            )
        for observer in self.extra:
            observer.point_failed(index, spec, error)

    def sweep_finished(self, stats) -> None:
        self.sim_cycles += stats.sim_cycles
        self.sim_flits += stats.sim_flits
        self.sweep_stats.append(stats.to_json())
        if self.progress:
            self.progress.sweep_finished(stats)
        elif stats.retried_points or stats.failed_points:
            # Even without --progress, degraded sweeps must be loud:
            # retries mean flaky points, failures mean missing rows.
            line = f"  sweep: {stats.retried_points} retried"
            if stats.failed_points:
                line += f", {len(stats.failed_points)} FAILED"
            print(line, file=sys.stderr)
        for observer in self.extra:
            observer.sweep_finished(stats)

    def summary(self) -> str:
        if not self.points:
            return ""
        return (
            f" — {self.points} points, {self.hits} cached, "
            f"{self.misses} simulated"
        )

    def throughput(self, elapsed: float) -> str:
        """``" — 1.2M cycles/s, …"`` over ``elapsed``; empty when no
        simulated work happened (all-cached or analytic runs)."""
        from repro.perf.meters import throughput_suffix

        rates = throughput_suffix(self.sim_cycles, self.sim_flits, elapsed)
        return f" — {rates}" if rates else ""


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analysis":
        # ``catnap-experiments analysis lint ...`` forwards to the
        # static-analysis CLI so one entry point covers both halves.
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="catnap-experiments",
        description="Regenerate the Catnap paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (e.g. fig08) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="cycle-count scale factor (default 1.0)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for .txt outputs"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="sweep worker processes (default: REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="result-cache directory (default: results/.cache)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed sweep point to stderr",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run with REPRO_CHECK=1: every simulated fabric verifies "
        "cycle-level invariants (see docs/analysis.md)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run with REPRO_FAULTS=SPEC: every simulated fabric "
        "attaches a deterministic fault-injection engine "
        "(see docs/faults.md); use '1' for the default schedule",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="run with REPRO_TELEMETRY=1: every simulated fabric "
        "records time series and a Perfetto trace under "
        "results/telemetry/ (see docs/telemetry.md)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for telemetry artifacts (implies --telemetry)",
    )
    parser.add_argument(
        "--explain",
        nargs="?",
        const="1",
        default=None,
        metavar="SPEC",
        help="run with REPRO_EXPLAIN=SPEC: every simulated fabric "
        "attributes per-packet latency phases and per-subnet energy, "
        "writing *.explain.json under results/explain/ "
        "(see docs/explain.md); SPEC is '1' (both), 'latency', "
        "'energy', or a comma list",
    )
    parser.add_argument(
        "--explain-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for attribution artifacts (implies --explain)",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="run with REPRO_PERF=1: every simulated fabric profiles "
        "its own step phases and writes *.perf.json under "
        "results/perf/ (see docs/perf.md)",
    )
    parser.add_argument(
        "--perf-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for perf profile artifacts (implies --perf)",
    )
    parser.add_argument(
        "--workload",
        metavar="SPEC",
        default=None,
        help="run with REPRO_WORKLOADS=SPEC: the serving workload swept "
        "by ext_serving (see docs/workloads.md), e.g. llm:batch=8 or "
        "tenants:rates=0.1,0.05",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="run with REPRO_BACKEND=NAME: simulation kernel for every "
        "fabric — 'dense' steps each cycle, 'skip' jumps idle spans "
        "(byte-identical results; see docs/architecture.md)",
    )
    parser.add_argument(
        "--percentiles",
        action="store_true",
        help="append latency p50/p95/p99 columns to tables that "
        "carry them",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="record every sweep to a run ledger under results/obs/ "
        "(inspect with `python -m repro.obs`; see docs/obs.md)",
    )
    parser.add_argument(
        "--stats-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write per-sweep SweepStats (repro.obs/1 JSON) to PATH",
    )
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = str(args.cache_dir)
    if args.check:
        # Environment (not a parameter) so forked sweep workers attach
        # the checker to every fabric they construct.  Checked results
        # must not poison the shared cache of unchecked runs — a run
        # that only *reads* would also hide a violation inside a
        # cached point — so caching is disabled wholesale.
        os.environ["REPRO_CHECK"] = "1"
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.faults is not None:
        # Validate here so a typo fails fast with a usage error rather
        # than as one captured failure per sweep point.
        from repro.faults.spec import parse_fault_spec

        try:
            parse_fault_spec(args.faults)
        except ValueError as exc:
            parser.error(f"--faults: {exc}")
        # Environment (not a parameter) so forked sweep workers attach
        # a fault engine to every fabric they construct.  Faulted
        # results must never poison the cache of healthy runs, and a
        # cache hit would silently skip injection — caching is
        # disabled wholesale (mirrors --check).
        os.environ["REPRO_FAULTS"] = args.faults
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.workload is not None:
        # Validate here so a typo fails fast with a usage error rather
        # than as one captured failure per sweep point (mirrors
        # --faults).  Unlike observer flags this does NOT disable the
        # cache: the canonical spec text lands in PointSpec.workload
        # and is therefore already part of every cache key.
        from repro.workloads.spec import parse_workload_spec

        try:
            parse_workload_spec(args.workload)
        except ValueError as exc:
            parser.error(f"--workload: {exc}")
        os.environ["REPRO_WORKLOADS"] = args.workload
    if args.backend is not None:
        # Validate here so a typo fails fast with a usage error rather
        # than as one captured failure per sweep point (mirrors
        # --faults).
        from repro.noc.backend import DEFAULT_BACKEND, backend_names

        if args.backend not in backend_names():
            parser.error(
                f"--backend: unknown backend {args.backend!r}; "
                f"choose from {', '.join(backend_names())}"
            )
        # Environment (not a parameter) so forked sweep workers build
        # every fabric on the selected kernel.  Backends are
        # result-equivalent by contract, but a cache hit would silently
        # skip exercising the requested kernel — so any non-default
        # choice disables caching wholesale (mirrors --check).
        os.environ["REPRO_BACKEND"] = args.backend
        if args.backend != DEFAULT_BACKEND:
            os.environ["REPRO_NO_CACHE"] = "1"
    if args.trace_out is not None:
        os.environ["REPRO_TELEMETRY_DIR"] = str(args.trace_out)
        args.telemetry = True
    if args.telemetry:
        # Environment (not a parameter) so forked sweep workers attach
        # a hub to every fabric they construct.  A cache hit would skip
        # the simulation entirely and silently produce no artifacts for
        # that point, so caching is disabled wholesale (mirrors
        # --check).
        os.environ["REPRO_TELEMETRY"] = "1"
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.explain_out is not None:
        os.environ["REPRO_EXPLAIN_DIR"] = str(args.explain_out)
        if args.explain is None:
            args.explain = "1"
    if args.explain is not None:
        # Validate here so a typo fails fast with a usage error rather
        # than as one captured failure per sweep point (mirrors
        # --faults).
        from repro.explain.hub import parse_explain_spec

        try:
            parse_explain_spec(args.explain)
        except ValueError as exc:
            parser.error(f"--explain: {exc}")
        # Environment (not a parameter) so forked sweep workers attach
        # an attribution hub to every fabric they construct.  A cache
        # hit would skip the simulation and silently produce no
        # artifacts for that point, so caching is disabled wholesale
        # (mirrors --check / --telemetry).
        os.environ["REPRO_EXPLAIN"] = args.explain
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.perf_out is not None:
        os.environ["REPRO_PERF_DIR"] = str(args.perf_out)
        args.perf = True
    if args.perf:
        # Environment (not a parameter) so forked sweep workers attach
        # a profiler to every fabric they construct.  A cache hit skips
        # the simulation, so there would be nothing to profile — caching
        # is disabled wholesale (mirrors --check / --telemetry).
        os.environ["REPRO_PERF"] = "1"
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.experiment == "all":
        names = list(PAPER_EXPERIMENTS)
    elif args.experiment == "ablations":
        names = [name for name in EXPERIMENTS if name.startswith("abl_")]
    else:
        names = [args.experiment]
    extra = []
    if args.telemetry:
        from repro.telemetry.observer import TelemetryObserver

        extra.append(TelemetryObserver())
    if args.perf:
        from repro.perf.observer import PerfObserver

        extra.append(PerfObserver())
    if args.explain is not None:
        from repro.explain.observer import ExplainObserver

        extra.append(ExplainObserver())
    from repro.util import env

    if args.ledger or env.flag("REPRO_OBS"):
        from repro.obs.ledger import LedgerObserver

        extra.append(LedgerObserver())
    tally = _TallyObserver(progress=args.progress, extra=extra)
    runner.set_default_observer(tally)
    try:
        for name in names:
            tally.reset()
            # perf_counter, not time.time: wall-clock is not monotonic
            # (NTP steps would corrupt the elapsed figure) — SIM003.
            started = time.perf_counter()
            result = run_experiment(name, args.scale)
            table = render_experiment(
                result, percentiles=args.percentiles
            )
            elapsed = time.perf_counter() - started
            print(table)
            print(
                f"[{name} finished in {elapsed:.1f}s{tally.summary()}"
                f"{tally.throughput(elapsed)}]\n"
            )
            if name == "fig08":
                print("Headline:", headline_summary(result), "\n")
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(table + "\n")
    finally:
        runner.set_default_observer(None)
    if args.stats_out is not None:
        import json

        args.stats_out.parent.mkdir(parents=True, exist_ok=True)
        args.stats_out.write_text(
            json.dumps(
                {
                    "schema": "repro.obs/1",
                    "sweeps": tally.sweep_stats,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
