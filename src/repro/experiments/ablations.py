"""Ablation studies of Catnap's design choices.

The paper fixes several constants (BFM threshold 9, RCS update period
6, T-idle-detect 4, quadrant regions, hysteresis hold) after internal
exploration; these drivers sweep each one so the sensitivity behind
those choices is reproducible:

* **BFM threshold** — small thresholds escalate early (less sleep),
  large ones risk latency before escalation.
* **RCS update period** — slower OR networks detect congestion later.
* **T-idle-detect** — how long buffers must stay empty before sleeping;
  small values cause short, uncompensated sleeps.
* **Region granularity** — 1 (global OR) / 2 (paper's quadrants) / 4.
* **Wakeup delay** — latency sensitivity to T-wakeup.
* **Hysteresis hold** — stability of the congested status.

Each driver measures a power-gated 4NT-128b Multi-NoC under uniform
random traffic at a low (sleep-friendly) and a moderate (congestion-
prone) load.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import CongestionConfig, NocConfig, PowerGatingConfig

__all__ = [
    "run_ablation_bfm_threshold",
    "run_ablation_rcs_period",
    "run_ablation_idle_detect",
    "run_ablation_region_divisions",
    "run_ablation_wakeup_delay",
    "run_ablation_hold_cycles",
    "run_all_ablations",
    "ABLATIONS",
]

LOW_LOAD = 0.03
MID_LOAD = 0.22
LOADS = (LOW_LOAD, MID_LOAD)


def _base_config() -> NocConfig:
    return NocConfig.multi_noc(4, power_gating=True)


def _sweep(
    name: str,
    title: str,
    knob: str,
    configs: list[tuple[object, NocConfig]],
    scale: float,
    seed: int,
    notes: str = "",
) -> ExperimentResult:
    phases = synthetic_phases(scale)
    result = ExperimentResult(
        name=name,
        title=title,
        columns=[knob, "load", "latency", "throughput", "csc_pct"],
        notes=notes,
    )
    specs = [
        PointSpec.synthetic(
            config, "uniform", load, phases, seed, **{knob: value}
        )
        for value, config in configs
        for load in LOADS
    ]
    result.rows.extend(run_sweep(specs))
    return result


def run_ablation_bfm_threshold(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    thresholds: tuple[int, ...] = (3, 6, 9, 12, 15),
) -> ExperimentResult:
    """Sweep the BFM congestion threshold (paper default: 9 flits)."""
    configs = [
        (
            thr,
            replace(
                _base_config(),
                congestion=replace(
                    CongestionConfig(), bfm_threshold_flits=thr
                ),
            ),
        )
        for thr in thresholds
    ]
    return _sweep(
        "abl_bfm_threshold",
        "BFM threshold sensitivity",
        "threshold",
        configs,
        scale,
        seed,
        notes="low thresholds trade sleep time for latency headroom",
    )


def run_ablation_rcs_period(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    periods: tuple[int, ...] = (1, 6, 18, 48),
) -> ExperimentResult:
    """Sweep the OR-network update period (paper: 6 cycles, SPICE)."""
    configs = [
        (
            period,
            replace(
                _base_config(),
                congestion=replace(
                    CongestionConfig(), rcs_update_period=period
                ),
            ),
        )
        for period in periods
    ]
    return _sweep(
        "abl_rcs_period",
        "RCS update-period sensitivity",
        "period",
        configs,
        scale,
        seed,
        notes="slow regional updates delay escalation and wakeup",
    )


def run_ablation_idle_detect(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    values: tuple[int, ...] = (1, 4, 12, 32),
) -> ExperimentResult:
    """Sweep T-idle-detect (paper: 4 cycles of empty buffers)."""
    configs = [
        (
            value,
            replace(
                _base_config(),
                gating=replace(
                    PowerGatingConfig(), idle_detect_cycles=value
                ),
            ),
        )
        for value in values
    ]
    return _sweep(
        "abl_idle_detect",
        "Idle-detect window sensitivity",
        "idle_detect",
        configs,
        scale,
        seed,
        notes="aggressive (small) windows risk short uncompensated sleeps",
    )


def run_ablation_region_divisions(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    divisions: tuple[int, ...] = (1, 2, 4),
) -> ExperimentResult:
    """Sweep OR-network granularity (paper: quadrants = 2 per axis)."""
    configs = [
        (
            div,
            replace(
                _base_config(),
                congestion=replace(CongestionConfig(), rcs_divisions=div),
            ),
        )
        for div in divisions
    ]
    return _sweep(
        "abl_region_divisions",
        "Regional OR granularity (regions per axis)",
        "divisions",
        configs,
        scale,
        seed,
        notes="1 = global OR (over-reacts), 4 = fine regions (under-react)",
    )


def run_ablation_wakeup_delay(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    delays: tuple[int, ...] = (2, 5, 10, 20),
) -> ExperimentResult:
    """Sweep T-wakeup (paper: 10 cycles from SPICE, 3 hidden)."""
    configs = [
        (
            delay,
            replace(
                _base_config(),
                gating=replace(
                    PowerGatingConfig(),
                    wakeup_cycles=delay,
                    hidden_wakeup_cycles=min(3, delay),
                ),
            ),
        )
        for delay in delays
    ]
    return _sweep(
        "abl_wakeup_delay",
        "Wakeup-delay (T-wakeup) sensitivity",
        "wakeup",
        configs,
        scale,
        seed,
        notes="longer wakeups penalize the first packets of each burst",
    )


def run_ablation_hold_cycles(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    holds: tuple[int, ...] = (1, 6, 24, 96),
) -> ExperimentResult:
    """Sweep the congested-status hysteresis hold time."""
    configs = [
        (
            hold,
            replace(
                _base_config(),
                congestion=replace(CongestionConfig(), hold_cycles=hold),
            ),
        )
        for hold in holds
    ]
    return _sweep(
        "abl_hold_cycles",
        "Hysteresis hold-time sensitivity",
        "hold",
        configs,
        scale,
        seed,
        notes="long holds keep higher subnets open after congestion ends",
    )


ABLATIONS = {
    "abl_bfm_threshold": run_ablation_bfm_threshold,
    "abl_rcs_period": run_ablation_rcs_period,
    "abl_idle_detect": run_ablation_idle_detect,
    "abl_region_divisions": run_ablation_region_divisions,
    "abl_wakeup_delay": run_ablation_wakeup_delay,
    "abl_hold_cycles": run_ablation_hold_cycles,
}


def run_all_ablations(
    scale: float = 1.0, seed: int = DEFAULT_SEED
) -> list[ExperimentResult]:
    """Run every ablation driver."""
    return [run(scale=scale, seed=seed) for run in ABLATIONS.values()]
