"""Figure 2 — the need for a high-bandwidth network.

A 256-core processor runs the Light and Heavy workloads on an
under-provisioned 128-bit Single-NoC and the bandwidth-provisioned
512-bit Single-NoC.  The paper reports ~41 % performance loss for Heavy
on 128 bits and an insignificant loss for Light.
"""

from __future__ import annotations

from repro.experiments.common import (
    APPLICATION_CYCLES,
    DEFAULT_SEED,
    ExperimentResult,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_fig02"]

WORKLOADS = ("Light", "Heavy")


def run_fig02(
    scale: float = 1.0, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Regenerate Figure 2 (normalized system performance)."""
    cycles = max(2000, round(APPLICATION_CYCLES * scale))
    configs = [NocConfig.single_noc_128(), NocConfig.single_noc_512()]
    result = ExperimentResult(
        name="fig02",
        title="Normalized performance, 128b vs 512b Single-NoC",
        columns=[
            "workload", "config", "ipc", "normalized_perf", "miss_latency",
        ],
        notes="paper: Heavy loses ~41% on the 128b network; Light ~none",
    )
    specs = [
        PointSpec.application(config, workload, cycles, seed)
        for workload in WORKLOADS
        for config in configs
    ]
    rows = run_sweep(specs)
    for start in range(0, len(rows), len(configs)):
        group = rows[start : start + len(configs)]
        baseline_ipc = group[-1]["ipc"]  # 1NT-512b
        for row in group:
            row["normalized_perf"] = row["ipc"] / baseline_ipc
            result.rows.append(row)
    return result
