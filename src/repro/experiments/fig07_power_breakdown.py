"""Figure 7 — network power breakdown with and without voltage scaling.

Evaluates the analytic power model at a per-port load factor of 0.5
(the paper's stated operating point) for three designs: 1NT-512b at
0.750 V, 4NT-128b at 0.750 V, and 4NT-128b at 0.625 V.  The expected
shape: buffers roughly equal, the single wide crossbar costlier than
four narrow ones, control duplicated in Multi-NoC, clock reduced
super-linearly, links +12 %, and a large overall drop once the narrow
routers are voltage-scaled.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig
from repro.power.network_power import COMPONENT_NAMES

__all__ = ["run_fig07", "fig07_configs"]


def fig07_configs() -> list[tuple[str, NocConfig]]:
    """The three (label, config) bars of Figure 7."""
    return [
        ("1NT-512b 0.750V", NocConfig.single_noc_512()),
        (
            "4NT-128b 0.750V",
            replace(NocConfig.multi_noc(4), voltage_v=0.750),
        ),
        ("4NT-128b 0.625V", NocConfig.multi_noc(4)),
    ]


def run_fig07(
    scale: float = 1.0, port_load: float = 0.5
) -> ExperimentResult:
    """Regenerate Figure 7 (``scale`` accepted for API uniformity)."""
    result = ExperimentResult(
        name="fig07",
        title=f"Network power breakdown at port load {port_load}",
        columns=[
            "label", *COMPONENT_NAMES, "dynamic_w", "static_w", "total_w",
        ],
        notes="paper stacks: ~70W, ~65W, ~48W",
    )
    specs = [
        PointSpec.power(config, port_load, label=label)
        for label, config in fig07_configs()
    ]
    result.rows.extend(run_sweep(specs))
    return result
