"""Shared experiment infrastructure.

Every figure/table driver is a pure function returning an
:class:`ExperimentResult` — a list of row dicts plus formatting — so
tests, benchmarks, and examples all run the same code path.

All drivers accept a ``scale`` factor that shrinks simulated cycle
counts proportionally (benches use ``scale < 1`` for quick runs; the
recorded EXPERIMENTS.md numbers use the default scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.config import SYNTHETIC_PACKET_BITS, NocConfig
from repro.noc.multinoc import MultiNocFabric
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.perf import meters
from repro.power.network_power import (
    NetworkPowerBreakdown,
    compute_network_power,
)
from repro.system.processor import Processor, SystemResult
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern
from repro.util import env
from repro.util.tables import format_table

__all__ = [
    "ExperimentResult",
    "env_scale",
    "synthetic_phases",
    "run_synthetic_point",
    "run_application_point",
    "DEFAULT_SEED",
    "APPLICATION_CYCLES",
]

DEFAULT_SEED = 42

#: Cycles simulated per closed-loop application run at scale 1.0.
APPLICATION_CYCLES = 12_000


@dataclass
class ExperimentResult:
    """Rows of one regenerated figure or table."""

    name: str
    title: str
    rows: list[dict] = field(default_factory=list)
    columns: list[str] | None = None
    notes: str = ""

    def to_table(self, precision: int = 3) -> str:
        """Render the rows as an aligned text table."""
        table = format_table(
            self.rows, self.columns, f"{self.name}: {self.title}", precision
        )
        if self.notes:
            table += f"\n-- {self.notes}"
        return table

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]

    def select(self, **criteria) -> list[dict]:
        """Rows matching all of the given column values."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    def to_chart(
        self,
        x: str,
        y: str,
        group: str,
        height: int = 12,
        width: int = 60,
        **criteria,
    ) -> str:
        """Render ``y`` vs ``x``, one line per distinct ``group`` value.

        ``criteria`` pre-filters rows (e.g. ``pattern="uniform"``).
        Rows of every group must share the same x grid; a group missing
        any x value raises :class:`ValueError` (silently substituting a
        neighbouring point would plot a fabricated line segment).
        """
        from repro.util.ascii_plot import line_chart

        rows = (
            [
                row
                for row in self.rows
                if all(row.get(k) == v for k, v in criteria.items())
            ]
            if criteria
            else self.rows
        )
        groups: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            groups.setdefault(str(row[group]), []).append(
                (row[x], row[y])
            )
        if not groups:
            return f"{self.name}: (no rows match)"
        xs = sorted({pt[0] for pts in groups.values() for pt in pts})
        series = {}
        for name, points in groups.items():
            lookup = dict(points)
            missing = [xv for xv in xs if xv not in lookup]
            if missing:
                raise ValueError(
                    f"{self.name}: group {name!r} has no row at "
                    f"{x}={missing[0]!r}; all groups must share the "
                    f"same x grid"
                )
            series[name] = [lookup[xv] for xv in xs]
        return line_chart(
            xs, series, height=height, width=width,
            title=f"{self.name}: {y} vs {x}",
        )


def env_scale(default: float = 1.0) -> float:
    """Experiment scale factor from ``REPRO_SCALE`` (default 1.0)."""
    value = env.raw("REPRO_SCALE")
    if value is None:
        return default
    scale = float(value)
    if scale <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return scale


def synthetic_phases(scale: float = 1.0) -> SimulationPhases:
    """Standard open-loop phases, scaled."""
    return SimulationPhases(warmup=800, measure=2600, cooldown=600).scaled(
        scale
    )


def run_synthetic_point(
    config: NocConfig,
    pattern_name: str,
    load: float,
    phases: SimulationPhases,
    seed: int = DEFAULT_SEED,
    packet_bits: int = SYNTHETIC_PACKET_BITS,
) -> dict:
    """One (config, pattern, load) synthetic measurement row."""
    fabric = MultiNocFabric(config, seed=seed)
    pattern = make_pattern(pattern_name, fabric.mesh)
    source = SyntheticTrafficSource(
        fabric, pattern, load, packet_bits, seed=seed
    )
    report = run_open_loop(fabric, source, phases)
    meters.note_report(report)
    power = compute_network_power(report)
    return {
        "config": config.name,
        "policy": config.selection_policy,
        "metric": config.congestion.metric,
        "pattern": pattern_name,
        "load": load,
        "latency": report.avg_packet_latency,
        "network_latency": report.avg_network_latency,
        "throughput": report.throughput_packets,
        "throughput_flits": report.throughput_flits,
        "csc_pct": 100.0 * report.csc_fraction,
        "power_w": power.total_watts,
        "dynamic_w": power.dynamic_watts,
        "static_w": power.static_watts,
        "subnet_share": report.subnet_injection_share,
        "latency_p50": report.latency_p50,
        "latency_p95": report.latency_p95,
        "latency_p99": report.latency_p99,
        "avg_hops_per_subnet": report.avg_hops_per_subnet,
    }


def run_application_point(
    config: NocConfig,
    workload_name: str,
    cycles: int,
    seed: int = DEFAULT_SEED,
) -> tuple[dict, SystemResult, NetworkPowerBreakdown]:
    """One (config, workload) closed-loop measurement row."""
    processor = Processor(config, workload_name, seed=seed)
    result = processor.run(cycles)
    meters.note_report(result.fabric_report)
    power = compute_network_power(result.fabric_report)
    row = {
        "config": config.name,
        "policy": config.selection_policy,
        "workload": workload_name,
        "ipc": result.aggregate_ipc,
        "miss_latency": result.avg_miss_latency,
        "csc_pct": 100.0 * result.fabric_report.csc_fraction,
        "power_w": power.total_watts,
        "dynamic_w": power.dynamic_watts,
        "static_w": power.static_watts,
        "subnet_share": list(result.fabric_report.subnet_injection_share),
        "latency_p50": result.fabric_report.latency_p50,
        "latency_p95": result.fabric_report.latency_p95,
        "latency_p99": result.fabric_report.latency_p99,
        "avg_hops_per_subnet": list(
            result.fabric_report.avg_hops_per_subnet
        ),
    }
    return row, result, power
