"""Per-figure experiment drivers (see DESIGN.md's experiment index)."""

from repro.experiments.common import (
    ExperimentResult,
    run_application_point,
    run_synthetic_point,
    synthetic_phases,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "run_application_point",
    "run_synthetic_point",
    "synthetic_phases",
    "EXPERIMENTS",
    "run_experiment",
]
