"""Per-figure experiment drivers (see DESIGN.md's experiment index).

Drivers describe their sweeps as :class:`~repro.experiments.runner.PointSpec`
lists and execute them through :func:`~repro.experiments.runner.run_sweep`
(parallel workers + on-disk result cache); the CLI lives in
:mod:`repro.experiments.cli`.
"""

from repro.experiments.cli import EXPERIMENTS, run_experiment
from repro.experiments.common import (
    ExperimentResult,
    run_application_point,
    run_synthetic_point,
    synthetic_phases,
)
from repro.experiments.runner import (
    PointSpec,
    ProgressObserver,
    SweepCache,
    SweepObserver,
    SweepStats,
    run_sweep,
)

__all__ = [
    "ExperimentResult",
    "run_application_point",
    "run_synthetic_point",
    "synthetic_phases",
    "EXPERIMENTS",
    "run_experiment",
    "PointSpec",
    "ProgressObserver",
    "SweepCache",
    "SweepObserver",
    "SweepStats",
    "run_sweep",
]
