"""Sweep-execution layer: point-specs, worker pool, cache, observers.

Every experiment driver describes its sweep as a list of *pure*
:class:`PointSpec` records (configuration + pattern + load + phases +
seed — everything a measurement depends on, and nothing else) and hands
the list to :func:`run_sweep`, which

1. resolves each spec against an on-disk :class:`SweepCache` under
   ``results/.cache/`` (keyed by a content hash of the spec plus
   :data:`CACHE_SCHEMA_VERSION`, so re-running a figure after an
   unrelated code change is a cache hit),
2. fans the remaining points out across a ``multiprocessing`` pool
   (worker count from ``REPRO_JOBS``, default ``os.cpu_count()``; a
   deterministic serial path runs at ``REPRO_JOBS=1``), and
3. reports structured progress/timing records (points done, hit/miss
   counts, wall-clock per point) through a :class:`SweepObserver`.

Because a spec carries its seed explicitly and every point is executed
in isolation, serial and parallel runs produce byte-identical rows; the
returned rows are additionally normalized through a JSON round trip so
cached and freshly-computed results are indistinguishable.

Environment variables (see ``docs/experiments.md``):

``REPRO_JOBS``
    Worker count for :func:`run_sweep` (default: all cores).
``REPRO_NO_CACHE``
    Any non-empty value other than ``0`` disables the on-disk cache.
``REPRO_CACHE_DIR``
    Cache directory (default ``results/.cache``).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.experiments.common import (
    DEFAULT_SEED,
    run_application_point,
    run_synthetic_point,
)
from repro.noc.config import SYNTHETIC_PACKET_BITS, NocConfig
from repro.noc.multinoc import MultiNocFabric
from repro.noc.simulator import SimulationPhases
from repro.perf import meters
from repro.power.network_power import COMPONENT_NAMES, power_at_port_load
from repro.power.technology import table2_rows
from repro.traffic.generators import BurstyTrafficSource
from repro.util import env
from repro.traffic.patterns import make_pattern

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "PointSpec",
    "SweepCache",
    "SweepObserver",
    "SweepStats",
    "ProgressObserver",
    "execute_point",
    "run_sweep",
    "env_jobs",
    "default_cache",
    "set_default_observer",
]

#: Bump when row contents or spec hashing change incompatibly; every
#: bump invalidates all previously cached points at once.
#: 2: synthetic/application rows gained latency percentile and
#: per-subnet hop-count columns.
CACHE_SCHEMA_VERSION = 2

#: Default on-disk cache location (override with ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = Path("results") / ".cache"


def _jsonify(obj):
    """Normalize ``obj`` through a JSON round trip.

    Guarantees cached rows (which live as JSON on disk) compare equal
    to freshly computed ones: tuples become lists, dict key order is
    canonical, and only JSON-representable values survive.
    """
    return json.loads(json.dumps(obj, sort_keys=True))


@dataclass(frozen=True)
class PointSpec:
    """One pure, self-contained measurement point of a sweep.

    A spec captures everything its measurement depends on — the fabric
    configuration, traffic pattern, offered load, simulation phases,
    and the RNG seed — so executing it is a pure function and its
    content hash is a sound cache key.  ``label`` entries are merged
    into the produced row(s) but deliberately excluded from the hash:
    two drivers labelling the same simulation differently share one
    cache entry.

    Use the named constructors (:meth:`synthetic`, :meth:`application`,
    :meth:`power`, :meth:`bursty`, :meth:`table02`) rather than filling
    fields by hand.
    """

    kind: str
    config: NocConfig | None = None
    pattern: str | None = None
    load: float | None = None
    phases: SimulationPhases | None = None
    seed: int | None = None
    packet_bits: int | None = None
    workload: str | None = None
    cycles: int | None = None
    params: tuple[tuple[str, object], ...] = ()
    label: tuple[tuple[str, object], ...] = field(
        default=(), compare=False
    )

    # -- named constructors -------------------------------------------

    @classmethod
    def synthetic(
        cls,
        config: NocConfig,
        pattern: str,
        load: float,
        phases: SimulationPhases,
        seed: int = DEFAULT_SEED,
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        **label,
    ) -> "PointSpec":
        """Open-loop synthetic-traffic point (one row)."""
        return cls(
            kind="synthetic",
            config=config,
            pattern=pattern,
            load=load,
            phases=phases,
            seed=seed,
            packet_bits=packet_bits,
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def application(
        cls,
        config: NocConfig,
        workload: str,
        cycles: int,
        seed: int = DEFAULT_SEED,
        **label,
    ) -> "PointSpec":
        """Closed-loop application-workload point (one row)."""
        return cls(
            kind="application",
            config=config,
            workload=workload,
            cycles=cycles,
            seed=seed,
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def power(
        cls, config: NocConfig, port_load: float, **label
    ) -> "PointSpec":
        """Analytic power-breakdown point (one row; Figure 7)."""
        return cls(
            kind="power",
            config=config,
            load=port_load,
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def bursty(
        cls,
        config: NocConfig,
        pattern: str,
        schedule: tuple[tuple[int, float], ...],
        sample_period: int,
        total_cycles: int,
        seed: int = DEFAULT_SEED,
        **label,
    ) -> "PointSpec":
        """Time-series point over a step-load schedule (many rows)."""
        return cls(
            kind="bursty",
            config=config,
            pattern=pattern,
            seed=seed,
            cycles=total_cycles,
            params=(
                ("sample_period", sample_period),
                ("schedule", tuple(schedule)),
            ),
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def fault(
        cls,
        config: NocConfig,
        pattern: str,
        load: float,
        phases: SimulationPhases,
        faults: str,
        seed: int = DEFAULT_SEED,
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        **label,
    ) -> "PointSpec":
        """Fault-injected synthetic point (one row; :mod:`repro.faults`).

        ``faults`` is a ``REPRO_FAULTS``-grammar spec string; it is part
        of ``params`` and therefore of the cache identity.
        """
        return cls(
            kind="fault",
            config=config,
            pattern=pattern,
            load=load,
            phases=phases,
            seed=seed,
            packet_bits=packet_bits,
            params=(("faults", faults),),
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def serving(
        cls,
        config: NocConfig,
        workload: str,
        phases: SimulationPhases,
        seed: int = DEFAULT_SEED,
        packet_bits: int = SYNTHETIC_PACKET_BITS,
        **label,
    ) -> "PointSpec":
        """Serving-workload point (one row; :mod:`repro.workloads`).

        ``workload`` is a ``--workload``-grammar spec string; it is
        canonicalized here so different spellings of the same workload
        share a cache entry.  For ``trace:`` workloads the trace file's
        content hash is folded into ``params`` — replaying an edited
        trace from the same path never reuses a stale cached row.
        """
        # Lazy import: workload-free sweeps never load the package.
        from repro.workloads.spec import parse_workload_spec

        spec = parse_workload_spec(workload)
        params: tuple[tuple[str, object], ...] = ()
        if spec.kind == "trace":
            digest = hashlib.sha256(
                Path(str(spec.get("path"))).read_bytes()
            ).hexdigest()
            params = (("trace_sha256", digest),)
        return cls(
            kind="workload",
            config=config,
            phases=phases,
            seed=seed,
            packet_bits=packet_bits,
            workload=spec.to_text(),
            params=params,
            label=tuple(sorted(label.items())),
        )

    @classmethod
    def table02(cls) -> "PointSpec":
        """The fitted 32 nm voltage/frequency table (four rows)."""
        return cls(kind="table02")

    # -- labelling / hashing ------------------------------------------

    def with_label(self, **label) -> "PointSpec":
        """Copy with extra row labels (not part of the cache key)."""
        merged = dict(self.label)
        merged.update(label)
        return replace(self, label=tuple(sorted(merged.items())))

    def key(self) -> dict:
        """Canonical JSON-safe identity of this point (label excluded)."""
        return _jsonify(
            {
                "kind": self.kind,
                "config": asdict(self.config) if self.config else None,
                "pattern": self.pattern,
                "load": self.load,
                "phases": asdict(self.phases) if self.phases else None,
                "seed": self.seed,
                "packet_bits": self.packet_bits,
                "workload": self.workload,
                "cycles": self.cycles,
                "params": self.params,
            }
        )

    def digest(self) -> str:
        """Content hash keying the on-disk cache."""
        payload = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "spec": self.key()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable form for progress lines."""
        parts = [self.kind]
        if self.config is not None:
            parts.append(self.config.name)
        if self.workload is not None:
            parts.append(self.workload)
        if self.pattern is not None:
            parts.append(self.pattern)
        if self.load is not None:
            parts.append(f"load={self.load:g}")
        return " ".join(parts)


# -- point executors (top-level so pool workers can run them) ----------


def _run_synthetic(spec: PointSpec) -> list[dict]:
    row = run_synthetic_point(
        spec.config,
        spec.pattern,
        spec.load,
        spec.phases,
        spec.seed,
        spec.packet_bits,
    )
    return [row]


def _run_application(spec: PointSpec) -> list[dict]:
    row, _, _ = run_application_point(
        spec.config, spec.workload, spec.cycles, spec.seed
    )
    return [row]


def _run_power(spec: PointSpec) -> list[dict]:
    breakdown = power_at_port_load(spec.config, spec.load)
    row: dict = {}
    for name in COMPONENT_NAMES:
        row[name] = breakdown.components[name].total_watts
    row["dynamic_w"] = breakdown.dynamic_watts
    row["static_w"] = breakdown.static_watts
    row["total_w"] = breakdown.total_watts
    return [row]


def _run_bursty(spec: PointSpec) -> list[dict]:
    params = dict(spec.params)
    sample_period = params["sample_period"]
    schedule = [tuple(step) for step in params["schedule"]]
    fabric = MultiNocFabric(spec.config, seed=spec.seed)
    pattern = make_pattern(spec.pattern, fabric.mesh)
    source = BurstyTrafficSource(fabric, pattern, schedule, seed=spec.seed)
    num_subnets = spec.config.num_subnets
    nodes = fabric.mesh.num_nodes
    rows: list[dict] = []
    last_generated = 0
    last_received = 0
    last_per_subnet = [0] * num_subnets
    while fabric.cycle < spec.cycles:
        for _ in range(sample_period):
            source.step(fabric.cycle)
            fabric.step()
        generated = source.packets_generated
        received = fabric.stats.packets_received
        per_subnet = [
            sum(ni.injected_per_subnet[s] for ni in fabric.nis)
            for s in range(num_subnets)
        ]
        window_injected = sum(per_subnet) - sum(last_per_subnet)
        shares = [
            (per_subnet[s] - last_per_subnet[s]) / window_injected
            if window_injected
            else 0.0
            for s in range(num_subnets)
        ]
        denom = nodes * sample_period
        row = {
            "cycle": fabric.cycle,
            "offered": (generated - last_generated) / denom,
            "accepted": (received - last_received) / denom,
        }
        for s in range(num_subnets):
            row[f"subnet{s}"] = shares[s]
        rows.append(row)
        last_generated = generated
        last_received = received
        last_per_subnet = per_subnet
    meters.note_fabric(fabric)
    return rows


def _run_fault(spec: PointSpec) -> list[dict]:
    # Imported lazily: repro.faults.campaign itself builds PointSpecs
    # from this module, and fault-free sweeps never need the package.
    from repro.faults.campaign import run_fault_point

    params = dict(spec.params)
    row = run_fault_point(
        spec.config,
        spec.pattern,
        spec.load,
        spec.phases,
        spec.seed,
        params["faults"],
        spec.packet_bits,
    )
    return [row]


def _run_workload(spec: PointSpec) -> list[dict]:
    # Imported lazily, like the fault executor: workload-free sweeps
    # never pay for the package.
    from repro.workloads.point import run_serving_point

    row = run_serving_point(
        spec.config,
        spec.workload,
        spec.phases,
        spec.seed,
        spec.packet_bits,
    )
    return [row]


def _run_table02(spec: PointSpec) -> list[dict]:
    return [
        {
            "design": point.design,
            "router_width_bits": point.router_width_bits,
            "frequency_ghz": point.frequency_ghz,
            "voltage_v": point.voltage_v,
            "highlighted": point.highlighted,
        }
        for point in table2_rows()
    ]


_EXECUTORS = {
    "synthetic": _run_synthetic,
    "application": _run_application,
    "power": _run_power,
    "bursty": _run_bursty,
    "fault": _run_fault,
    "workload": _run_workload,
    "table02": _run_table02,
}


def execute_point(spec: PointSpec) -> list[dict]:
    """Execute one spec and return its JSON-normalized rows (no label)."""
    try:
        executor = _EXECUTORS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown point kind {spec.kind!r}; "
            f"choose from {sorted(_EXECUTORS)}"
        ) from None
    return _jsonify(executor(spec))


def _execute_indexed(item: tuple[int, PointSpec]):
    """Pool worker body: run one spec, keep its position and timing.

    Also returns the worker's pid (for busy-time attribution in
    :class:`SweepStats`) and the simulated work the point performed —
    a ``(cycles, flits)`` delta from the per-point work meter, so a
    forked pool can ship worker-side counts back to the parent.

    Exceptions are captured rather than propagated (the final ``error``
    element; ``None`` on success): letting one bad point unwind
    ``imap_unordered`` would discard every other worker's finished
    results, so the parent decides — it retries failed points once
    serially and surfaces permanent failures through
    :attr:`SweepStats.failed_points`.
    """
    index, spec = item
    meters.begin_point()
    started = time.perf_counter()
    error: str | None = None
    rows: list[dict] = []
    try:
        rows = execute_point(spec)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - started
    return index, rows, elapsed, os.getpid(), meters.drain_point(), error


# -- on-disk cache -----------------------------------------------------


class SweepCache:
    """Content-addressed on-disk store of completed point rows.

    One JSON file per point under ``root``, named by the spec digest.
    Each file records the schema version and the full spec key next to
    the rows, so a hash collision or a stale schema can never serve
    wrong data — mismatches read as misses.
    """

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def _path(self, spec: PointSpec) -> Path:
        return self.root / f"{spec.digest()}.json"

    def get(self, spec: PointSpec) -> list[dict] | None:
        """Rows for ``spec``, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("spec") != spec.key()
        ):
            return None
        rows = payload.get("rows")
        return rows if isinstance(rows, list) else None

    def put(self, spec: PointSpec, rows: list[dict]) -> None:
        """Persist rows crash-safely.

        The payload goes to an exclusively-created temp file in the
        cache directory, is fsynced, and lands under its final name via
        ``os.replace`` — so a reader can only ever observe the complete
        entry or none at all, concurrent writers (parallel sweeps
        sharing a cache) cannot clobber each other's temp files, and a
        crash mid-write leaves no half-written ``.json`` behind (the
        orphaned temp file is cleaned up on the error path and is
        invisible to :meth:`get`/:meth:`clear`, which only consider
        ``*.json``).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "spec": spec.key(),
                "rows": rows,
            },
            sort_keys=True,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def clear(self) -> int:
        """Delete every cached point; return the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed


def _cache_disabled_by_env() -> bool:
    return env.flag("REPRO_NO_CACHE")


def default_cache() -> SweepCache | None:
    """Cache per environment: ``None`` when ``REPRO_NO_CACHE`` is set."""
    if _cache_disabled_by_env():
        return None
    return SweepCache(env.text("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def env_jobs(default: int | None = None) -> int:
    """Worker count from ``REPRO_JOBS`` (default: all cores)."""
    value = env.raw("REPRO_JOBS")
    if value is None:
        return default if default is not None else (os.cpu_count() or 1)
    jobs = int(value)
    if jobs < 1:
        raise ValueError("REPRO_JOBS must be >= 1")
    return jobs


# -- observers ---------------------------------------------------------


@dataclass
class SweepStats:
    """Aggregate record of one :func:`run_sweep` call.

    ``sim_cycles``/``sim_flits`` count the simulated work behind the
    cache misses (cache hits simulate nothing); ``worker_busy_seconds``
    maps each worker pid to its in-point execution time, and
    ``exec_wall_seconds`` is the wall-clock of the execution section
    alone, so ``sum(busy) / (exec_wall * workers)`` is the pool's
    utilization.

    ``failed_points`` lists ``(index, error)`` for points that failed
    even after the serial retry; their rows are missing from the sweep
    result.  ``retried_points`` counts points that failed once and
    succeeded on retry (their rows are present and correct).
    """

    points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    point_seconds: list[float] = field(default_factory=list)
    sim_cycles: int = 0
    sim_flits: int = 0
    workers: int = 0
    exec_wall_seconds: float = 0.0
    worker_busy_seconds: dict[int, float] = field(default_factory=dict)
    failed_points: list[tuple[int, str]] = field(default_factory=list)
    retried_points: int = 0

    def worker_utilization(self) -> float:
        """Busy fraction of the worker pool over the execution section."""
        denominator = self.exec_wall_seconds * self.workers
        if denominator <= 0:
            return 0.0
        return sum(self.worker_busy_seconds.values()) / denominator

    def to_json(self) -> dict:
        """JSON-safe view with a stable key order.

        The schema tag (``repro.obs/1``) is shared with the run
        ledger's ``sweep_finished`` event (see ``docs/obs.md``), so a
        ``--stats-out`` file and a ledger record of the same sweep are
        field-for-field comparable.  Keys are emitted in a fixed order
        and the pid map is sorted, so two equal stats objects always
        serialize byte-identically.
        """
        return {
            "schema": "repro.obs/1",
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failed_points": [
                [index, error] for index, error in self.failed_points
            ],
            "retried_points": self.retried_points,
            "sim_cycles": self.sim_cycles,
            "sim_flits": self.sim_flits,
            "workers": self.workers,
            "worker_busy_seconds": {
                str(pid): seconds
                for pid, seconds in sorted(
                    self.worker_busy_seconds.items()
                )
            },
            "worker_utilization": self.worker_utilization(),
            "wall_seconds": self.wall_seconds,
            "exec_wall_seconds": self.exec_wall_seconds,
            "point_seconds": list(self.point_seconds),
        }


class SweepObserver:
    """Hook interface for sweep progress; all methods default to no-ops.

    ``point_finished`` fires once per point, in completion order (which
    under a parallel pool is not spec order); ``elapsed`` is the
    in-worker execution time and is ``0.0`` for cache hits.

    ``sweep_context`` fires once before ``sweep_started`` with the
    resolved execution policy — the full spec list, the worker count,
    and whether a cache is in play — so observers that need run
    identity (the :mod:`repro.obs` ledger derives its run-id from the
    spec digests) never have to re-derive it from the environment.
    ``point_started`` marks a point entering the execution section (in
    spec order; cache hits never start), and ``worker_heartbeat``
    reports each executed point's worker pid plus its simulated-work
    delta, immediately before the matching ``point_finished``.
    """

    def sweep_context(
        self, specs: list["PointSpec"], jobs: int, cached: bool
    ) -> None:
        """Execution policy for the sweep about to run."""

    def sweep_started(self, total: int) -> None:
        pass

    def point_started(self, index: int, spec: "PointSpec") -> None:
        """``specs[index]`` was handed to the execution section."""

    def worker_heartbeat(
        self, pid: int, cycles: int, flits: int, elapsed: float
    ) -> None:
        """One executed point's worker pid and (cycles, flits) delta."""

    def point_finished(
        self,
        index: int,
        spec: PointSpec,
        rows: list[dict],
        elapsed: float,
        cached: bool,
    ) -> None:
        pass

    def point_failed(
        self, index: int, spec: PointSpec, error: str
    ) -> None:
        """A point failed both its first run and the serial retry."""

    def sweep_finished(self, stats: SweepStats) -> None:
        pass


class ProgressObserver(SweepObserver):
    """Prints one line per completed point plus a summary.

    Status lines carry a rolling ETA (wall time so far divided by
    completed points, scaled to the remainder — meaningless before two
    points have finished, so suppressed until then) and the running
    cache-hit count when any point hit.
    """

    def __init__(self, stream=None):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0
        self._hits = 0
        self._started = 0.0

    def sweep_started(self, total: int) -> None:
        self._total = total
        self._done = 0
        self._hits = 0
        self._started = time.perf_counter()

    def _suffix(self) -> str:
        """`` [eta 12s, 3 cached]`` from completed-point wall times."""
        extras: list[str] = []
        remaining = self._total - self._done
        if self._done >= 2 and remaining > 0:
            per_point = (
                time.perf_counter() - self._started
            ) / self._done
            extras.append(f"eta {per_point * remaining:.0f}s")
        if self._hits:
            extras.append(f"{self._hits} cached")
        return f" [{', '.join(extras)}]" if extras else ""

    def point_finished(self, index, spec, rows, elapsed, cached) -> None:
        self._done += 1
        if cached:
            self._hits += 1
        status = "cache" if cached else f"{elapsed:.2f}s"
        print(
            f"  [{self._done}/{self._total}] {spec.describe()} "
            f"({status}){self._suffix()}",
            file=self.stream,
        )

    def point_failed(self, index, spec, error) -> None:
        self._done += 1
        print(
            f"  [{self._done}/{self._total}] {spec.describe()} "
            f"FAILED: {error}",
            file=self.stream,
        )

    def sweep_finished(self, stats: SweepStats) -> None:
        line = (
            f"  sweep: {stats.points} points, {stats.cache_hits} cached, "
            f"{stats.cache_misses} simulated in {stats.wall_seconds:.2f}s"
        )
        if stats.retried_points:
            line += f"; {stats.retried_points} retried"
        if stats.failed_points:
            line += f"; {len(stats.failed_points)} FAILED"
        from repro.perf.meters import throughput_suffix

        rates = throughput_suffix(
            stats.sim_cycles, stats.sim_flits, stats.wall_seconds
        )
        if rates:
            line += f" ({rates})"
        if stats.workers:
            line += (
                f"; {stats.workers} worker"
                f"{'s' if stats.workers != 1 else ''} "
                f"{100.0 * stats.worker_utilization():.0f}% busy"
            )
        print(line, file=self.stream)


_default_observer: SweepObserver | None = None


def set_default_observer(observer: SweepObserver | None) -> None:
    """Observer used by :func:`run_sweep` calls that pass none.

    The CLI installs one here so drivers stay observer-agnostic.
    """
    global _default_observer
    _default_observer = observer


# -- the sweep runner --------------------------------------------------

_CACHE_FROM_ENV = object()  # sentinel: "resolve the cache from env vars"


def run_sweep(
    specs,
    jobs: int | None = None,
    cache: SweepCache | None = _CACHE_FROM_ENV,
    observer: SweepObserver | None = None,
) -> list[dict]:
    """Execute every spec and return their rows, flattened in spec order.

    ``synthetic``/``application``/``power`` points contribute exactly
    one row each, so for such sweeps ``rows[i]`` corresponds to
    ``specs[i]``; ``bursty``/``table02`` points expand to several rows
    in place.  Results are independent of ``jobs``: every spec carries
    its own seed, so serial and parallel execution are byte-identical.

    ``jobs`` defaults to ``REPRO_JOBS`` (or all cores); ``cache``
    defaults to :func:`default_cache` (pass ``None`` to force off);
    ``observer`` defaults to the one installed with
    :func:`set_default_observer`.

    A point that raises is retried once serially in the parent; if the
    retry also fails, the sweep continues without its rows and the
    failure is surfaced through :attr:`SweepStats.failed_points` and
    the observer's ``point_failed`` hook (so one bad point cannot
    discard an hour of finished work).
    """
    specs = list(specs)
    if observer is None:
        observer = _default_observer or SweepObserver()
    if cache is _CACHE_FROM_ENV:
        cache = default_cache()
    if jobs is None:
        jobs = env_jobs()

    stats = SweepStats(points=len(specs))
    started = time.perf_counter()
    observer.sweep_context(specs, jobs, cache is not None)
    observer.sweep_started(len(specs))

    rows_by_index: dict[int, list[dict]] = {}
    pending: list[tuple[int, PointSpec]] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            rows_by_index[index] = hit
            stats.cache_hits += 1
            stats.point_seconds.append(0.0)
            observer.point_finished(index, spec, hit, 0.0, True)
        else:
            pending.append((index, spec))

    def record(
        index: int,
        rows: list[dict],
        elapsed: float,
        pid: int,
        work: tuple[int, int],
        from_worker: bool,
    ) -> None:
        rows_by_index[index] = rows
        stats.cache_misses += 1
        stats.point_seconds.append(elapsed)
        stats.sim_cycles += work[0]
        stats.sim_flits += work[1]
        stats.worker_busy_seconds[pid] = (
            stats.worker_busy_seconds.get(pid, 0.0) + elapsed
        )
        observer.worker_heartbeat(pid, work[0], work[1], elapsed)
        if from_worker:
            # Pool workers accumulate into their own (forked) process
            # meter, which dies with them; fold their shipped delta
            # into this process's lifetime total.  Serial points ran
            # in-process and are already counted.
            meters.WORK.add(*work)
        if cache is not None:
            cache.put(specs[index], rows)
        observer.point_finished(index, specs[index], rows, elapsed, False)

    def settle(
        index: int,
        rows: list[dict],
        elapsed: float,
        pid: int,
        work: tuple[int, int],
        error: str | None,
        from_worker: bool,
    ) -> None:
        """Record one executed point, retrying a failure once serially.

        The retry runs in the parent process (transient worker-side
        conditions — a dying fork, an fd limit — don't reproduce
        there); a second failure is permanent and lands in
        ``stats.failed_points`` instead of raising, so the rest of the
        sweep still completes and returns its rows.
        """
        if error is None:
            record(index, rows, elapsed, pid, work, from_worker)
            return
        index, rows, elapsed, pid, work, error = _execute_indexed(
            (index, specs[index])
        )
        if error is None:
            stats.retried_points += 1
            record(index, rows, elapsed, pid, work, False)
            return
        stats.failed_points.append((index, error))
        observer.point_failed(index, specs[index], error)

    if pending:
        workers = min(jobs, len(pending))
        stats.workers = workers
        exec_started = time.perf_counter()
        if workers > 1:
            # The pool consumes the whole pending list up front, so
            # every point "starts" (enters the execution section) now,
            # in spec order — per-worker start instants are not
            # observable from the parent.
            for index, spec in pending:
                observer.point_started(index, spec)
            with _pool_context().Pool(workers) as pool:
                for result in pool.imap_unordered(
                    _execute_indexed, pending
                ):
                    settle(*result, True)
        else:
            for item in pending:
                observer.point_started(*item)
                settle(*_execute_indexed(item), False)
        stats.exec_wall_seconds = time.perf_counter() - exec_started

    stats.wall_seconds = time.perf_counter() - started
    observer.sweep_finished(stats)

    out: list[dict] = []
    for index, spec in enumerate(specs):
        label = dict(spec.label)
        # Permanently failed points (stats.failed_points) have no rows.
        for row in rows_by_index.get(index, ()):
            out.append({**row, **label} if label else dict(row))
    return out


def _pool_context():
    """Fork where available (cheap, inherits state); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")
