"""Figure 9 — compensated sleep cycles on application workloads.

CSC (sleep cycles minus the break-even cost, as a percentage of all
router-cycles) for the three power-gated configurations across the
Table 3 workloads.  The paper reports ~70 % for Multi-NoC-PG on Light
and near-zero for Single-NoC-PG everywhere.

The data is a projection of the Figure 8 runs; ``run_fig09`` accepts an
existing fig08 result to avoid re-simulating.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SEED, ExperimentResult
from repro.experiments.fig08_applications import run_fig08

__all__ = ["run_fig09"]

_PG_CONFIGS = ("1NT-128b-PG", "1NT-512b-PG", "4NT-128b-PG")


def run_fig09(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    fig08_result: ExperimentResult | None = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (CSC percentages per workload)."""
    source = fig08_result or run_fig08(scale, seed)
    result = ExperimentResult(
        name="fig09",
        title="Compensated sleep cycles (%), application workloads",
        columns=["workload", "config", "csc_pct"],
        notes="paper: ~70% for 4NT-128b-PG on Light; ~0 for Single-NoC-PG",
    )
    for row in source.rows:
        if row["config"] in _PG_CONFIGS:
            result.rows.append(
                {
                    "workload": row["workload"],
                    "config": row["config"],
                    "csc_pct": row["csc_pct"],
                }
            )
    return result
