"""Figure 11 — comparison of congestion metrics and policies.

All variants are power-gated 4NT-128b Multi-NoCs; what changes is the
subnet-selection discipline and the local congestion metric:

* ``RR``          — round-robin selection + baseline gating,
* ``BFA``         — Catnap with average buffer occupancy,
* ``Delay``       — Catnap with sampled blocking delay,
* ``BFM``         — Catnap with max buffer occupancy + regional OR,
* ``BFM-local``   — BFM without the regional OR network,
* ``IQOcc-local`` — injection-queue occupancy, local only.

Panels (a)-(c) sweep latency vs offered load over uniform / transpose /
bit-complement traffic; panel (d) compares CSC for RR vs BFM.  Expected
shape: BFM and Delay track each other and win; RR pays heavy latency;
BFA/IQOcc lose throughput; BFM-local trails regional BFM on the
non-uniform patterns.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import CongestionConfig, NocConfig

__all__ = ["run_fig11", "fig11_variants", "DEFAULT_LOADS", "VARIANT_NAMES"]

DEFAULT_LOADS = (0.05, 0.12, 0.20, 0.28, 0.36, 0.44)

VARIANT_NAMES = ("RR", "BFA", "Delay", "BFM", "BFM-local", "IQOcc-local")


def fig11_variants() -> dict[str, NocConfig]:
    """Map variant label -> fabric configuration."""
    base = NocConfig.multi_noc(4, power_gating=True)

    def with_metric(metric: str, regional: bool) -> NocConfig:
        return replace(
            base,
            congestion=replace(
                CongestionConfig(), metric=metric, use_regional=regional
            ),
        )

    return {
        "RR": base.with_policy("round_robin"),
        "BFA": with_metric("bfa", True),
        "Delay": with_metric("delay", True),
        "BFM": with_metric("bfm", True),
        "BFM-local": with_metric("bfm", False),
        "IQOcc-local": with_metric("iqocc", False),
    }


def run_fig11(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    patterns: tuple[str, ...] = ("uniform", "transpose", "bit_complement"),
    variants: tuple[str, ...] = VARIANT_NAMES,
) -> ExperimentResult:
    """Regenerate Figure 11 (latency + CSC per metric/policy)."""
    phases = synthetic_phases(scale)
    all_variants = fig11_variants()
    result = ExperimentResult(
        name="fig11",
        title="Congestion metrics: latency and CSC vs offered load",
        columns=[
            "variant", "pattern", "load", "latency", "throughput", "csc_pct",
        ],
        notes=(
            "paper: BFM ~ Delay best; RR high latency/low CSC; "
            "BFA & IQOcc lose throughput; regional beats local on "
            "non-uniform patterns"
        ),
    )
    specs = [
        PointSpec.synthetic(
            all_variants[variant], pattern, load, phases, seed,
            variant=variant,
        )
        for variant in variants
        for pattern in patterns
        for load in loads
    ]
    result.rows.extend(run_sweep(specs))
    return result
