"""Figure 13 — why the injection-rate (IR) congestion metric fails.

Multi-NoC (no power gating) with Catnap's priority selection driven by
the IR metric at thresholds 0.04 … 0.24 packets/node/cycle, on uniform
random and transpose traffic.  Expected shape: uniform random tolerates
a much higher threshold than transpose, whose early saturation demands
a small one — the usable threshold depends on the traffic pattern,
which is exactly the paper's argument for BFM.  (In this simulator the
absolute crossovers sit ~0.6x below the paper's — uniform safe through
~0.12, transpose ~0.04 — with the pattern ratio preserved; see
EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import CongestionConfig, NocConfig

__all__ = ["run_fig13", "DEFAULT_THRESHOLDS", "DEFAULT_LOADS"]

DEFAULT_THRESHOLDS = (0.04, 0.08, 0.12, 0.16, 0.20, 0.24)
DEFAULT_LOADS = (0.05, 0.12, 0.20, 0.28, 0.36, 0.44)


def ir_config(threshold: float) -> NocConfig:
    """4NT-128b with IR-based subnet selection, no power gating."""
    base = NocConfig.multi_noc(4, selection_policy="ir")
    return replace(
        base,
        congestion=replace(
            CongestionConfig(),
            metric="ir",
            injection_rate_threshold=threshold,
        ),
    )


def run_fig13(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    patterns: tuple[str, ...] = ("uniform", "transpose"),
) -> ExperimentResult:
    """Regenerate Figure 13 (latency vs load per IR threshold)."""
    phases = synthetic_phases(scale)
    result = ExperimentResult(
        name="fig13",
        title="IR-policy latency vs offered load, per threshold",
        columns=["pattern", "threshold", "load", "latency", "throughput"],
        notes=(
            "paper: uniform tolerates thresholds up to 0.20; transpose "
            "needs <= 0.08"
        ),
    )
    specs = [
        PointSpec.synthetic(
            ir_config(threshold), pattern, load, phases, seed,
            threshold=threshold,
        )
        for pattern in patterns
        for threshold in thresholds
        for load in loads
    ]
    result.rows.extend(run_sweep(specs))
    return result
