"""Figure 10 — power gating under uniform random synthetic traffic.

Sweeps offered load for 1NT-512b and 4NT-128b with and without power
gating: (a) network power, (b) compensated sleep cycles, (c) accepted
throughput, and (d) average packet latency.  The paper's key points: at
0.03 packets/node/cycle Multi-NoC-PG exposes ~74 % CSC (7.8 W total)
against ~10 % for Single-NoC-PG (24.1 W); throughput is unaffected by
gating; Single-NoC-PG pays a visible latency penalty at low load.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_fig10", "fig10_configs", "DEFAULT_LOADS"]

DEFAULT_LOADS = (0.01, 0.03, 0.07, 0.12, 0.18, 0.25, 0.32, 0.38)


def fig10_configs() -> list[NocConfig]:
    """The four designs of Figure 10."""
    return [
        NocConfig.single_noc_512(),
        NocConfig.multi_noc(4, selection_policy="round_robin"),
        NocConfig.single_noc_512(power_gating=True),
        NocConfig.multi_noc(4, power_gating=True),
    ]


def run_fig10(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    pattern: str = "uniform",
) -> ExperimentResult:
    """Regenerate Figure 10 (power/CSC/throughput/latency vs load).

    The paper also ran transpose and bit complement and reports that
    "our conclusions remained the same for those traffic patterns";
    pass ``pattern`` to verify (`tests/test_experiments.py` does).
    """
    phases = synthetic_phases(scale)
    result = ExperimentResult(
        name="fig10" if pattern == "uniform" else f"fig10_{pattern}",
        title=f"{pattern} sweep, power gating on/off",
        columns=[
            "config", "load", "power_w", "csc_pct", "throughput", "latency",
        ],
        notes=(
            "paper at load 0.03: Multi-PG 7.8W / 74% CSC vs "
            "Single-PG 24.1W / 10% CSC"
        ),
    )
    specs = [
        PointSpec.synthetic(config, pattern, load, phases, seed)
        for config in fig10_configs()
        for load in loads
    ]
    result.rows.extend(run_sweep(specs))
    return result
