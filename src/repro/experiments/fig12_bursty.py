"""Figure 12 — ramp-up and decay with bursty traffic.

The offered load steps 0.01 -> 0.30 at cycle 1000, back to 0.01 at
1500, then 0.01 -> 0.10 at 2000 and back at 2500 (the paper's two
bursts).  Sampled every 50 cycles: offered vs accepted throughput, and
the per-subnet share of injected flits.  Expected shape: accepted
throughput catches the first burst within ~200 cycles using all four
subnets, and the second, smaller burst activates only two subnets.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SEED, ExperimentResult
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_fig12", "burst_schedule"]

SAMPLE_PERIOD = 50
TOTAL_CYCLES = 3000


def burst_schedule() -> list[tuple[int, float]]:
    """The paper's two-burst load schedule."""
    return [(0, 0.01), (1000, 0.30), (1500, 0.01), (2000, 0.10), (2500, 0.01)]


def run_fig12(
    scale: float = 1.0, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Regenerate Figure 12 (time series; ``scale`` ignored — the burst
    schedule is absolute, as in the paper)."""
    config = NocConfig.multi_noc(4, power_gating=True)
    result = ExperimentResult(
        name="fig12",
        title="Bursty traffic: offered vs accepted; subnet utilization",
        columns=[
            "cycle", "offered", "accepted",
            "subnet0", "subnet1", "subnet2", "subnet3",
        ],
        notes=(
            "paper: accepted catches a 0.30 burst in ~200 cycles on all "
            "4 subnets; a 0.10 burst activates only 2"
        ),
    )
    spec = PointSpec.bursty(
        config,
        "uniform",
        tuple(burst_schedule()),
        sample_period=SAMPLE_PERIOD,
        total_cycles=TOTAL_CYCLES,
        seed=seed,
    )
    result.rows.extend(run_sweep([spec]))
    return result
