"""Figure 8 — network power and system performance on applications.

Six configurations (1NT-128b, 1NT-512b, 4NT-128b, each with and without
power gating) run the four Table 3 workloads in the closed loop.  The
no-gating Multi-NoC baseline uses round-robin subnet selection, the
power-gated Multi-NoC uses Catnap (paper §6.1).  Performance is
normalized per workload to 1NT-512b without power gating.

The headline result lives here too: averaged over workloads, Catnap's
4NT-128b-PG consumes ~44 % less network power than 1NT-512b for ~5 %
performance cost (paper: 20 W vs 36 W).
"""

from __future__ import annotations

from repro.experiments.common import (
    APPLICATION_CYCLES,
    DEFAULT_SEED,
    ExperimentResult,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig
from repro.system.workloads import WORKLOAD_NAMES

__all__ = ["run_fig08", "fig08_configs", "headline_summary"]


def fig08_configs() -> list[NocConfig]:
    """The six bars of Figure 8, in the paper's order."""
    return [
        NocConfig.single_noc_128(),
        NocConfig.single_noc_512(),
        NocConfig.multi_noc(4, selection_policy="round_robin"),
        NocConfig.single_noc_128(power_gating=True),
        NocConfig.single_noc_512(power_gating=True),
        NocConfig.multi_noc(4, power_gating=True),
    ]


def run_fig08(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> ExperimentResult:
    """Regenerate Figure 8 (and the Figure 9 CSC data it contains)."""
    cycles = max(2000, round(APPLICATION_CYCLES * scale))
    result = ExperimentResult(
        name="fig08",
        title="Network power and normalized performance, applications",
        columns=[
            "workload", "config", "power_w", "static_w", "dynamic_w",
            "normalized_perf", "csc_pct",
        ],
        notes=(
            "paper avg: Multi-NoC-PG ~20W vs Single-NoC ~36W (-44%), "
            "~5% performance cost"
        ),
    )
    baseline_name = NocConfig.single_noc_512().name
    configs = fig08_configs()
    specs = [
        PointSpec.application(config, workload, cycles, seed)
        for workload in workloads
        for config in configs
    ]
    all_rows = run_sweep(specs)
    for start in range(0, len(all_rows), len(configs)):
        rows = all_rows[start : start + len(configs)]
        baseline_ipc = None
        for config, row in zip(configs, rows):
            if config.name == baseline_name and not config.gating.enabled:
                baseline_ipc = row["ipc"]
        assert baseline_ipc, "baseline configuration missing"
        for row in rows:
            row["normalized_perf"] = row["ipc"] / baseline_ipc
            result.rows.append(row)
    _append_average_rows(result)
    return result


def _append_average_rows(result: ExperimentResult) -> None:
    """Add the per-config 'Average' rows the paper reports."""
    configs = []
    for row in result.rows:
        key = (row["config"], row["policy"])
        if key not in configs:
            configs.append(key)
    for config, policy in configs:
        rows = [
            row
            for row in result.rows
            if row["config"] == config
            and row["policy"] == policy
            and row["workload"] != "Average"
        ]
        count = len(rows)
        result.rows.append(
            {
                "workload": "Average",
                "config": config,
                "policy": policy,
                "power_w": sum(r["power_w"] for r in rows) / count,
                "static_w": sum(r["static_w"] for r in rows) / count,
                "dynamic_w": sum(r["dynamic_w"] for r in rows) / count,
                "normalized_perf": (
                    sum(r["normalized_perf"] for r in rows) / count
                ),
                "csc_pct": sum(r["csc_pct"] for r in rows) / count,
            }
        )


def headline_summary(result: ExperimentResult) -> dict:
    """The paper's headline numbers from a fig08 run.

    Returns average power of 1NT-512b and 4NT-128b-PG, the relative
    power saving, and the average performance cost of Catnap.
    """
    single = result.select(workload="Average", config="1NT-512b")[0]
    multi_pg = result.select(workload="Average", config="4NT-128b-PG")[0]
    return {
        "single_noc_power_w": single["power_w"],
        "multi_noc_pg_power_w": multi_pg["power_w"],
        "power_saving_pct": 100.0
        * (1.0 - multi_pg["power_w"] / single["power_w"]),
        "performance_cost_pct": 100.0
        * (1.0 - multi_pg["normalized_perf"]),
    }
