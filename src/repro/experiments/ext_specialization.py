"""Extension: class-specialized subnets vs Catnap (paper §7.2).

The paper argues against specializing subnets per message class
(CCNoC-style): "separating traffic into different subnets based on
their message type could lead to load imbalance across subnets."  This
extension experiment runs the closed-loop processor with a
class-partitioned policy against Catnap and round-robin, reporting the
per-subnet load balance and performance of each.
"""

from __future__ import annotations

from repro.experiments.common import (
    APPLICATION_CYCLES,
    DEFAULT_SEED,
    ExperimentResult,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.config import NocConfig

__all__ = ["run_ext_class_partition"]

POLICIES = ("catnap", "round_robin", "class_partition")


def run_ext_class_partition(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    workloads: tuple[str, ...] = ("Medium-Heavy",),
) -> ExperimentResult:
    """Compare subnet-specialization against Catnap in the closed loop."""
    cycles = max(2000, round(APPLICATION_CYCLES * scale))
    result = ExperimentResult(
        name="ext_class_partition",
        title="Class-specialized subnets vs Catnap (paper §7.2 argument)",
        columns=[
            "workload", "policy", "normalized_perf", "miss_latency",
            "share_imbalance", "csc_pct",
        ],
        notes=(
            "share_imbalance = max/min per-subnet injected share; "
            "specialization concentrates flits on the data subnets"
        ),
    )
    specs = [
        PointSpec.application(
            NocConfig.multi_noc(
                4, power_gating=True, selection_policy=policy
            ),
            workload,
            cycles,
            seed,
        )
        for workload in workloads
        for policy in POLICIES
    ]
    all_rows = run_sweep(specs)
    for start in range(0, len(all_rows), len(POLICIES)):
        rows = all_rows[start : start + len(POLICIES)]
        baseline_ipc = None
        for policy, row in zip(POLICIES, rows):
            shares = row["subnet_share"]
            positive = [s for s in shares if s > 0] or [1.0]
            row["share_imbalance"] = max(shares) / min(positive)
            if policy == "catnap":
                baseline_ipc = row["ipc"]
        assert baseline_ipc
        for row in rows:
            row["normalized_perf"] = row["ipc"] / baseline_ipc
            result.rows.append(row)
    return result
