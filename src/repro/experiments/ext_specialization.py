"""Extension: class-specialized subnets vs Catnap (paper §7.2).

The paper argues against specializing subnets per message class
(CCNoC-style): "separating traffic into different subnets based on
their message type could lead to load imbalance across subnets."  This
extension experiment runs the closed-loop processor with a
class-partitioned policy against Catnap and round-robin, reporting the
per-subnet load balance and performance of each.
"""

from __future__ import annotations

from repro.experiments.common import (
    APPLICATION_CYCLES,
    DEFAULT_SEED,
    ExperimentResult,
    run_application_point,
)
from repro.noc.config import NocConfig
from repro.system.processor import Processor

__all__ = ["run_ext_class_partition"]

POLICIES = ("catnap", "round_robin", "class_partition")


def run_ext_class_partition(
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    workloads: tuple[str, ...] = ("Medium-Heavy",),
) -> ExperimentResult:
    """Compare subnet-specialization against Catnap in the closed loop."""
    cycles = max(2000, round(APPLICATION_CYCLES * scale))
    result = ExperimentResult(
        name="ext_class_partition",
        title="Class-specialized subnets vs Catnap (paper §7.2 argument)",
        columns=[
            "workload", "policy", "normalized_perf", "miss_latency",
            "share_imbalance", "csc_pct",
        ],
        notes=(
            "share_imbalance = max/min per-subnet injected share; "
            "specialization concentrates flits on the data subnets"
        ),
    )
    for workload in workloads:
        rows = []
        baseline_ipc = None
        for policy in POLICIES:
            config = NocConfig.multi_noc(
                4, power_gating=True, selection_policy=policy
            )
            processor = Processor(config, workload, seed=seed)
            run = processor.run(cycles)
            shares = run.fabric_report.subnet_injection_share
            positive = [s for s in shares if s > 0] or [1.0]
            row = {
                "workload": workload,
                "policy": policy,
                "ipc": run.aggregate_ipc,
                "miss_latency": run.avg_miss_latency,
                "share_imbalance": max(shares) / min(positive),
                "csc_pct": 100 * run.fabric_report.csc_fraction,
            }
            if policy == "catnap":
                baseline_ipc = run.aggregate_ipc
            rows.append(row)
        assert baseline_ipc
        for row in rows:
            row["normalized_perf"] = row["ipc"] / baseline_ipc
            result.rows.append(row)
    return result
