"""Recovery policies: paper-plausible countermeasures for fault classes.

Each mechanism lives in the layer it protects — only the *scheduling*
is here, driven once per cycle from the fault engine's end-of-cycle
hook (so an engine-less fabric never pays for any of it):

``wakeup-timeout``
    :meth:`repro.core.gating.PowerGatingController.wake_on_timeout` —
    a watchdog that force-wakes a sleeping router once traffic has
    demonstrably waited on it for ``wakeup_timeout`` cycles, with
    per-router exponential backoff.  Covers dropped look-ahead wakeups
    and stuck-asleep routers via a redundant wake path that bypasses
    the (faulty) request wire.
``credit-resync``
    :meth:`repro.noc.network.SubnetNetwork.resync_credits` — every
    ``credit_resync_period`` cycles, recompute every upstream credit
    counter from ground truth (capacity − downstream occupancy −
    in-flight), the classic credit-resynchronization handshake.  The
    engine additionally resynchronizes the NI injection credits it can
    see, repairing leaks from dropped flits on injection links.
``rcs-refresh``
    :meth:`repro.core.regional.RegionalCongestionNetwork.refresh` — a
    heartbeat scrub that recomputes the OR-tree output regardless of
    the update-period latch, bounding the staleness of a stuck RCS bit
    to ``rcs_refresh_period`` instead of the whole fault window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.faults.spec import RECOVERY_NAMES

if TYPE_CHECKING:
    from repro.faults.spec import FaultSpec

__all__ = ["RecoveryConfig"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables of the three recovery mechanisms.

    ``enabled`` holds the mechanism names switched on for this
    campaign (a subset of :data:`repro.faults.spec.RECOVERY_NAMES`);
    everything else is a period or backoff parameter.
    """

    enabled: tuple[str, ...] = ()
    #: Cycles a sleeping router may keep traffic waiting before the
    #: gating watchdog force-wakes it.
    wakeup_timeout: int = 32
    #: Multiplier applied to a router's timeout after each forced wake.
    wakeup_backoff: float = 2.0
    #: Upper bound the backoff saturates at.
    wakeup_timeout_max: int = 256
    #: Period of the credit-resynchronization sweep.
    credit_resync_period: int = 64
    #: Period of the RCS heartbeat scrub.
    rcs_refresh_period: int = 24

    def __post_init__(self) -> None:
        unknown = [n for n in self.enabled if n not in RECOVERY_NAMES]
        if unknown:
            raise ValueError(
                f"unknown recovery mechanism(s) {unknown}; "
                f"choose from {list(RECOVERY_NAMES)}"
            )
        if self.wakeup_timeout < 1:
            raise ValueError("wakeup_timeout must be >= 1")
        if self.wakeup_backoff < 1.0:
            raise ValueError("wakeup_backoff must be >= 1.0")
        if self.wakeup_timeout_max < self.wakeup_timeout:
            raise ValueError("wakeup_timeout_max must be >= wakeup_timeout")
        if self.credit_resync_period < 1:
            raise ValueError("credit_resync_period must be >= 1")
        if self.rcs_refresh_period < 1:
            raise ValueError("rcs_refresh_period must be >= 1")

    @property
    def wakeup_timeout_enabled(self) -> bool:
        return "wakeup-timeout" in self.enabled

    @property
    def credit_resync_enabled(self) -> bool:
        return "credit-resync" in self.enabled

    @property
    def rcs_refresh_enabled(self) -> bool:
        return "rcs-refresh" in self.enabled

    @classmethod
    def from_spec(cls, spec: "FaultSpec") -> "RecoveryConfig":
        """Recovery configuration implied by a :class:`FaultSpec`."""
        return cls(enabled=tuple(spec.recover))
