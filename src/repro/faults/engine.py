"""The fault-injection engine: deterministic, zero-overhead when off.

``FaultEngine`` perturbs one :class:`~repro.noc.multinoc.MultiNocFabric`
by *shadowing* a handful of methods with per-instance attributes — the
same contract as :class:`repro.perf.profiler.PhaseProfiler`,
:class:`repro.analysis.invariants.InvariantChecker`, and
:class:`repro.telemetry.hub.TelemetryHub`:

* ``fabric.step`` — arms scheduled events before the cycle and runs
  expiry + recovery policies after it;
* ``gating.request_wakeup`` — drops look-ahead wakeups (``drop-wakeup``);
* ``gating._sleep`` / ``gating._begin_wakeup`` — pins routers awake or
  asleep (``stuck-awake`` / ``stuck-asleep``);
* ``monitor.update`` / ``regional.update`` — forces stuck-at LCS/RCS
  bits after every legitimate recomputation;
* each ``network.deliver_arrivals`` — removes or corrupts link flits in
  flight (``drop-flit`` / ``corrupt-flit``);
* each ``ni.packet_sink`` — counts survived vs. damaged receptions.

Because shadowing only touches *instances*, a fabric without an engine
runs plain class bytecode — fault-off runs take the identical code path
as a build without this package.  Attach order in the fabric
constructor is perf → **faults** → checker → telemetry, so the checker
reconciles post-fault truth and telemetry observes it.

The engine keeps a deterministic event log (armed events, first hits,
resolutions, recovery actions, watchdog trips) whose canonical JSON
rendering is byte-identical for a given schedule — the campaign
driver's serial-vs-parallel acceptance check hashes it.

Accounting ledgers drive the fault-aware invariant checker:
``dropped_flits`` per subnet reconciles flit conservation and
``lost_credits`` (keyed by the checker's ``(subnet, node, in_port,
vc)`` channel identity) reconciles credit conservation, so
``REPRO_CHECK=1`` composes with ``REPRO_FAULTS`` instead of
false-positiving (see docs/faults.md).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable

from repro.faults.recovery import RecoveryConfig
from repro.faults.report import FaultReport
from repro.faults.spec import (
    BLOCKING_CLASSES,
    FaultEvent,
    FaultSpec,
    compile_schedule,
    parse_fault_spec,
)
from repro.noc.topology import Port
from repro.util import env

if TYPE_CHECKING:
    from repro.noc.flit import Packet
    from repro.noc.interface import NetworkInterface
    from repro.noc.multinoc import MultiNocFabric
    from repro.noc.network import SubnetNetwork
    from repro.noc.router import Router

__all__ = ["FaultEngine", "faults_enabled", "maybe_attach"]

#: Hard cap on event-log entries (a runaway-rate backstop; the count of
#: suppressed entries is recorded so a truncated log is detectable).
MAX_LOG_ENTRIES = 100_000


def faults_enabled() -> bool:
    """True when ``REPRO_FAULTS`` asks for fault injection."""
    return env.flag("REPRO_FAULTS")


def maybe_attach(fabric: "MultiNocFabric") -> "FaultEngine | None":
    """Attach an engine to ``fabric`` when ``REPRO_FAULTS`` is set."""
    if not faults_enabled():
        return None
    return FaultEngine.from_env(fabric).attach()


class FaultEngine:
    """Injects one compiled fault schedule into one fabric instance."""

    def __init__(
        self,
        fabric: "MultiNocFabric",
        spec: FaultSpec | None = None,
        schedule: list[FaultEvent] | None = None,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        self.fabric = fabric
        self.spec = spec if spec is not None else FaultSpec()
        self.recovery = (
            recovery
            if recovery is not None
            else RecoveryConfig.from_spec(self.spec)
        )
        if schedule is None:
            schedule = compile_schedule(
                self.spec, fabric.config, fabric.mesh
            )
        self.schedule = sorted(schedule, key=lambda e: (e.cycle, e.seq))
        self.attached = False
        num_subnets = fabric.config.num_subnets
        # --- live state -------------------------------------------------
        self._next_index = 0
        self._drop_wakeup: list[FaultEvent] = []
        self._stuck_asleep: list[FaultEvent] = []
        self._stuck_awake: list[FaultEvent] = []
        self._stuck_lcs: list[FaultEvent] = []
        self._stuck_rcs: list[FaultEvent] = []
        self._drop_flit: list[FaultEvent] = []
        self._corrupt_flit: list[FaultEvent] = []
        self._pending_credit: list[FaultEvent] = []
        self._armed: list[FaultEvent] = []
        # --- ledgers the invariant checker reconciles against -----------
        #: Flits removed in flight, per subnet (flit conservation).
        self.dropped_flits = [0] * num_subnets
        #: Permanently lost credits per (subnet, node, in_port, vc).
        self.lost_credits: dict[tuple[int, int, int, int], int] = {}
        # --- resilience metrics -----------------------------------------
        self.injected_by_subnet = [0] * num_subnets
        self.damaged_packets: set[int] = set()
        self.packets_received = 0
        self.damaged_received = 0
        self.watchdog_trips = 0
        self.forced_wakes = 0
        self.credits_resynced = 0
        self.rcs_scrubbed = 0
        # --- deterministic event log ------------------------------------
        self.event_log: list[dict] = []
        self.truncated_log_entries = 0
        #: (cycle, subnet, name) instants for the telemetry trace.
        self.fault_instants: list[tuple[int, int, str]] = []
        self.recovery_instants: list[tuple[int, int, str]] = []
        # --- saved attributes for detach --------------------------------
        self._saved: list[tuple[object, str, bool, object]] = []
        self._orig_step: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Construction from the environment
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, fabric: "MultiNocFabric") -> "FaultEngine":
        """Build an engine from the ``REPRO_FAULTS`` spec grammar."""
        spec = parse_fault_spec(env.text("REPRO_FAULTS"))
        return cls(fabric, spec)

    # ------------------------------------------------------------------
    # Attach / detach (per-instance shadowing)
    # ------------------------------------------------------------------
    def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
        had = name in obj.__dict__
        self._saved.append((obj, name, had, obj.__dict__.get(name)))
        setattr(obj, name, replacement)

    def attach(self) -> "FaultEngine":
        """Install every hook on the fabric; returns ``self``."""
        if self.attached:
            return self
        fabric = self.fabric
        gating = fabric.gating
        monitor = fabric.monitor
        regional = monitor.regional
        self._orig_step = fabric.step
        self._orig_request_wakeup = gating.request_wakeup
        self._orig_sleep = gating._sleep
        self._orig_begin_wakeup = gating._begin_wakeup
        self._orig_monitor_update = monitor.update
        self._orig_regional_update = regional.update
        self._shadow(fabric, "step", self._fault_step)
        self._shadow(gating, "request_wakeup", self._tap_request_wakeup)
        self._shadow(gating, "_sleep", self._tap_sleep)
        self._shadow(gating, "_begin_wakeup", self._tap_begin_wakeup)
        self._shadow(monitor, "update", self._tap_monitor_update)
        self._shadow(regional, "update", self._tap_regional_update)
        for network in fabric.subnets:
            self._shadow(
                network,
                "deliver_arrivals",
                self._make_deliver_tap(network, network.deliver_arrivals),
            )
        for ni in fabric.nis:
            self._shadow(
                ni, "packet_sink", self._make_sink_tap(ni.packet_sink)
            )
        if self.recovery.wakeup_timeout_enabled:
            gating.arm_wake_timeout(
                self.recovery.wakeup_timeout,
                self.recovery.wakeup_backoff,
                self.recovery.wakeup_timeout_max,
            )
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every hook, restoring the pre-attach attributes."""
        if not self.attached:
            return
        for obj, name, had, value in reversed(self._saved):
            if had:
                setattr(obj, name, value)
            else:
                delattr(obj, name)
        self._saved.clear()
        self.fabric.gating._wake_timeout = None
        self._orig_step = None
        self.attached = False

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _log(self, entry: dict[str, Any]) -> None:
        if len(self.event_log) >= MAX_LOG_ENTRIES:
            self.truncated_log_entries += 1
            return
        self.event_log.append(entry)

    def event_log_lines(self) -> list[str]:
        """Canonical JSON rendering of the event log, one line each."""
        return [
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in self.event_log
        ]

    def event_digest(self) -> str:
        """SHA-256 over the canonical event log (determinism witness)."""
        payload = "\n".join(self.event_log_lines())
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    # The shadowed step
    # ------------------------------------------------------------------
    def _fault_step(self) -> None:
        fabric = self.fabric
        cycle = fabric.cycle
        self._begin_cycle(cycle)
        orig_step = self._orig_step
        if orig_step is None:  # pragma: no cover - attach() sets it
            raise RuntimeError("fault engine is not attached")
        orig_step()
        self._end_cycle(cycle)

    _ACTIVE_LIST = {
        "drop-wakeup": "_drop_wakeup",
        "stuck-asleep": "_stuck_asleep",
        "stuck-awake": "_stuck_awake",
        "stuck-lcs-0": "_stuck_lcs",
        "stuck-lcs-1": "_stuck_lcs",
        "stuck-rcs-0": "_stuck_rcs",
        "stuck-rcs-1": "_stuck_rcs",
        "drop-flit": "_drop_flit",
        "corrupt-flit": "_corrupt_flit",
    }

    def _begin_cycle(self, cycle: int) -> None:
        schedule = self.schedule
        while (
            self._next_index < len(schedule)
            and schedule[self._next_index].cycle <= cycle
        ):
            event = schedule[self._next_index]
            self._next_index += 1
            self._arm(event, cycle)

    def _arm(self, event: FaultEvent, cycle: int) -> None:
        self._armed.append(event)
        if 0 <= event.subnet < len(self.injected_by_subnet):
            self.injected_by_subnet[event.subnet] += 1
        self._log({"cycle": cycle, "event": "arm", **event.key()})
        self.fault_instants.append(
            (cycle, max(event.subnet, 0), f"fault {event.fault}")
        )
        if event.fault == "lost-credit":
            self._apply_lost_credit(event, cycle)
            return
        getattr(self, self._ACTIVE_LIST[event.fault]).append(event)

    def _apply_lost_credit(self, event: FaultEvent, cycle: int) -> None:
        network = self.fabric.subnets[event.subnet]
        router = network.routers[event.node]
        credits = router.credits[event.port]
        if credits[event.vc] <= 0:
            self._resolve(event, "masked", cycle)
            return
        credits[event.vc] -= 1
        key = (
            event.subnet,
            router.neighbor_node[event.port],
            Port.OPPOSITE[event.port],
            event.vc,
        )
        self.lost_credits[key] = self.lost_credits.get(key, 0) + 1
        event.hits += 1
        self._log({"cycle": cycle, "event": "hit", "seq": event.seq})
        self._pending_credit.append(event)

    def _resolve(self, event: FaultEvent, outcome: str, cycle: int) -> None:
        if event.resolved:
            return
        event.resolved = outcome
        self._log(
            {"cycle": cycle, "event": outcome, "seq": event.seq}
        )

    def _end_cycle(self, cycle: int) -> None:
        for name in (
            "_drop_wakeup",
            "_stuck_asleep",
            "_stuck_awake",
            "_stuck_lcs",
            "_stuck_rcs",
            "_drop_flit",
            "_corrupt_flit",
        ):
            active: list[FaultEvent] = getattr(self, name)
            if not active:
                continue
            remaining: list[FaultEvent] = []
            for event in active:
                if cycle + 1 >= event.cycle + event.duration:
                    self._resolve(
                        event,
                        "effective" if event.hits else "masked",
                        cycle,
                    )
                else:
                    remaining.append(event)
            if len(remaining) != len(active):
                active[:] = remaining
        self._run_recovery(cycle)

    # ------------------------------------------------------------------
    # Recovery scheduling
    # ------------------------------------------------------------------
    def _run_recovery(self, cycle: int) -> None:
        recovery = self.recovery
        fabric = self.fabric
        if recovery.wakeup_timeout_enabled:
            forced = fabric.gating.wake_on_timeout(cycle, fabric.nis)
            if forced:
                self.forced_wakes += forced
                self._log(
                    {
                        "cycle": cycle,
                        "event": "recovery",
                        "mechanism": "wakeup-timeout",
                        "count": forced,
                    }
                )
                self.recovery_instants.append(
                    (cycle, 0, "recovery wakeup-timeout")
                )
                for event in self._drop_wakeup:
                    if event.hits:
                        event.recovered = True
        if (
            recovery.credit_resync_enabled
            and cycle
            and cycle % recovery.credit_resync_period == 0
        ):
            self._resync_credits(cycle)
        if (
            recovery.rcs_refresh_enabled
            and cycle
            and cycle % recovery.rcs_refresh_period == 0
        ):
            self._refresh_rcs(cycle)

    def _resync_credits(self, cycle: int) -> None:
        total = 0
        for network in self.fabric.subnets:
            total += network.resync_credits()
            total += self._resync_ni_credits(network)
        if total:
            self.credits_resynced += total
            self._log(
                {
                    "cycle": cycle,
                    "event": "recovery",
                    "mechanism": "credit-resync",
                    "count": total,
                }
            )
            self.recovery_instants.append(
                (cycle, 0, "recovery credit-resync")
            )
        # Truth is now enforced everywhere: the ledger of expected
        # discrepancies is empty and pending lost-credit events are
        # recovered (dropped-flit credit leaks are repaired too, but
        # their packets stay lost — those events remain effective).
        self.lost_credits.clear()
        for event in self._pending_credit:
            event.recovered = True
            self._resolve(event, "recovered", cycle)
        self._pending_credit.clear()

    def _resync_ni_credits(self, network: "SubnetNetwork") -> int:
        """Recompute NI injection credits from ground truth.

        The network-side resync covers router-to-router links; the
        injection link's upstream counter lives in the NI, which the
        engine (unlike the subnet) can see.
        """
        in_flight: dict[tuple[int, int], int] = {}
        for router, in_port, vc, _flit in network.in_flight():
            if in_port == Port.LOCAL:
                key = (id(router), vc)
                in_flight[key] = in_flight.get(key, 0) + 1
        config = network.config
        capacity = config.flits_per_vc
        corrected = 0
        subnet = network.subnet
        for ni in self.fabric.nis:
            router = network.routers[ni.node]
            port = router.ports[Port.LOCAL]
            credits = ni._credits[subnet]
            for vc in range(config.vcs_per_port):
                truth = (
                    capacity
                    - port.vcs[vc].occupancy
                    - in_flight.get((id(router), vc), 0)
                )
                if credits[vc] != truth:
                    corrected += abs(credits[vc] - truth)
                    credits[vc] = truth
        return corrected

    def _refresh_rcs(self, cycle: int) -> None:
        monitor = self.fabric.monitor
        corrected = monitor.regional.refresh(cycle, monitor.lcs)
        if corrected:
            self.rcs_scrubbed += corrected
            self._log(
                {
                    "cycle": cycle,
                    "event": "recovery",
                    "mechanism": "rcs-refresh",
                    "count": corrected,
                }
            )
            self.recovery_instants.append(
                (cycle, 0, "recovery rcs-refresh")
            )
        # The scrub just overwrote every latched bit with ground truth:
        # active stuck-RCS windows are terminated (bounded staleness).
        for event in self._stuck_rcs:
            if event.hits:
                event.recovered = True
            self._resolve(
                event, "recovered" if event.hits else "masked", cycle
            )
        self._stuck_rcs.clear()

    # ------------------------------------------------------------------
    # Fault taps
    # ------------------------------------------------------------------
    @staticmethod
    def _matches(event: FaultEvent, subnet: int, node: int) -> bool:
        return event.subnet in (-1, subnet) and event.node in (-1, node)

    def _tap_request_wakeup(self, router: "Router") -> None:
        for event in self._drop_wakeup:
            if self._matches(event, router.subnet, router.node):
                if not event.hits:
                    self._log(
                        {
                            "cycle": self.fabric.cycle,
                            "event": "hit",
                            "seq": event.seq,
                        }
                    )
                event.hits += 1
                return
        self._orig_request_wakeup(router)

    def _tap_sleep(self, router: "Router", cycle: int) -> None:
        for event in self._stuck_awake:
            if self._matches(event, router.subnet, router.node):
                if not event.hits:
                    self._log(
                        {"cycle": cycle, "event": "hit", "seq": event.seq}
                    )
                event.hits += 1
                return
        self._orig_sleep(router, cycle)

    def _tap_begin_wakeup(
        self, router: "Router", cycle: int, stats: Any
    ) -> None:
        for event in self._stuck_asleep:
            if self._matches(event, router.subnet, router.node):
                if not event.hits:
                    self._log(
                        {"cycle": cycle, "event": "hit", "seq": event.seq}
                    )
                event.hits += 1
                return
        self._orig_begin_wakeup(router, cycle, stats)

    def _tap_monitor_update(
        self,
        cycle: int,
        subnets: list[SubnetNetwork],
        nis: list[NetworkInterface],
    ) -> None:
        self._orig_monitor_update(cycle, subnets, nis)
        if not self._stuck_lcs:
            return
        monitor = self.fabric.monitor
        num_subnets = self.fabric.config.num_subnets
        for event in self._stuck_lcs:
            value = event.fault.endswith("1")
            targets = (
                range(num_subnets)
                if event.subnet == -1
                else (event.subnet,)
            )
            for subnet in targets:
                if monitor.force_lcs(subnet, event.node, value):
                    if not event.hits:
                        self._log(
                            {
                                "cycle": cycle,
                                "event": "hit",
                                "seq": event.seq,
                            }
                        )
                    event.hits += 1

    def _tap_regional_update(
        self, cycle: int, lcs: list[list[bool]]
    ) -> None:
        self._orig_regional_update(cycle, lcs)
        if not self._stuck_rcs:
            return
        regional = self.fabric.monitor.regional
        for event in self._stuck_rcs:
            value = event.fault.endswith("1")
            if regional.force_rcs(event.subnet, event.region, value):
                if not event.hits:
                    self._log(
                        {"cycle": cycle, "event": "hit", "seq": event.seq}
                    )
                event.hits += 1

    def _make_deliver_tap(
        self,
        network: "SubnetNetwork",
        orig: Callable[[int], None],
    ) -> Callable[[int], None]:
        def tap(cycle: int) -> None:
            if self._drop_flit or self._corrupt_flit:
                self._apply_link_faults(network, cycle)
            orig(cycle)

        return tap

    def _apply_link_faults(
        self, network: "SubnetNetwork", cycle: int
    ) -> None:
        slot = network._ring[cycle % network._ring_len]
        subnet = network.subnet
        for event in list(self._drop_flit):
            if not slot:
                return
            if event.subnet not in (-1, subnet):
                continue
            router, in_port, vc, flit = slot.pop(0)
            network.flits_in_network -= 1
            router.expected_arrivals -= 1
            key = (subnet, router.node, in_port, vc)
            self.lost_credits[key] = self.lost_credits.get(key, 0) + 1
            self.dropped_flits[subnet] += 1
            self.damaged_packets.add(flit.packet.packet_id)
            event.hits += 1
            self._log({"cycle": cycle, "event": "hit", "seq": event.seq})
            self._resolve(event, "effective", cycle)
            self._drop_flit.remove(event)
        for event in list(self._corrupt_flit):
            if not slot:
                return
            if event.subnet not in (-1, subnet):
                continue
            flit = slot[0][3]
            self.damaged_packets.add(flit.packet.packet_id)
            event.hits += 1
            self._log({"cycle": cycle, "event": "hit", "seq": event.seq})
            self._resolve(event, "effective", cycle)
            self._corrupt_flit.remove(event)

    def _make_sink_tap(
        self, orig: "Callable[[Packet, int], None] | None"
    ) -> "Callable[[Packet, int], None]":
        def tap(packet: "Packet", cycle: int) -> None:
            self.packets_received += 1
            if packet.packet_id in self.damaged_packets:
                self.damaged_received += 1
            if orig is not None:
                orig(packet, cycle)

        return tap

    # ------------------------------------------------------------------
    # Checker integration
    # ------------------------------------------------------------------
    def dropped_flits_in(self, subnet: int) -> int:
        """Flits deliberately removed in flight from ``subnet``."""
        return self.dropped_flits[subnet]

    def lost_credit(
        self, subnet: int, node: int, in_port: int, vc: int
    ) -> int:
        """Credits deliberately lost on one channel (checker key)."""
        return self.lost_credits.get((subnet, node, in_port, vc), 0)

    def has_blocking_effects(self) -> bool:
        """True when a progress-blocking fault class actually hit."""
        return any(
            event.hits
            for event in self._armed
            if event.fault in BLOCKING_CLASSES
        )

    def note_watchdog_trip(self, cycle: int) -> None:
        """Record an expected deadlock-watchdog trip (checker hook)."""
        self.watchdog_trips += 1
        self._log({"cycle": cycle, "event": "watchdog"})

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def outcome_counts(self) -> dict[str, int]:
        """Armed events bucketed by their (current) outcome."""
        counts = {
            "injected": len(self._armed),
            "masked": 0,
            "recovered": 0,
            "effective": 0,
        }
        for event in self._armed:
            if event.recovered:
                counts["recovered"] += 1
            elif event.resolved == "masked" or not event.hits:
                counts["masked"] += 1
            else:
                counts["effective"] += 1
        return counts

    def report(self) -> FaultReport:
        """Snapshot the engine's resilience metrics."""
        stats = self.fabric.stats
        counts = self.outcome_counts()
        survived = self.packets_received - self.damaged_received
        offered = stats.packets_offered
        return FaultReport(
            injected=counts["injected"],
            masked=counts["masked"],
            recovered=counts["recovered"],
            effective=counts["effective"],
            fatal=self.watchdog_trips,
            packets_offered=offered,
            packets_received=self.packets_received,
            damaged_received=self.damaged_received,
            survival_rate=(survived / offered) if offered else 1.0,
            dropped_flits=sum(self.dropped_flits),
            lost_credits=sum(self.lost_credits.values()),
            forced_wakes=self.forced_wakes,
            credits_resynced=self.credits_resynced,
            rcs_scrubbed=self.rcs_scrubbed,
            event_digest=self.event_digest(),
        )
