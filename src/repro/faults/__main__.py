"""Fault-injection command line: ``python -m repro.faults``.

``campaign`` runs a (fault-class × rate × countermeasure) grid over the
sweep runner and prints the survival table plus an ASCII
survival-vs-rate chart (see docs/faults.md).  ``plan`` compiles a fault
spec into its deterministic event schedule without simulating — useful
for inspecting what a given ``REPRO_FAULTS`` string will inject.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING

from repro.faults.campaign import (
    DEFAULT_CLASSES,
    DEFAULT_RATES,
    campaign_config,
    render_campaign,
    run_campaign,
)
from repro.faults.spec import (
    FAULT_CLASSES,
    compile_schedule,
    parse_fault_spec,
)

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentResult

__all__ = ["main"]


def _comma_list(value: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in value.split(",") if item.strip())


def _comma_floats(value: str) -> tuple[float, ...]:
    return tuple(float(item) for item in _comma_list(value))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic NoC fault-injection campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a fault-rate x fault-class resilience grid",
    )
    campaign.add_argument(
        "--classes",
        type=_comma_list,
        default=DEFAULT_CLASSES,
        metavar="A,B,...",
        help=f"fault classes (default {','.join(DEFAULT_CLASSES)}; "
        f"known: {','.join(FAULT_CLASSES)})",
    )
    campaign.add_argument(
        "--rates",
        type=_comma_floats,
        default=DEFAULT_RATES,
        metavar="R,R,...",
        help="per-cycle arming probabilities "
        f"(default {','.join(map(str, DEFAULT_RATES))})",
    )
    campaign.add_argument(
        "--pattern", default="uniform", help="traffic pattern"
    )
    campaign.add_argument(
        "--load", type=float, default=0.30, help="offered load"
    )
    campaign.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="cycle-count scale factor (CI smoke uses < 1)",
    )
    campaign.add_argument(
        "--seed", type=int, default=42, help="fabric/traffic seed"
    )
    campaign.add_argument(
        "--fault-seed", type=int, default=1, help="fault schedule seed"
    )
    campaign.add_argument(
        "--window", type=int, default=64, help="fault window (cycles)"
    )
    campaign.add_argument(
        "--jobs", type=int, default=None, help="worker count"
    )
    campaign.add_argument(
        "--ledger",
        action="store_true",
        help="record the campaign sweep to a run ledger under "
        "results/obs/ (inspect with `python -m repro.obs`)",
    )

    plan = subparsers.add_parser(
        "plan",
        help="compile a fault spec and print its event schedule",
    )
    plan.add_argument(
        "spec",
        nargs="?",
        default="1",
        help="REPRO_FAULTS spec string (default: all defaults)",
    )

    args = parser.parse_args(argv)

    if args.command == "plan":
        spec = parse_fault_spec(args.spec)
        config = campaign_config()
        from repro.noc.topology import ConcentratedMesh

        mesh = ConcentratedMesh(
            config.mesh_cols, config.mesh_rows, config.tiles_per_node
        )
        events = compile_schedule(spec, config, mesh)
        print(f"spec: {spec.to_string()}")
        print(f"{len(events)} event(s) on {config.name}:")
        for event in events:
            print(json.dumps(event.key(), sort_keys=True))
        return 0

    from repro.util import env

    if args.ledger or env.flag("REPRO_OBS"):
        # The campaign driver calls run_sweep without an observer, so
        # the ledger attaches through the runner's default-observer
        # slot (restored on the way out, crash or not).
        from repro.experiments import runner
        from repro.obs.ledger import LedgerObserver

        runner.set_default_observer(LedgerObserver())
        try:
            result = _run_campaign(args)
        finally:
            runner.set_default_observer(None)
    else:
        result = _run_campaign(args)
    print(render_campaign(result))
    return 0


def _run_campaign(args: argparse.Namespace) -> "ExperimentResult":
    return run_campaign(
        classes=args.classes,
        rates=args.rates,
        pattern=args.pattern,
        load=args.load,
        scale=args.scale,
        seed=args.seed,
        fault_seed=args.fault_seed,
        window=args.window,
        jobs=args.jobs,
    )


if __name__ == "__main__":
    sys.exit(main())
