"""Fault-injection campaigns over the sweep runner.

A campaign fans a (fault-class × fault-rate × countermeasure) grid over
:func:`repro.experiments.runner.run_sweep`: every grid cell is one
:meth:`PointSpec.fault` point — a synthetic-traffic simulation with an
explicitly attached :class:`~repro.faults.engine.FaultEngine` — so
campaigns inherit the sweep layer's worker pool, on-disk cache, and
progress observers for free.  Each cell runs twice, without and with
the recovery mechanisms enabled, which is the resilience experiment the
survival table summarizes: how much of the damage each countermeasure
buys back.

Determinism contract: the fault schedule is compiled from the spec's
own seed, so a campaign's rows — including each cell's event-log
SHA-256 — are byte-identical across runs and across ``--jobs 1`` vs.
``--jobs N`` (asserted in ``tests/test_faults.py``).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    synthetic_phases,
)
from repro.experiments.runner import PointSpec, run_sweep
from repro.faults.engine import FaultEngine
from repro.faults.spec import RECOVERY_NAMES, FaultSpec, parse_fault_spec
from repro.noc.config import SYNTHETIC_PACKET_BITS, NocConfig
from repro.noc.multinoc import MultiNocFabric
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.perf import meters
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern

__all__ = [
    "DEFAULT_CLASSES",
    "DEFAULT_RATES",
    "campaign_config",
    "run_fault_point",
    "campaign_specs",
    "run_campaign",
    "render_campaign",
]

#: Default class grid: one representative of each fault family
#: (gating wake path, credit protocol, link datapath, congestion latch).
DEFAULT_CLASSES = ("drop-wakeup", "lost-credit", "drop-flit", "stuck-rcs-1")

#: Default per-cycle arming probabilities (three decades of stress).
DEFAULT_RATES = (0.001, 0.004, 0.016)


def campaign_config() -> NocConfig:
    """Default campaign fabric: gated 2-subnet 64-core Multi-NoC.

    Small enough that a full default grid runs in seconds, with power
    gating enabled so the wake-path fault classes have a target.
    """
    return NocConfig.mesh_64_core(num_subnets=2, power_gating=True)


def run_fault_point(
    config: NocConfig,
    pattern_name: str,
    load: float,
    phases: SimulationPhases,
    seed: int,
    faults: str,
    packet_bits: int = SYNTHETIC_PACKET_BITS,
) -> dict[str, Any]:
    """One (config, pattern, load, fault-spec) measurement row.

    The fault engine is attached *explicitly* from the point's own
    spec string, replacing any engine the fabric constructor attached
    from ``REPRO_FAULTS`` — a campaign point's faults are part of its
    cache identity and must not depend on ambient environment.
    """
    fabric = MultiNocFabric(config, seed=seed)
    if fabric.faults is not None:
        fabric.faults.detach()
    spec = parse_fault_spec(faults)
    engine = FaultEngine(fabric, spec).attach()
    fabric.faults = engine
    pattern = make_pattern(pattern_name, fabric.mesh)
    source = SyntheticTrafficSource(
        fabric, pattern, load, packet_bits, seed=seed
    )
    sim_report = run_open_loop(fabric, source, phases)
    meters.note_report(sim_report)
    engine.detach()
    fault_report = engine.report()
    return {
        "config": config.name,
        "pattern": pattern_name,
        "load": load,
        "faults": faults,
        "latency": sim_report.avg_packet_latency,
        **fault_report.to_dict(),
    }


def campaign_specs(
    classes: tuple[str, ...] = DEFAULT_CLASSES,
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: NocConfig | None = None,
    pattern: str = "uniform",
    load: float = 0.30,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    fault_seed: int = 1,
    window: int = 64,
) -> list[PointSpec]:
    """Build the campaign grid as pure sweep points.

    Every (class, rate) cell appears twice: unprotected, and with all
    recovery mechanisms enabled (the ``+rec`` variant).
    """
    if config is None:
        config = campaign_config()
    phases = synthetic_phases(scale)
    specs: list[PointSpec] = []
    for fault_class in classes:
        for rate in rates:
            for protected in (False, True):
                fault_spec = FaultSpec(
                    rate=rate,
                    classes=(fault_class,),
                    window=window,
                    start=0,
                    end=phases.total,
                    seed=fault_seed,
                    recover=RECOVERY_NAMES if protected else (),
                )
                specs.append(
                    PointSpec.fault(
                        config,
                        pattern,
                        load,
                        phases,
                        fault_spec.to_string(),
                        seed=seed,
                        fault_class=fault_class,
                        rate=rate,
                        protected=protected,
                        variant=fault_class + ("+rec" if protected else ""),
                    )
                )
    return specs


def run_campaign(
    classes: tuple[str, ...] = DEFAULT_CLASSES,
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: NocConfig | None = None,
    pattern: str = "uniform",
    load: float = 0.30,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    fault_seed: int = 1,
    window: int = 64,
    jobs: int | None = None,
) -> ExperimentResult:
    """Execute the campaign grid and return its survival rows."""
    specs = campaign_specs(
        classes, rates, config, pattern, load, scale, seed, fault_seed,
        window,
    )
    rows = run_sweep(specs, jobs=jobs)
    return ExperimentResult(
        name="fault-campaign",
        title="packet survival under injected faults",
        rows=rows,
        columns=[
            "fault_class",
            "protected",
            "rate",
            "injected",
            "masked",
            "recovered",
            "effective",
            "fatal",
            "survival_rate",
            "latency",
        ],
        notes=(
            "survival = undamaged received / offered; '+rec' variants "
            "enable all countermeasures (wakeup-timeout, credit-resync, "
            "rcs-refresh)"
        ),
    )


def render_campaign(result: ExperimentResult) -> str:
    """Survival table plus an ASCII survival-vs-rate chart."""
    parts = [result.to_table(precision=4)]
    try:
        parts.append(
            result.to_chart(x="rate", y="survival_rate", group="variant")
        )
    except (KeyError, ValueError):  # single-rate grids have no curve
        pass
    return "\n\n".join(parts)
