"""Deterministic fault injection and recovery for the Catnap simulator.

The package follows the repository's observer contract: a
:class:`~repro.faults.engine.FaultEngine` attaches to one fabric by
shadowing a handful of methods with per-instance attributes, so a
fabric without an engine runs unmodified class bytecode — zero
overhead when off.  ``REPRO_FAULTS=<spec>`` (or ``--faults`` on the
experiment CLI) attaches an engine at fabric construction; campaigns
attach explicit engines per sweep point instead.

Modules
-------
``spec``
    Declarative :class:`FaultSpec`, the ``REPRO_FAULTS`` grammar, and
    the deterministic schedule compiler.
``engine``
    The injection engine: per-instance taps, accounting ledgers, the
    canonical event log, and recovery scheduling.
``recovery``
    :class:`RecoveryConfig` — which countermeasures run, and their
    timeouts/periods.
``report``
    :class:`FaultReport` — end-of-run resilience metrics.
``campaign``
    Grid driver over :func:`repro.experiments.runner.run_sweep`; also
    ``python -m repro.faults campaign``.

See ``docs/faults.md`` for the full model.
"""

from repro.faults.engine import FaultEngine, faults_enabled, maybe_attach
from repro.faults.recovery import RecoveryConfig
from repro.faults.report import FaultReport
from repro.faults.spec import (
    BLOCKING_CLASSES,
    FAULT_CLASSES,
    RECOVERY_NAMES,
    WINDOWED_CLASSES,
    FaultEvent,
    FaultSpec,
    compile_schedule,
    parse_fault_spec,
)

__all__ = [
    "BLOCKING_CLASSES",
    "FAULT_CLASSES",
    "RECOVERY_NAMES",
    "WINDOWED_CLASSES",
    "FaultEngine",
    "FaultEvent",
    "FaultReport",
    "FaultSpec",
    "RecoveryConfig",
    "compile_schedule",
    "faults_enabled",
    "maybe_attach",
    "parse_fault_spec",
]
