"""Declarative fault specifications and deterministic schedules.

A fault campaign is described by a :class:`FaultSpec` — either built
directly or parsed from the ``REPRO_FAULTS`` environment grammar — and
compiled into a :class:`FaultEvent` schedule by :func:`compile_schedule`.
The compiler draws every stochastic choice (cycle, class, target) from a
:class:`repro.util.rng.DeterministicRng` substream of the spec's seed, so
the schedule — and therefore the engine's event log — is byte-identical
for a given ``(spec, config, mesh)`` triple, across runs and across
serial vs. parallel sweeps.

Spec grammar (semicolon-separated ``key=value`` pairs)::

    REPRO_FAULTS="rate=0.002;classes=drop-wakeup,lost-credit;window=64;
                  start=0;end=20000;seed=7;recover=all"

``rate``
    Per-cycle probability of arming one fault event (default 0.001).
``classes``
    Comma-separated subset of :data:`FAULT_CLASSES` (default: all).
``window``
    Active duration in cycles of windowed fault classes (default 64).
``start`` / ``end``
    Cycle range the compiler draws events in (default 0 / 20000).
``seed``
    Schedule seed (default 1); independent of the fabric seed.
``max``
    Hard cap on scheduled events (default unlimited).
``recover``
    Countermeasures to enable: ``none`` (default), ``all``, or a
    comma list of :data:`RECOVERY_NAMES`
    (see :mod:`repro.faults.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from typing import TYPE_CHECKING

from repro.util.rng import DeterministicRng

if TYPE_CHECKING:
    from repro.noc.config import NocConfig
    from repro.noc.topology import ConcentratedMesh

__all__ = [
    "FAULT_CLASSES",
    "WINDOWED_CLASSES",
    "BLOCKING_CLASSES",
    "RECOVERY_NAMES",
    "FaultSpec",
    "FaultEvent",
    "parse_fault_spec",
    "compile_schedule",
]

#: Every fault class the engine can inject (ISSUE 5 tentpole list).
FAULT_CLASSES = (
    "drop-wakeup",    # look-ahead wakeup requests are swallowed
    "lost-credit",    # one upstream credit disappears (one-shot)
    "drop-flit",      # one link flit vanishes in flight
    "corrupt-flit",   # one link flit is delivered with damaged payload
    "stuck-rcs-0",    # a regional congestion bit is stuck at 0
    "stuck-rcs-1",    # a regional congestion bit is stuck at 1
    "stuck-lcs-0",    # a local congestion bit is stuck at 0
    "stuck-lcs-1",    # a local congestion bit is stuck at 1
    "stuck-asleep",   # a router's wakeup transition is suppressed
    "stuck-awake",    # a router's sleep transition is suppressed
)

#: Classes whose events stay active for ``window`` cycles (the rest are
#: one-shots applied at their scheduled cycle).
WINDOWED_CLASSES = frozenset(
    name for name in FAULT_CLASSES if name != "lost-credit"
)

#: Classes that can block forward progress indefinitely — the invariant
#: checker downgrades deadlock-watchdog trips to *expected* only when
#: one of these actually took effect (see docs/faults.md).
BLOCKING_CLASSES = frozenset(
    ("drop-wakeup", "lost-credit", "drop-flit", "stuck-asleep")
)

#: Recovery mechanism names accepted by ``recover=`` (implemented in
#: :mod:`repro.faults.recovery`).
RECOVERY_NAMES = ("wakeup-timeout", "credit-resync", "rcs-refresh")

#: Default horizon for schedules parsed from the environment; events
#: past the simulated length simply never arm.
DEFAULT_END = 20_000


@dataclass(frozen=True)
class FaultSpec:
    """One campaign's declarative fault description."""

    rate: float = 0.001
    classes: tuple[str, ...] = FAULT_CLASSES
    window: int = 64
    start: int = 0
    end: int = DEFAULT_END
    seed: int = 1
    max_events: int | None = None
    recover: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if self.window < 1:
            raise ValueError("fault window must be >= 1")
        if self.start < 0 or self.end < self.start:
            raise ValueError("need 0 <= start <= end")
        unknown = [c for c in self.classes if c not in FAULT_CLASSES]
        if unknown:
            raise ValueError(
                f"unknown fault class(es) {unknown}; "
                f"choose from {list(FAULT_CLASSES)}"
            )
        if not self.classes:
            raise ValueError("at least one fault class is required")
        bad = [r for r in self.recover if r not in RECOVERY_NAMES]
        if bad:
            raise ValueError(
                f"unknown recovery {bad}; "
                f"choose from {list(RECOVERY_NAMES)}"
            )

    def with_recovery(self, *names: str) -> "FaultSpec":
        """Copy with the given countermeasures enabled."""
        merged = tuple(
            dict.fromkeys((*self.recover, *names))
        )
        return replace(self, recover=merged)

    def to_string(self) -> str:
        """Round-trippable ``key=value;...`` form (the env grammar)."""
        parts = [
            f"rate={self.rate:g}",
            "classes=" + ",".join(self.classes),
            f"window={self.window}",
            f"start={self.start}",
            f"end={self.end}",
            f"seed={self.seed}",
        ]
        if self.max_events is not None:
            parts.append(f"max={self.max_events}")
        if self.recover:
            parts.append("recover=" + ",".join(self.recover))
        return ";".join(parts)


@dataclass
class FaultEvent:
    """One scheduled fault occurrence.

    Target fields default to ``-1`` ("unused for this class"); tests may
    set ``subnet`` / ``node`` to ``-1`` deliberately as a wildcard
    matching every subnet / node.  ``duration`` is 0 for one-shots.
    """

    seq: int
    cycle: int
    fault: str
    subnet: int = -1
    node: int = -1
    region: int = -1
    port: int = -1
    vc: int = -1
    duration: int = 0
    #: Filled in by the engine while the event is live.
    hits: int = field(default=0, compare=False)
    recovered: bool = field(default=False, compare=False)
    resolved: str = field(default="", compare=False)

    def key(self) -> dict[str, int | str]:
        """JSON-safe identity (engine bookkeeping excluded)."""
        return {
            "seq": self.seq,
            "cycle": self.cycle,
            "fault": self.fault,
            "subnet": self.subnet,
            "node": self.node,
            "region": self.region,
            "port": self.port,
            "vc": self.vc,
            "duration": self.duration,
        }


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultSpec`.

    ``"1"`` is accepted as "all defaults" so ``REPRO_FAULTS=1`` works
    like the other ``REPRO_*`` switches.
    """
    text = text.strip()
    if text in ("", "1"):
        return FaultSpec()
    fields: dict[str, object] = {}
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec fragment {part!r}: expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "rate":
            fields["rate"] = float(value)
        elif key == "classes":
            fields["classes"] = tuple(
                item.strip() for item in value.split(",") if item.strip()
            )
        elif key == "window":
            fields["window"] = int(value)
        elif key == "start":
            fields["start"] = int(value)
        elif key == "end":
            fields["end"] = int(value)
        elif key == "seed":
            fields["seed"] = int(value)
        elif key == "max":
            fields["max_events"] = int(value)
        elif key == "recover":
            if value == "none":
                fields["recover"] = ()
            elif value == "all":
                fields["recover"] = RECOVERY_NAMES
            else:
                fields["recover"] = tuple(
                    item.strip()
                    for item in value.split(",")
                    if item.strip()
                )
        else:
            raise ValueError(
                f"unknown fault spec key {key!r}; known keys: rate, "
                "classes, window, start, end, seed, max, recover"
            )
    return FaultSpec(**fields)  # type: ignore[arg-type]


def compile_schedule(
    spec: FaultSpec, config: NocConfig, mesh: ConcentratedMesh
) -> list[FaultEvent]:
    """Compile ``spec`` into a sorted, deterministic event schedule.

    Parameters
    ----------
    spec:
        The :class:`FaultSpec` to compile.
    config:
        The fabric's :class:`repro.noc.config.NocConfig` (target ranges
        for subnets / VCs).
    mesh:
        The fabric's :class:`repro.noc.topology.ConcentratedMesh`
        (valid nodes, neighbour ports, congestion regions).

    Every draw comes from one ``DeterministicRng(spec.seed, "faults")``
    stream consumed in a fixed order, so two compilations of the same
    inputs are identical element-wise.
    """
    rng = DeterministicRng(spec.seed, "faults")
    num_subnets = config.num_subnets
    num_nodes = mesh.num_nodes
    vcs = config.vcs_per_port
    # Regions mirror RegionalCongestionNetwork's division (capped by
    # mesh dimensions; divisions=2 is the paper's quadrants).
    divisions = config.congestion.rcs_divisions
    num_regions = min(divisions, mesh.cols) * min(divisions, mesh.rows)
    neighbour_ports = [
        sorted(mesh.neighbors(node)) for node in range(num_nodes)
    ]
    events: list[FaultEvent] = []
    seq = 0
    for cycle in range(spec.start, spec.end):
        if rng.random() >= spec.rate:
            continue
        fault = spec.classes[rng.randrange(len(spec.classes))]
        subnet = rng.randrange(num_subnets)
        event = FaultEvent(seq=seq, cycle=cycle, fault=fault, subnet=subnet)
        if fault in ("drop-wakeup", "stuck-asleep", "stuck-awake"):
            event.node = rng.randrange(num_nodes)
            event.duration = spec.window
        elif fault == "lost-credit":
            node = rng.randrange(num_nodes)
            ports = neighbour_ports[node]
            event.node = node
            event.port = ports[rng.randrange(len(ports))]
            event.vc = rng.randrange(vcs)
        elif fault in ("drop-flit", "corrupt-flit"):
            event.duration = spec.window
        elif fault in ("stuck-rcs-0", "stuck-rcs-1"):
            event.region = rng.randrange(num_regions)
            event.duration = spec.window
        else:  # stuck-lcs-0 / stuck-lcs-1
            event.node = rng.randrange(num_nodes)
            event.duration = spec.window
        events.append(event)
        seq += 1
        if spec.max_events is not None and seq >= spec.max_events:
            break
    return events
