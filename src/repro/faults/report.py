"""Resilience metrics emitted by one fault-injected run.

A :class:`FaultReport` is the engine's end-of-run snapshot: how many
scheduled faults actually armed, how they resolved (masked by
architectural slack, repaired by a recovery mechanism, or effective),
how many tripped the deadlock watchdog, and what fraction of offered
packets arrived undamaged.  The ``event_digest`` is a SHA-256 over the
canonical event log — two runs of the same schedule must produce equal
digests regardless of worker count (the campaign driver asserts this).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["FaultReport"]


@dataclass(frozen=True)
class FaultReport:
    """Outcome accounting for one fault-injection run."""

    #: Scheduled events that armed inside the simulated window.
    injected: int
    #: Armed events that never perturbed architectural state.
    masked: int
    #: Armed events whose perturbation a recovery mechanism repaired.
    recovered: int
    #: Armed events whose perturbation reached architectural state.
    effective: int
    #: Deadlock-watchdog trips attributed to injected faults.
    fatal: int
    #: Packets sources attempted to send during the run.
    packets_offered: int
    #: Packets that reached their destination NI (damaged or not).
    packets_received: int
    #: Received packets that lost or corrupted at least one flit.
    damaged_received: int
    #: (received − damaged) / offered; 1.0 when nothing was offered.
    survival_rate: float
    #: Flits deliberately removed in flight.
    dropped_flits: int
    #: Credits still missing from upstream counters at end of run.
    lost_credits: int
    #: Routers force-woken by the wakeup-timeout watchdog.
    forced_wakes: int
    #: Total absolute credit correction applied by credit-resync.
    credits_resynced: int
    #: RCS bits corrected by the refresh heartbeat.
    rcs_scrubbed: int
    #: SHA-256 of the canonical event log (determinism witness).
    event_digest: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON artifacts and sweep rows."""
        return asdict(self)

    def summary_line(self) -> str:
        """One-line human summary for campaign output."""
        return (
            f"injected={self.injected} masked={self.masked} "
            f"recovered={self.recovered} effective={self.effective} "
            f"fatal={self.fatal} survival={self.survival_rate:.4f}"
        )
