"""Cycle-level runtime invariant checking for the Multi-NoC fabric.

When ``REPRO_CHECK=1`` the fabric constructor attaches an
:class:`InvariantChecker` that re-derives, every checked cycle, the
conservation laws the simulator's distributed state must obey:

``gated-arrival``
    No flit is buffered at — or in flight toward — a router whose
    power state is sleep or wakeup (a gated router accepts nothing).
``flit-conservation``
    Per subnet: ``flits_injected == flits_ejected + in-network`` and
    the in-network count equals buffered flits plus link-in-flight
    flits (no loss, no duplication).
``credit-conservation``
    Per (link, VC): upstream credit counter + downstream buffer
    occupancy + flits in flight on the link equals the VC buffer
    capacity.  Covers router-to-router links and the NI-to-router
    injection link.
``router-accounting``
    Router-internal counters (``buffered_flits``,
    ``expected_arrivals``, credit bounds) match first-principles
    recounts.
``gating-state``
    Sleep/wakeup bookkeeping in the gating controller is consistent
    with each router's power state.
``priority-selection``
    The strict-priority (Catnap) selection policy never skips a
    non-congested lower-order subnet.
``deadlock``
    A watchdog: if flits are in the network but no buffer event
    happens for ``stall_cycles`` cycles, the checker builds the
    channel-dependency graph over waiting head flits and raises with
    a cycle witness (or a blocked-head summary when acyclic).

All violations raise :class:`InvariantViolation` carrying the
invariant name, the cycle, and a precise diagnostic.

Fault-aware mode: when a :class:`repro.faults.engine.FaultEngine` is
attached to the same fabric (``REPRO_FAULTS``), the checker reconciles
each law against the engine's ledgers before raising — a flit the
engine deliberately dropped or a credit it deliberately lost is an
*expected* discrepancy, counted in :attr:`InvariantChecker.expected`
instead of raised, and a deadlock-watchdog trip while a
progress-blocking fault class is in effect is reported to the engine
(``fatal`` in its :class:`~repro.faults.report.FaultReport`) rather
than raised.  Any discrepancy beyond what the event log explains still
raises, so ``REPRO_CHECK=1`` composes with fault injection without
losing its teeth.

Overhead is zero when disabled: the checker wraps ``fabric.step`` via
an instance attribute, so an unchecked fabric runs the original bound
method with no extra branches.  ``REPRO_CHECK_INTERVAL`` (default 1)
checks every N-th cycle; the laws hold at every cycle boundary, so
sampling trades coverage for speed without false positives.
``REPRO_CHECK_STALL`` (default 1024) sets the watchdog horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.noc.buffers import vc_candidates
from repro.noc.router import PowerState, Router
from repro.noc.topology import Port
from repro.util import env

if TYPE_CHECKING:
    from repro.noc.flit import Packet
    from repro.noc.multinoc import MultiNocFabric
    from repro.noc.network import SubnetNetwork

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "checking_enabled",
    "maybe_attach",
]

#: A channel is identified as (subnet, node, in_port, vc).
Channel = tuple[int, int, int, int]


class InvariantViolation(RuntimeError):
    """A cycle-level invariant does not hold.

    Attributes
    ----------
    invariant:
        Name of the violated law (e.g. ``"credit-conservation"``).
    cycle:
        Fabric cycle at which the violation was detected.
    details:
        Human-readable diagnostic with the exact location and counts.
    """

    def __init__(self, invariant: str, cycle: int, details: str) -> None:
        super().__init__(f"[{invariant}] cycle {cycle}: {details}")
        self.invariant = invariant
        self.cycle = cycle
        self.details = details


def checking_enabled() -> bool:
    """True when ``REPRO_CHECK`` asks for runtime invariant checking."""
    return env.flag("REPRO_CHECK")


def maybe_attach(fabric: "MultiNocFabric") -> "InvariantChecker | None":
    """Attach a checker to ``fabric`` when ``REPRO_CHECK`` is set."""
    if not checking_enabled():
        return None
    return InvariantChecker(fabric).attach()


class _CheckedPolicy:
    """Transparent proxy asserting strict-priority subnet selection.

    Wraps a selection policy whose class sets ``strict_priority``;
    after every ``select`` it re-reads the congestion monitor and
    raises when a non-congested lower-order subnet was skipped (the
    congestion state is stable within a cycle, so the re-read observes
    exactly what the policy saw).
    """

    def __init__(self, inner: Any, checker: "InvariantChecker") -> None:
        self._inner = inner
        self._checker = checker

    def select(
        self, node: int, cycle: int, packet: "Packet | None" = None
    ) -> int:
        subnet = int(self._inner.select(node, cycle, packet))
        monitor = self._inner.monitor
        if subnet > 0:
            skipped = [
                lower
                for lower in range(subnet)
                if not monitor.is_congested(node, lower)
            ]
            if skipped:
                raise InvariantViolation(
                    "priority-selection",
                    cycle,
                    f"node {node} injected into subnet {subnet} while "
                    f"lower-order subnet(s) {skipped} were not "
                    "congested (strict priority must fill lowest "
                    "first)",
                )
        self._checker.counts["priority-selection"] += 1
        return subnet

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class InvariantChecker:
    """Re-derives fabric conservation laws every checked cycle."""

    def __init__(
        self,
        fabric: "MultiNocFabric",
        interval: int | None = None,
        stall_cycles: int | None = None,
    ) -> None:
        self.fabric = fabric
        if interval is None:
            interval = env.integer("REPRO_CHECK_INTERVAL", 1)
        if stall_cycles is None:
            stall_cycles = env.integer("REPRO_CHECK_STALL", 1024)
        if interval < 1:
            raise ValueError("check interval must be >= 1")
        if stall_cycles < 1:
            raise ValueError("stall_cycles must be >= 1")
        self.interval = interval
        self.stall_cycles = stall_cycles
        #: Checks performed per invariant (diagnostics / test hooks).
        self.counts: dict[str, int] = {
            name: 0
            for name in (
                "gated-arrival",
                "flit-conservation",
                "credit-conservation",
                "router-accounting",
                "gating-state",
                "priority-selection",
                "deadlock",
            )
        }
        #: Violations explained by the fault-injection event log and
        #: downgraded to *expected* instead of raised (fault-aware
        #: mode; zero when no engine is attached).
        self.expected: dict[str, int] = {
            "flit-conservation": 0,
            "credit-conservation": 0,
            "deadlock": 0,
        }
        self._orig_step: Any = None
        self._since_check = 0
        self._last_progress = -1
        self._stalled_for = 0

    def _fault_engine(self) -> Any:
        """The fabric's fault engine, or None.

        Resolved per check (not cached at attach): campaign points
        attach their engine *after* fabric construction, so an
        attach-time snapshot would miss it.
        """
        return getattr(self.fabric, "faults", None)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self) -> "InvariantChecker":
        """Hook the fabric's step loop and its selection policies."""
        fabric = self.fabric
        if self._orig_step is not None:
            raise RuntimeError("invariant checker is already attached")
        self._orig_step = fabric.step
        # Instance attribute shadows the class method: zero overhead
        # for unchecked fabrics, full interception for this one.
        fabric.step = self._checked_step  # type: ignore[method-assign]
        for ni in fabric.nis:
            policy = ni.policy
            if policy is not None and getattr(
                policy, "strict_priority", False
            ):
                ni.policy = _CheckedPolicy(policy, self)
        return self

    def detach(self) -> None:
        """Remove all hooks, restoring the unchecked fast path."""
        if self._orig_step is None:
            return
        del self.fabric.step  # uncover the class method
        self._orig_step = None
        for ni in self.fabric.nis:
            if isinstance(ni.policy, _CheckedPolicy):
                ni.policy = ni.policy._inner

    def _checked_step(self) -> None:
        self._orig_step()
        self._since_check += 1
        if self._since_check >= self.interval:
            self._since_check = 0
            # fabric.cycle was already advanced past the evaluated one.
            self.check_now(self.fabric.cycle - 1)

    def note_steps(self, count: int, cycle: int) -> None:
        """Register ``count`` cycles executed outside the shadowed step.

        The skip backend (:mod:`repro.noc.backend`) advances the fabric
        without calling ``fabric.step``, so it reports progress here to
        keep the checking cadence: the counter advances by ``count``
        and, whenever it crosses the interval, :meth:`check_now` runs
        against the state at ``cycle`` (the last cycle of the batch).
        For single-cycle batches this is exactly ``_checked_step``'s
        behaviour; for quiescence jumps it checks once at the landing
        cycle — sound because the laws hold at every cycle boundary and
        nothing but gating bookkeeping changes during a jump.
        """
        total = self._since_check + count
        if total >= self.interval:
            self._since_check = total % self.interval
            self.check_now(cycle)
        else:
            self._since_check = total

    # ------------------------------------------------------------------
    # The laws
    # ------------------------------------------------------------------
    def check_now(self, cycle: int) -> None:
        """Evaluate every invariant against the current fabric state."""
        for network in self.fabric.subnets:
            census = _RingCensus(network)
            self._check_gated_arrivals(network, census, cycle)
            self._check_flit_conservation(network, census, cycle)
            self._check_credit_conservation(network, census, cycle)
            self._check_router_accounting(network, census, cycle)
        self._check_gating_state(cycle)
        self._check_stall(cycle)

    def _check_gated_arrivals(
        self, network: "SubnetNetwork", census: "_RingCensus", cycle: int
    ) -> None:
        self.counts["gated-arrival"] += 1
        for router in network.routers:
            if router.power_state == PowerState.ACTIVE:
                continue
            state = PowerState.NAMES[router.power_state]
            if router.buffered_flits:
                raise InvariantViolation(
                    "gated-arrival",
                    cycle,
                    f"subnet {network.subnet} node {router.node}: "
                    f"{router.buffered_flits} flit(s) buffered at a "
                    f"router in state '{state}' (a gated router must "
                    "be drained; an upstream hop or the gating "
                    "controller skipped a wakeup)",
                )
            inbound = census.per_router.get(id(router), 0)
            if inbound:
                raise InvariantViolation(
                    "gated-arrival",
                    cycle,
                    f"subnet {network.subnet} node {router.node}: "
                    f"{inbound} flit(s) in flight toward a router in "
                    f"state '{state}' (senders must wake the next hop "
                    "before forwarding)",
                )

    def _check_flit_conservation(
        self, network: "SubnetNetwork", census: "_RingCensus", cycle: int
    ) -> None:
        self.counts["flit-conservation"] += 1
        counters = network.counters
        outstanding = counters.flits_injected - counters.flits_ejected
        engine = self._fault_engine()
        dropped = (
            engine.dropped_flits_in(network.subnet)
            if engine is not None
            else 0
        )
        if outstanding != network.flits_in_network + dropped:
            raise InvariantViolation(
                "flit-conservation",
                cycle,
                f"subnet {network.subnet}: injected "
                f"{counters.flits_injected} - ejected "
                f"{counters.flits_ejected} = {outstanding}, but "
                f"flits_in_network = {network.flits_in_network}"
                + (f" + {dropped} injected-fault drops" if dropped else "")
                + " (a flit was lost or duplicated)",
            )
        if dropped:
            self.expected["flit-conservation"] += 1
        buffered = sum(r.buffered_flits for r in network.routers)
        present = buffered + census.total
        if present != network.flits_in_network:
            raise InvariantViolation(
                "flit-conservation",
                cycle,
                f"subnet {network.subnet}: {buffered} buffered + "
                f"{census.total} on links = {present} flit(s), but "
                f"flits_in_network = {network.flits_in_network} "
                "(a flit was lost or duplicated in transit)",
            )

    def _check_credit_conservation(
        self, network: "SubnetNetwork", census: "_RingCensus", cycle: int
    ) -> None:
        self.counts["credit-conservation"] += 1
        capacity = network.config.flits_per_vc
        vcs = network.config.vcs_per_port
        subnet = network.subnet
        engine = self._fault_engine()
        for router in network.routers:
            for out_port in range(Port.COUNT):
                if out_port == Port.LOCAL:
                    continue  # ejection port: no credit loop
                downstream = router.neighbor_router[out_port]
                if downstream is None:
                    continue
                in_port = Port.OPPOSITE[out_port]
                port = downstream.ports[in_port]
                for vc in range(vcs):
                    credits = router.credits[out_port][vc]
                    occupancy = port.vcs[vc].occupancy
                    in_flight = census.per_channel.get(
                        (id(downstream), in_port, vc), 0
                    )
                    lost = (
                        engine.lost_credit(
                            subnet, downstream.node, in_port, vc
                        )
                        if engine is not None
                        else 0
                    )
                    if credits + occupancy + in_flight + lost != capacity:
                        raise InvariantViolation(
                            "credit-conservation",
                            cycle,
                            f"subnet {network.subnet} link "
                            f"{router.node}->{downstream.node} "
                            f"(port {Port.NAMES[out_port]}, vc {vc}): "
                            f"credits {credits} + buffered {occupancy}"
                            f" + in-flight {in_flight}"
                            + (f" + {lost} injected losses" if lost else "")
                            + f" != capacity {capacity} (a credit was "
                            "lost, forged, or returned twice)",
                        )
                    if lost:
                        self.expected["credit-conservation"] += 1
        # NI -> local router injection link of every node.
        for ni in self.fabric.nis:
            router = network.routers[ni.node]
            credits_row = ni._credits[network.subnet]
            port = router.ports[Port.LOCAL]
            for vc in range(vcs):
                credits = credits_row[vc]
                occupancy = port.vcs[vc].occupancy
                in_flight = census.per_channel.get(
                    (id(router), Port.LOCAL, vc), 0
                )
                lost = (
                    engine.lost_credit(subnet, ni.node, Port.LOCAL, vc)
                    if engine is not None
                    else 0
                )
                if credits + occupancy + in_flight + lost != capacity:
                    raise InvariantViolation(
                        "credit-conservation",
                        cycle,
                        f"subnet {network.subnet} NI->router at node "
                        f"{ni.node} (vc {vc}): credits {credits} + "
                        f"buffered {occupancy} + in-flight {in_flight}"
                        + (f" + {lost} injected losses" if lost else "")
                        + f" != capacity {capacity} (injection-side "
                        "credit was lost, forged, or returned twice)",
                    )
                if lost:
                    self.expected["credit-conservation"] += 1

    def _check_router_accounting(
        self, network: "SubnetNetwork", census: "_RingCensus", cycle: int
    ) -> None:
        self.counts["router-accounting"] += 1
        capacity = network.config.flits_per_vc
        for router in network.routers:
            recount = sum(port.occupancy for port in router.ports)
            if recount != router.buffered_flits:
                raise InvariantViolation(
                    "router-accounting",
                    cycle,
                    f"subnet {network.subnet} node {router.node}: "
                    f"buffered_flits = {router.buffered_flits} but "
                    f"ports hold {recount} flit(s)",
                )
            inbound = census.per_router.get(id(router), 0)
            if inbound != router.expected_arrivals:
                raise InvariantViolation(
                    "router-accounting",
                    cycle,
                    f"subnet {network.subnet} node {router.node}: "
                    f"expected_arrivals = {router.expected_arrivals} "
                    f"but {inbound} flit(s) are in flight toward it",
                )
            for out_port in range(Port.COUNT):
                for vc, credits in enumerate(router.credits[out_port]):
                    if not 0 <= credits <= capacity:
                        raise InvariantViolation(
                            "router-accounting",
                            cycle,
                            f"subnet {network.subnet} node "
                            f"{router.node} port "
                            f"{Port.NAMES[out_port]} vc {vc}: credit "
                            f"counter {credits} outside [0, "
                            f"{capacity}]",
                        )

    def _check_gating_state(self, cycle: int) -> None:
        self.counts["gating-state"] += 1
        gating = self.fabric.gating
        for network in self.fabric.subnets:
            for router in network.routers:
                state = gating.state_of(router)
                if (
                    router.power_state == PowerState.SLEEP
                    and state.sleep_start < 0
                ):
                    raise InvariantViolation(
                        "gating-state",
                        cycle,
                        f"subnet {network.subnet} node {router.node}: "
                        "router is asleep but the controller has no "
                        "open sleep period for it",
                    )
                if (
                    router.power_state == PowerState.WAKEUP
                    and state.wake_ready < 0
                ):
                    raise InvariantViolation(
                        "gating-state",
                        cycle,
                        f"subnet {network.subnet} node {router.node}: "
                        "router is waking but the controller never "
                        "scheduled its wake_ready cycle",
                    )

    # ------------------------------------------------------------------
    # Deadlock watchdog
    # ------------------------------------------------------------------
    def _progress_counter(self) -> int:
        total = 0
        for network in self.fabric.subnets:
            counters = network.counters
            total += (
                counters.flits_injected
                + counters.flits_ejected
                + counters.buffer_reads
                + counters.buffer_writes
            )
        return total

    def _check_stall(self, cycle: int) -> None:
        self.counts["deadlock"] += 1
        if self.fabric.in_flight_flits == 0:
            self._last_progress = -1
            self._stalled_for = 0
            return
        progress = self._progress_counter()
        if progress != self._last_progress:
            self._last_progress = progress
            self._stalled_for = 0
            return
        self._stalled_for += self.interval
        if self._stalled_for >= self.stall_cycles:
            engine = self._fault_engine()
            if engine is not None and engine.has_blocking_effects():
                # A progress-blocking fault class actually hit: the
                # stall is an injected outcome, not a simulator bug.
                # Report it to the engine (its FaultReport counts the
                # trip as fatal) and re-arm the watchdog.
                self.expected["deadlock"] += 1
                engine.note_watchdog_trip(cycle)
                self._stalled_for = 0
                return
            raise InvariantViolation(
                "deadlock",
                cycle,
                f"no buffer event for {self._stalled_for} cycles with "
                f"{self.fabric.in_flight_flits} flit(s) in the "
                "network\n" + self._dependency_witness(),
            )

    def _dependency_witness(self) -> str:
        """Channel-dependency-graph cycle witness (or a stall summary).

        Nodes are (subnet, node, in_port, vc) channels holding a head
        flit; an edge points at the downstream channel whose full
        buffer (exhausted credits / held output VC) blocks the head.
        A cycle in this graph is a true circular wait.
        """
        graph: dict[Channel, list[Channel]] = {}
        notes: dict[Channel, str] = {}
        for network in self.fabric.subnets:
            subnet = network.subnet
            for router in network.routers:
                for in_port in range(Port.COUNT):
                    for vc, channel in enumerate(
                        router.ports[in_port].vcs
                    ):
                        if not channel.fifo:
                            continue
                        key: Channel = (
                            subnet, router.node, in_port, vc,
                        )
                        flit = channel.fifo[0]
                        out_port = flit.route
                        if out_port == Port.LOCAL:
                            notes[key] = "ejecting (should progress)"
                            graph[key] = []
                            continue
                        downstream = router.neighbor_router[out_port]
                        if downstream is None:
                            notes[key] = "routes off-mesh (!)"
                            graph[key] = []
                            continue
                        if downstream.power_state != PowerState.ACTIVE:
                            notes[key] = (
                                "waiting for wakeup of node "
                                f"{downstream.node} "
                                f"({PowerState.NAMES[downstream.power_state]})"
                            )
                        dep_port = Port.OPPOSITE[out_port]
                        if channel.out_port >= 0:
                            dep_vcs: tuple[int, ...] = (channel.out_vc,)
                        else:
                            dep_vcs = vc_candidates(
                                flit.packet.message_class,
                                router.vcs_per_port,
                            )
                        edges = [
                            (subnet, downstream.node, dep_port, dep_vc)
                            for dep_vc in dep_vcs
                            if router.credits[out_port][dep_vc] == 0
                            or router.out_owner[out_port][dep_vc]
                        ]
                        graph[key] = edges
        cycle_path = _find_cycle(graph)
        if cycle_path is not None:
            lines = ["channel-dependency cycle (circular wait):"]
            for subnet, node, port, vc in cycle_path:
                tag = notes.get((subnet, node, port, vc), "")
                lines.append(
                    f"  subnet {subnet} node {node} in-port "
                    f"{Port.NAMES[port]} vc {vc}"
                    + (f"  [{tag}]" if tag else "")
                )
            return "\n".join(lines)
        lines = ["no dependency cycle found; blocked head flits:"]
        for key in sorted(graph):
            subnet, node, port, vc = key
            tag = notes.get(key, "blocked on downstream buffer")
            lines.append(
                f"  subnet {subnet} node {node} in-port "
                f"{Port.NAMES[port]} vc {vc}: {tag}"
            )
            if len(lines) > 20:
                lines.append(f"  ... ({len(graph)} blocked channels)")
                break
        return "\n".join(lines)


class _RingCensus:
    """Counts of link-in-flight flits of one subnet, by destination."""

    __slots__ = ("per_channel", "per_router", "total")

    def __init__(self, network: "SubnetNetwork") -> None:
        per_channel: dict[tuple[int, int, int], int] = {}
        per_router: dict[int, int] = {}
        total = 0
        for router, in_port, vc, _flit in network.in_flight():
            channel_key = (id(router), in_port, vc)
            per_channel[channel_key] = per_channel.get(channel_key, 0) + 1
            per_router[id(router)] = per_router.get(id(router), 0) + 1
            total += 1
        self.per_channel = per_channel
        self.per_router = per_router
        self.total = total


def _find_cycle(
    graph: dict[Channel, list[Channel]]
) -> list[Channel] | None:
    """First cycle in ``graph`` via iterative three-color DFS."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Channel, int] = {node: WHITE for node in graph}
    parent: dict[Channel, Channel | None] = {}
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack: list[tuple[Channel, Iterator[Channel]]] = [
            (start, iter(graph[start]))
        ]
        color[start] = GRAY
        parent[start] = None
        while stack:
            node, edges = stack[-1]
            advanced = False
            for nxt in edges:
                if nxt not in graph:
                    continue
                if color[nxt] == GRAY:
                    # Found a back edge: unwind the cycle.
                    path = [node]
                    walk = node
                    while walk != nxt:
                        step = parent[walk]
                        if step is None:
                            break
                        walk = step
                        path.append(walk)
                    path.reverse()
                    return path
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(graph[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None
