"""``python -m repro.analysis`` — static analysis command line.

Subcommands::

    python -m repro.analysis lint                  # SIM001-SIM006, src/repro
    python -m repro.analysis lint path/ --no-baseline
    python -m repro.analysis contracts             # SIM101-SIM105, whole tree
    python -m repro.analysis contracts --format json --output report.json
    python -m repro.analysis contracts --write-baseline
    python -m repro.analysis rules                 # print the full catalogue

``lint`` runs the per-file passes; ``contracts`` parses the whole
package into a symbol table and verifies the architectural contracts
(shadowing discipline, backend seams, report/cache-key determinism,
the ``REPRO_*`` env registry, ``__slots__`` discipline) — see
``docs/analysis.md``.

Exit status: 0 when no (new) violations were found, 1 otherwise, 2 on
usage errors.  When the committed baseline (``lint-baseline.json`` at
the repository root) exists it is applied by default, so CI and local
runs fail only on *new* violations; pass ``--no-baseline`` for the
full list.  Both subcommands share one baseline file: fingerprints
embed the rule code, so entries never collide across tools.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.contracts import check_tree, default_docs_dir
from repro.analysis.lint import (
    LINT_RULES,
    Baseline,
    Violation,
    default_baseline_path,
    default_target,
    lint_paths,
)

__all__ = ["main"]


def _add_report_options(sub: argparse.ArgumentParser) -> None:
    """Options shared by every violation-reporting subcommand."""
    sub.add_argument(
        "--baseline",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="FILE",
        help="suppress violations recorded in FILE (default: the "
        "committed lint-baseline.json)",
    )
    sub.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring any baseline file",
    )
    sub.add_argument(
        "--write-baseline",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="FILE",
        help="record the current violations as the accepted baseline",
    )
    sub.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    sub.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    sub.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints from text output",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Simulator-specific static analysis: per-file lint "
            "(SIM001-SIM006) and whole-program architectural "
            "contracts (SIM101-SIM105)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser(
        "lint", help="run the SIM001-SIM006 per-file lint passes"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories (default: the repro package)",
    )
    _add_report_options(lint)

    contracts = sub.add_parser(
        "contracts",
        help="run the SIM101-SIM105 whole-program contract checks",
    )
    contracts.add_argument(
        "root",
        nargs="?",
        type=Path,
        help="package root to analyze (default: the repro package)",
    )
    contracts.add_argument(
        "--docs",
        type=Path,
        default=None,
        metavar="DIR",
        help="docs directory for the drift checks (default: the "
        "repository's docs/; pass a nonexistent path to skip)",
    )
    _add_report_options(contracts)

    sub.add_parser("rules", help="print the rule catalogue")
    return parser


def _resolve_baseline_path(option: Path | bool | None) -> Path | None:
    """Map the ``--baseline``/``--write-baseline`` option to a path."""
    if option is None or option is False:
        return None
    if option is True:
        return default_baseline_path()
    return Path(option)


def _violation_payload(violations: list[Violation]) -> list[dict]:
    return [
        {
            "rule": v.rule,
            "severity": v.severity,
            "path": v.path,
            "line": v.line,
            "col": v.col,
            "message": v.message,
            "hint": v.hint,
            "scope": v.scope,
            "snippet": v.snippet,
        }
        for v in violations
    ]


def _report(
    violations: list[Violation],
    args: argparse.Namespace,
    default_run: bool,
) -> int:
    """Shared baseline handling + rendering; returns the exit status.

    ``default_run`` marks an invocation with no explicit target, where
    the committed baseline applies automatically.
    """
    write_path = _resolve_baseline_path(args.write_baseline)
    if write_path is not None:
        Baseline.from_violations(violations).save(write_path)
        print(
            f"wrote baseline with {len(violations)} violation(s) to "
            f"{write_path}"
        )
        return 0

    baseline_path = _resolve_baseline_path(args.baseline)
    applied_baseline: Path | None = None
    if not args.no_baseline:
        if baseline_path is not None:
            if not baseline_path.is_file():
                print(
                    f"error: baseline file not found: {baseline_path}",
                    file=sys.stderr,
                )
                return 2
            applied_baseline = baseline_path
        elif default_run and default_baseline_path().is_file():
            # Default run over the default target: apply the committed
            # baseline so only new violations fail.
            applied_baseline = default_baseline_path()
    if applied_baseline is not None:
        violations = Baseline.load(applied_baseline).filter_new(violations)

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(_violation_payload(violations), indent=2) + "\n"
        )
    if args.format == "json":
        print(json.dumps(_violation_payload(violations), indent=2))
    else:
        for violation in violations:
            print(violation.render(show_hint=not args.no_hints))
        suffix = (
            f" (baseline: {applied_baseline})" if applied_baseline else ""
        )
        errors = sum(1 for v in violations if v.severity == "error")
        warnings = len(violations) - errors
        print(
            f"{len(violations)} violation(s): {errors} error(s), "
            f"{warnings} warning(s){suffix}"
        )
    return 1 if violations else 0


def _cmd_rules() -> int:
    for rule in sorted(LINT_RULES.values(), key=lambda r: r.code):
        print(f"{rule.code} [{rule.severity}] {rule.title}")
        print(f"    fix: {rule.hint}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    targets = args.paths or [default_target()]
    violations = lint_paths(targets)
    return _report(violations, args, default_run=not args.paths)


def _cmd_contracts(args: argparse.Namespace) -> int:
    root = args.root or default_target()
    docs = args.docs if args.docs is not None else default_docs_dir()
    violations = check_tree(root, docs if docs.is_dir() else None)
    return _report(violations, args, default_run=args.root is None)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "contracts":
        return _cmd_contracts(args)
    parser.print_help()
    return 2
