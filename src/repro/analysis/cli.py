"""``python -m repro.analysis`` — static analysis command line.

Subcommands::

    python -m repro.analysis lint                  # lint src/repro
    python -m repro.analysis lint path/ --no-baseline
    python -m repro.analysis lint --baseline       # explicit baseline
    python -m repro.analysis lint --write-baseline # accept current state
    python -m repro.analysis lint --format json
    python -m repro.analysis rules                 # print the catalogue

Exit status: 0 when no (new) violations were found, 1 otherwise, 2 on
usage errors.  When the committed baseline (``lint-baseline.json`` at
the repository root) exists it is applied by default, so CI and local
runs fail only on *new* violations; pass ``--no-baseline`` for the
full list.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.lint import (
    LINT_RULES,
    Baseline,
    Violation,
    default_baseline_path,
    default_target,
    lint_paths,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator-specific static analysis (SIM001-SIM006).",
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser(
        "lint", help="run the SIM001-SIM006 lint passes"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories (default: the repro package)",
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="FILE",
        help="suppress violations recorded in FILE (default: the "
        "committed lint-baseline.json)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring any baseline file",
    )
    lint.add_argument(
        "--write-baseline",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="FILE",
        help="record the current violations as the accepted baseline",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints from text output",
    )

    sub.add_parser("rules", help="print the rule catalogue")
    return parser


def _resolve_baseline_path(option: Path | bool | None) -> Path | None:
    """Map the ``--baseline``/``--write-baseline`` option to a path."""
    if option is None or option is False:
        return None
    if option is True:
        return default_baseline_path()
    return Path(option)


def _cmd_rules() -> int:
    for rule in LINT_RULES.values():
        print(f"{rule.code} [{rule.severity}] {rule.title}")
        print(f"    fix: {rule.hint}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    targets = args.paths or [default_target()]
    violations = lint_paths(targets)

    write_path = _resolve_baseline_path(args.write_baseline)
    if write_path is not None:
        Baseline.from_violations(violations).save(write_path)
        print(
            f"wrote baseline with {len(violations)} violation(s) to "
            f"{write_path}"
        )
        return 0

    baseline_path = _resolve_baseline_path(args.baseline)
    applied_baseline: Path | None = None
    if not args.no_baseline:
        if baseline_path is not None:
            if not baseline_path.is_file():
                print(
                    f"error: baseline file not found: {baseline_path}",
                    file=sys.stderr,
                )
                return 2
            applied_baseline = baseline_path
        elif not args.paths and default_baseline_path().is_file():
            # Default run over the default target: apply the committed
            # baseline so only new violations fail.
            applied_baseline = default_baseline_path()
    if applied_baseline is not None:
        violations = Baseline.load(applied_baseline).filter_new(violations)

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": v.rule,
                        "severity": v.severity,
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "message": v.message,
                        "hint": v.hint,
                        "scope": v.scope,
                        "snippet": v.snippet,
                    }
                    for v in violations
                ],
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render(show_hint=not args.no_hints))
        suffix = (
            f" (baseline: {applied_baseline})" if applied_baseline else ""
        )
        errors = sum(1 for v in violations if v.severity == "error")
        warnings = len(violations) - errors
        print(
            f"{len(violations)} violation(s): {errors} error(s), "
            f"{warnings} warning(s){suffix}"
        )
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    if args.command == "lint":
        return _cmd_lint(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
