"""Simulator-specific static lint passes (rules SIM001–SIM006).

A cycle-level simulator has failure modes generic linters do not look
for: a single unseeded ``random()`` call or an iteration over a ``set``
whose order leaks into simulation state silently breaks the
jobs=1-vs-N byte-identity guarantee of the sweep runner and poisons the
on-disk result cache.  This module walks Python ASTs and reports:

``SIM001``
    Use of stdlib ``random`` / ``numpy.random`` outside
    ``repro.util.rng`` — all simulator randomness must flow through
    :class:`repro.util.rng.DeterministicRng` named substreams.
``SIM002``
    Iteration over a ``set``/``frozenset`` where the order can reach
    simulation state (``dict`` iteration is insertion-ordered and
    therefore allowed).  Wrap the iterable in ``sorted(...)``.
``SIM003``
    Wall-clock reads (``time.time``, ``datetime.now``, …).  Simulation
    code must use the cycle counter; timing code must use
    ``time.perf_counter`` (monotonic).
``SIM004``
    Mutable default arguments (classic aliasing-across-calls bug).
``SIM005``
    Float ``==`` / ``!=`` comparison in convergence or threshold
    logic; use ``math.isclose`` or an explicit tolerance.
``SIM006``
    ``assert`` guarding simulator state in ``repro.noc`` /
    ``repro.core`` / ``repro.traffic`` / ``repro.system`` — stripped
    under ``python -O``; raise ``RuntimeError`` instead.

Rules that only make sense for simulation-state code (SIM002, SIM006)
are scoped to the simulator packages; files whose module cannot be
determined (e.g. scratch files under ``/tmp``) are treated as in-scope
so seeded-violation fixtures always trip their rules.

The committed baseline (``lint-baseline.json`` at the repository root)
records pre-existing violations by a line-number-independent
fingerprint; with a baseline active, only *new* violations fail the
run.  See ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LINT_RULES",
    "SIM_STATE_PACKAGES",
    "Rule",
    "Violation",
    "Baseline",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "default_target",
    "default_baseline_path",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, severity, and the fix it suggests."""

    code: str
    title: str
    severity: str  # "error" | "warning"
    hint: str


LINT_RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "SIM001",
            "unseeded randomness outside repro.util.rng",
            "error",
            "draw from repro.util.rng.DeterministicRng (named "
            "substreams) so adding a consumer never perturbs others",
        ),
        Rule(
            "SIM002",
            "iteration over a set where order reaches simulation state",
            "error",
            "iterate sorted(<set>) (or keep a list/dict); set order "
            "varies with hash seeding and breaks run-to-run identity",
        ),
        Rule(
            "SIM003",
            "wall-clock read in simulator or measurement code",
            "error",
            "use the simulation cycle counter for model time and "
            "time.perf_counter() for elapsed wall time",
        ),
        Rule(
            "SIM004",
            "mutable default argument",
            "error",
            "default to None and create the object inside the "
            "function body",
        ),
        Rule(
            "SIM005",
            "float equality in convergence/threshold comparison",
            "warning",
            "use math.isclose(...) or an explicit tolerance",
        ),
        Rule(
            "SIM006",
            "assert guarding simulator state (stripped under python -O)",
            "error",
            "raise RuntimeError(...) so the guard survives python -O",
        ),
    )
}

#: Packages whose state is simulation state: SIM002/SIM006 apply here.
SIM_STATE_PACKAGES = (
    "repro.noc",
    "repro.core",
    "repro.traffic",
    "repro.system",
)

#: The one module allowed to touch stdlib ``random`` (SIM001).
_RNG_MODULE = "repro.util.rng"

_WALLCLOCK_TIME_ATTRS = {"time", "time_ns", "clock"}
_WALLCLOCK_DATE_ATTRS = {"now", "utcnow", "today"}
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "frozenset",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}
_ITER_TRANSPARENT = {"enumerate", "list", "tuple", "reversed", "iter"}


@dataclass(frozen=True)
class Violation:
    """One lint finding, with enough identity for stable baselining."""

    rule: str
    path: str  # repository-style relative path (or basename)
    line: int
    col: int
    message: str
    scope: str  # enclosing qualname ("<module>" at top level)
    snippet: str  # stripped source line, for fingerprints & reports

    @property
    def severity(self) -> str:
        return LINT_RULES[self.rule].severity

    @property
    def hint(self) -> str:
        return LINT_RULES[self.rule].hint

    def fingerprint(self) -> str:
        """Line- and path-independent identity used by the baseline.

        Keyed on (rule, enclosing scope, source text) so adding or
        removing unrelated lines above a known violation — or renaming
        the file that holds it — does not make it read as new.  Entries
        whose file was deleted simply absorb nothing (the baseline is
        count-based), so stale entries never fail a run.
        """
        return f"{self.rule}|{self.scope}|{self.snippet}"

    def render(self, show_hint: bool = True) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )
        if show_hint:
            text += f"\n    fix: {self.hint}"
        return text


def _module_of(path: Path) -> str | None:
    """Dotted module for ``path`` when it lives under a ``repro`` tree."""
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            dotted = ".".join(parts[index:])
            if dotted.endswith(".py"):
                dotted = dotted[: -len(".py")]
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            return dotted
    return None


def _relpath_of(path: Path) -> str:
    """Stable repository-style path for reports and fingerprints."""
    parts = path.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.name


class _LintVisitor(ast.NodeVisitor):
    """Single-pass collector for all SIM rules over one module."""

    def __init__(
        self, relpath: str, module: str | None, source_lines: list[str]
    ) -> None:
        self.relpath = relpath
        self.module = module
        self.lines = source_lines
        self.violations: list[Violation] = []
        self._scope: list[str] = []
        # Local names known to be bound to sets, per function scope.
        self._set_names: list[set[str]] = [set()]

    # -- helpers -------------------------------------------------------

    def _in_sim_state_code(self) -> bool:
        if self.module is None:
            return True  # unknown module: keep scoped rules active
        return self.module.startswith(SIM_STATE_PACKAGES)

    def _in_repro(self) -> bool:
        return self.module is None or self.module.startswith("repro")

    def _rng_module(self) -> bool:
        return self.module == _RNG_MODULE

    def _snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _record(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.relpath,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=".".join(self._scope) or "<module>",
                snippet=self._snippet(node),
            )
        )

    # -- scope tracking ------------------------------------------------

    def _visit_scoped(self, node: ast.AST, name: str, function: bool) -> None:
        self._scope.append(name)
        if function:
            self._set_names.append(set())
        self.generic_visit(node)
        if function:
            self._set_names.pop()
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name, function=False)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scoped(node, node.name, function=True)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scoped(node, node.name, function=True)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- SIM001: unseeded randomness ----------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if not self._rng_module():
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    "numpy.random"
                ):
                    self._record(
                        "SIM001",
                        node,
                        f"import of {alias.name!r} outside repro.util.rng",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self._rng_module():
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                self._record(
                    "SIM001",
                    node,
                    f"import from {module!r} outside repro.util.rng",
                )
            elif module == "numpy" and any(
                alias.name == "random" for alias in node.names
            ):
                self._record(
                    "SIM001",
                    node,
                    "import of numpy.random outside repro.util.rng",
                )
        if node.module == "time" and self._in_repro():
            names = {alias.name for alias in node.names}
            for name in sorted(names & _WALLCLOCK_TIME_ATTRS):
                self._record(
                    "SIM003",
                    node,
                    f"'from time import {name}' imports a wall-clock "
                    "source",
                )
        self.generic_visit(node)

    # -- SIM002: set iteration ----------------------------------------

    def _tracks_set_binding(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._tracks_set_binding(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = node.value is not None and self._tracks_set_binding(
            node.value
        )
        annotation = ast.unparse(node.annotation) if node.annotation else ""
        if annotation.startswith(("set", "frozenset", "Set", "FrozenSet")):
            is_set = True
        if is_set and isinstance(node.target, ast.Name):
            self._set_names[-1].add(node.target.id)
        self.generic_visit(node)

    def _order_dependent_iterable(self, node: ast.expr) -> bool:
        """True when iterating ``node`` observes set ordering."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "sorted":
                return False
            if name in ("set", "frozenset"):
                return True
            if name in _ITER_TRANSPARENT and node.args:
                return self._order_dependent_iterable(node.args[0])
            return False
        if isinstance(node, ast.Name):
            return any(node.id in names for names in self._set_names)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            # set algebra: a | b, a & b, a - b over known sets
            return self._order_dependent_iterable(
                node.left
            ) or self._order_dependent_iterable(node.right)
        return False

    def _check_iteration(self, iterable: ast.expr) -> None:
        if self._in_sim_state_code() and self._order_dependent_iterable(
            iterable
        ):
            self._record(
                "SIM002",
                iterable,
                "iteration order over a set is not deterministic "
                "across processes",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- SIM003: wall-clock calls -------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_repro():
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if (
                    func.attr in _WALLCLOCK_TIME_ATTRS
                    and base_name == "time"
                ):
                    self._record(
                        "SIM003",
                        node,
                        f"time.{func.attr}() reads the wall clock "
                        "(not monotonic)",
                    )
                elif func.attr in _WALLCLOCK_DATE_ATTRS and base_name in (
                    "datetime",
                    "date",
                ):
                    self._record(
                        "SIM003",
                        node,
                        f"{base_name}.{func.attr}() reads the wall clock",
                    )
        self.generic_visit(node)

    # -- SIM004: mutable defaults -------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            )
            if mutable:
                self._record(
                    "SIM004",
                    default,
                    "mutable default argument is shared across calls",
                )

    # -- SIM005: float equality ---------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        )
        if has_eq:
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self._record(
                    "SIM005",
                    node,
                    "float equality comparison is brittle under "
                    "rounding",
                )
        self.generic_visit(node)

    # -- SIM006: strippable asserts -----------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if self._in_sim_state_code():
            self._record(
                "SIM006",
                node,
                "assert guards simulator state but vanishes under "
                "python -O",
            )
        self.generic_visit(node)


def lint_source(
    source: str, path: Path | str = "<string>"
) -> list[Violation]:
    """Lint Python ``source``; ``path`` scopes the package-aware rules."""
    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    visitor = _LintVisitor(
        _relpath_of(path), _module_of(path), source.splitlines()
    )
    visitor.visit(tree)
    return sorted(
        visitor.violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    )


def lint_file(path: Path | str) -> list[Violation]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(), path)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def lint_paths(paths: Iterable[Path | str]) -> list[Violation]:
    """Lint every Python file under ``paths`` (files or directories)."""
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def default_target() -> Path:
    """The installed ``repro`` package tree (the default lint target)."""
    return Path(__file__).resolve().parents[1]


def default_baseline_path() -> Path:
    """``lint-baseline.json`` at the repository root (may not exist)."""
    return Path(__file__).resolve().parents[3] / "lint-baseline.json"


@dataclass
class Baseline:
    """Accepted pre-existing violations, keyed by fingerprint counts."""

    entries: dict[str, int] = field(default_factory=dict)

    #: Version 2 dropped the file path from fingerprints so renames do
    #: not invalidate a committed baseline.
    VERSION = 2

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        entries: dict[str, int] = {}
        for violation in violations:
            key = violation.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}"
            )
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls({str(k): int(v) for k, v in entries.items()})

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(
                {
                    "version": self.VERSION,
                    "tool": "repro.analysis.lint",
                    "entries": dict(sorted(self.entries.items())),
                },
                indent=2,
            )
            + "\n"
        )

    def filter_new(
        self, violations: Iterable[Violation]
    ) -> list[Violation]:
        """Violations not covered by the baseline (order preserved).

        Each baseline entry absorbs up to its recorded count of
        matching violations; anything beyond that is new.
        """
        budget = dict(self.entries)
        fresh: list[Violation] = []
        for violation in violations:
            key = violation.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(violation)
        return fresh
