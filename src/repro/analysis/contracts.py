"""Whole-program architectural contract checks (rules SIM101–SIM105).

The SIM001–SIM006 lint (:mod:`repro.analysis.lint`) inspects one file
at a time.  The rules here need the whole package: they verify the
*architectural contracts* that ``docs/architecture.md`` documents and
that no single-file pass can see —

``SIM101``
    Shadowing discipline.  Every observer class that installs
    per-instance method shadows (``self._shadow(obj, name, ...)`` or a
    direct ``obj.name = wrapper``) must ship a paired ``detach`` that
    restores every shadowed name — ``_shadow``-based classes by
    unwinding ``reversed(self._saved)``, direct assigns by deleting or
    re-assigning the name.  Attach *order* is also checked: within one
    function, observers must attach in the documented order
    perf → faults → checker → telemetry → explain.
``SIM102``
    Backend conformance.  Every :class:`~repro.noc.backend.
    FabricBackend` subclass must override ``run`` and declare a
    ``name`` registry key, and may touch fabric state only through the
    seams listed in ``docs/architecture.md`` (between the
    ``backend-seams`` markers).  A documented seam that no longer
    exists on the fabric class is doc drift and also fails.
``SIM103``
    Interprocedural determinism taint.  Unseeded randomness,
    set/frozenset-ordered iteration, and wall-clock reads are
    forbidden in any function reachable (through the resolved call
    graph) from :class:`~repro.noc.multinoc.FabricReport` construction
    or from the sweep-cache key (``PointSpec.key``/``digest``) — the
    cross-module version of SIM001/SIM002/SIM003, covering modules the
    per-file lint does not scope.
``SIM104``
    Environment-variable registry.  Every ``REPRO_*`` *read* must go
    through :mod:`repro.util.env` (the one module allowed to touch
    ``os.environ`` for these names), every name passed to an ``env``
    helper must be registered there, and the registry must agree with
    the ``docs/index.md`` table in both directions.  Writes
    (``os.environ[...] = ...`` exporting policy to forked workers)
    are exempt by design.
``SIM105``
    Hot-path attribute discipline.  ``__slots__`` classes in
    ``repro.noc`` / ``repro.core`` may not gain attributes outside
    their declared surface from other modules — a write to an
    undeclared attribute from outside the defining module is flagged.
    (Shadowing seams use ``setattr`` on non-slotted objects and are
    unaffected.)

All findings are reported as :class:`repro.analysis.lint.Violation`
records, so the baseline mechanism, severities, and fix-hints are
shared with the per-file lint; ``python -m repro.analysis contracts``
is the entry point.  See ``docs/analysis.md`` for the JSON schema and
the workflow for adding a new environment variable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint import LINT_RULES, Rule, Violation
from repro.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
)

__all__ = [
    "CONTRACT_RULES",
    "ContractConfig",
    "check_program",
    "check_tree",
    "default_docs_dir",
]

CONTRACT_RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "SIM101",
            "observer shadowing without a faithful paired detach",
            "error",
            "give the observer a detach() that restores every shadowed "
            "name (unwind reversed(self._saved) for _shadow-based "
            "classes), and attach observers in the documented order "
            "perf -> faults -> checker -> telemetry -> explain",
        ),
        Rule(
            "SIM102",
            "fabric backend breaks the FabricBackend contract",
            "error",
            "override run() and the `name` registry key, and reach "
            "fabric state only through the seams docs/architecture.md "
            "lists (update the seam table if a new seam is deliberate)",
        ),
        Rule(
            "SIM103",
            "nondeterminism reachable from FabricReport or the cache key",
            "error",
            "route randomness through repro.util.rng, wrap set "
            "iteration in sorted(...), and keep wall-clock reads out "
            "of any code the report or sweep-cache key can reach",
        ),
        Rule(
            "SIM104",
            "REPRO_* environment variable outside the central registry",
            "error",
            "read the variable through repro.util.env helpers, "
            "register it there with _register(EnvVar(...)), and add it "
            "to the docs/index.md table (writes stay on os.environ)",
        ),
        Rule(
            "SIM105",
            "dynamic attribute added to a __slots__ hot-path class",
            "error",
            "declare the attribute in the class's __slots__ (in its "
            "own module) instead of growing instances from outside",
        ),
    )
}

# One shared catalogue: Violation.severity / .hint resolve through
# LINT_RULES, and `python -m repro.analysis rules` prints everything.
LINT_RULES.update(CONTRACT_RULES)

#: Markers bounding the machine-read seam list in docs/architecture.md.
SEAM_BEGIN = "<!-- backend-seams:begin -->"
SEAM_END = "<!-- backend-seams:end -->"

#: The documented observer attach order (SIM101), by subpackage.
ATTACH_ORDER = ("perf", "faults", "analysis", "telemetry", "explain")

_ENV_TOKEN = re.compile(r"REPRO_[A-Z0-9_]+")
#: A seam table row: the backticked name in the row's first column.
_SEAM_ROW = re.compile(
    r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`", re.MULTILINE
)

#: Wall-clock call targets (time.perf_counter is monotonic: allowed).
_WALLCLOCK_REFS = {"time.time", "time.time_ns", "time.clock"}
_WALLCLOCK_SUFFIXES = (
    ".datetime.now",
    ".datetime.utcnow",
    ".datetime.today",
    ".date.today",
)


@dataclass
class ContractConfig:
    """Where a program's contract anchors live.

    Defaults fit the real tree; tests point ``docs_dir`` at fixture
    docs to exercise the doc-drift checks hermetically.
    """

    docs_dir: Path | None = None
    fabric_class: str = "MultiNocFabric"
    report_class: str = "FabricReport"
    backend_base: str = "FabricBackend"
    #: Qualname suffixes of cache-key functions (SIM103 sinks).
    cache_key_suffixes: tuple[str, ...] = (
        "PointSpec.key",
        "PointSpec.digest",
    )
    #: Subpackages whose ``__slots__`` classes are hot-path (SIM105).
    slots_packages: tuple[str, ...] = ("noc", "core")
    env_prefix: str = "REPRO_"
    env_doc_page: str = "index.md"
    architecture_page: str = "architecture.md"


def default_docs_dir() -> Path:
    """``docs/`` at the repository root (may not exist)."""
    return Path(__file__).resolve().parents[3] / "docs"


def check_tree(
    root: Path | str, docs_dir: Path | str | None = None
) -> list[Violation]:
    """Load the package at ``root`` and run every contract rule."""
    config = ContractConfig(
        docs_dir=Path(docs_dir) if docs_dir is not None else None
    )
    return check_program(Program.load(root), config)


def check_program(
    program: Program, config: ContractConfig
) -> list[Violation]:
    """Run SIM101–SIM105 over a loaded :class:`Program`."""
    violations: list[Violation] = []
    violations += check_shadowing(program)
    violations += check_backends(program, config)
    violations += check_report_taint(program, config)
    violations += check_env_registry(program, config)
    violations += check_slots_discipline(program, config)
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _violation(
    rule: str, mod: ModuleInfo, node: ast.AST, message: str, scope: str
) -> Violation:
    line = getattr(node, "lineno", 0)
    snippet = ""
    if 1 <= line <= len(mod.source_lines):
        snippet = mod.source_lines[line - 1].strip()
    return Violation(
        rule=rule,
        path=mod.relpath,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        scope=scope,
        snippet=snippet,
    )


def _doc_violation(
    rule: str, page: Path, rel: str, line: int, snippet: str, message: str
) -> Violation:
    return Violation(
        rule=rule,
        path=rel,
        line=line,
        col=0,
        message=message,
        scope="<docs>",
        snippet=snippet.strip(),
    )


def _scope_of(fn: FunctionInfo) -> str:
    return fn.qualname[len(fn.module) + 1 :]


def _leftmost_name(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/call chain, if any."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


# ----------------------------------------------------------------------
# SIM101 — shadowing discipline
# ----------------------------------------------------------------------
def check_shadowing(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for mod in program.modules.values():
        for cls in mod.classes.values():
            violations += _check_class_shadowing(mod, cls)
        for fn in _all_functions(mod):
            violations += _check_attach_order(program, mod, fn)
    return violations


def _all_functions(mod: ModuleInfo) -> list[FunctionInfo]:
    out = list(mod.functions.values())
    for cls in mod.classes.values():
        out.extend(cls.methods.values())
    return out


def _saved_list_name(shadow_fn: FunctionInfo) -> str | None:
    """The ``self.<name>`` list ``_shadow`` appends shadow records to."""
    for node in ast.walk(shadow_fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
        ):
            return node.func.value.attr
    return None


def _check_class_shadowing(
    mod: ModuleInfo, cls: ClassInfo
) -> list[Violation]:
    attach = cls.methods.get("attach")
    if attach is None:
        return []
    self_name = _method_self_name(attach)
    uses_shadow_helper = False
    direct_names: list[tuple[str, ast.AST]] = []
    for node in ast.walk(attach.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_shadow"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name
        ):
            uses_shadow_helper = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id == self_name:
                    continue  # plain instance state, not a shadow
                direct_names.append((target.attr, target))
    if not uses_shadow_helper and not direct_names:
        return []

    violations: list[Violation] = []
    detach = cls.methods.get("detach")
    scope = f"{cls.name}.attach"
    if detach is None:
        violations.append(
            _violation(
                "SIM101",
                mod,
                attach.node,
                f"{cls.name}.attach installs method shadows but the "
                "class defines no detach()",
                scope,
            )
        )
        return violations

    if uses_shadow_helper:
        shadow_fn = cls.methods.get("_shadow")
        saved = (
            _saved_list_name(shadow_fn) if shadow_fn is not None else None
        )
        if saved is None or not _detach_unwinds(detach, saved):
            violations.append(
                _violation(
                    "SIM101",
                    mod,
                    detach.node,
                    f"{cls.name}.detach does not unwind "
                    f"reversed(self.{saved or '_saved'}), so shadowed "
                    "names are not restored in reverse attach order",
                    f"{cls.name}.detach",
                )
            )
    restored = _restored_names(detach)
    for name, node in direct_names:
        if name not in restored:
            violations.append(
                _violation(
                    "SIM101",
                    mod,
                    node,
                    f"{cls.name}.attach shadows {name!r} by direct "
                    f"assignment but detach never deletes or restores "
                    f"it",
                    scope,
                )
            )
    return violations


def _method_self_name(fn: FunctionInfo) -> str | None:
    args = fn.node.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else None


def _detach_unwinds(detach: FunctionInfo, saved: str) -> bool:
    """True when detach iterates ``reversed(self.<saved>)``."""
    for node in ast.walk(detach.node):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        it = node.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "reversed"
            and it.args
            and isinstance(it.args[0], ast.Attribute)
            and it.args[0].attr == saved
        ):
            return True
    return False


def _restored_names(detach: FunctionInfo) -> set[str]:
    """Attribute names detach deletes or re-assigns (any receiver)."""
    names: set[str] = set()
    for node in ast.walk(detach.node):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
    return names


def _check_attach_order(
    program: Program, mod: ModuleInfo, fn: FunctionInfo
) -> list[Violation]:
    """Attach calls inside one function must follow ATTACH_ORDER."""
    ranked: list[tuple[int, int, str, ast.Call]] = []
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "attach"
        ):
            continue
        root = _leftmost_name(node.func.value)
        if root is None:
            continue
        target = mod.imports.get(root)
        if target is None and root in mod.classes:
            target = mod.classes[root].qualname
        if target is None:
            continue
        owner = target
        info = program.classes.get(target)
        if info is not None:
            owner = info.module
        rank = _attach_rank(program.package, owner)
        if rank is not None:
            ranked.append((node.lineno, rank, root, node))
    ranked.sort(key=lambda item: item[0])
    violations: list[Violation] = []
    for prev, cur in zip(ranked, ranked[1:]):
        if cur[1] < prev[1]:
            violations.append(
                _violation(
                    "SIM101",
                    mod,
                    cur[3],
                    f"{cur[2]} ({ATTACH_ORDER[cur[1]]}) attaches after "
                    f"{prev[2]} ({ATTACH_ORDER[prev[1]]}), violating "
                    "the documented order perf -> faults -> checker "
                    "-> telemetry -> explain",
                    _scope_of(fn),
                )
            )
    return violations


def _attach_rank(package: str, dotted: str) -> int | None:
    for rank, sub in enumerate(ATTACH_ORDER):
        if dotted.startswith(f"{package}.{sub}.") or dotted == (
            f"{package}.{sub}"
        ):
            return rank
    return None


# ----------------------------------------------------------------------
# SIM102 — backend conformance
# ----------------------------------------------------------------------
def check_backends(
    program: Program, config: ContractConfig
) -> list[Violation]:
    bases = [
        cls
        for cls in program.classes.values()
        if cls.name == config.backend_base
    ]
    if not bases:
        return []
    violations: list[Violation] = []
    subclasses = program.subclasses_of(config.backend_base)
    for sub in subclasses:
        mod = program.modules[sub.module]
        run_owner = None
        for ancestor in program.iter_mro(sub.qualname):
            if "run" in ancestor.methods:
                run_owner = ancestor
                break
        if run_owner is None or run_owner.name == config.backend_base:
            violations.append(
                _violation(
                    "SIM102",
                    mod,
                    sub.node,
                    f"{sub.name} does not implement run(), the "
                    "abstract time-loop entry point",
                    sub.name,
                )
            )
        has_name = any(
            "name" in ancestor.class_attrs
            for ancestor in program.iter_mro(sub.qualname)
            if ancestor.name != config.backend_base
        )
        if not has_name:
            violations.append(
                _violation(
                    "SIM102",
                    mod,
                    sub.node,
                    f"{sub.name} does not declare a `name` registry "
                    "key distinct from the abstract base",
                    sub.name,
                )
            )

    seams, seam_violations = _documented_seams(program, config)
    violations += seam_violations
    if seams is None:
        return violations
    for cls in [*bases, *subclasses]:
        mod = program.modules[cls.module]
        for method in cls.methods.values():
            for access in method.attr_accesses:
                receiver = access.receiver_type
                if receiver is None or not receiver.endswith(
                    f".{config.fabric_class}"
                ):
                    continue
                if access.attr not in seams:
                    violations.append(
                        _violation(
                            "SIM102",
                            mod,
                            access.node,
                            f"backend {cls.name} touches fabric."
                            f"{access.attr}, which is not a seam "
                            "docs/architecture.md lists",
                            _scope_of(method),
                        )
                    )
    return violations


def _documented_seams(
    program: Program, config: ContractConfig
) -> tuple[set[str] | None, list[Violation]]:
    """Seam names between the markers in architecture.md, plus drift.

    Returns ``(None, [violation])`` when the docs (or the marker
    block) are missing — the access check cannot run without a list,
    and the missing list is itself the finding.
    """
    if config.docs_dir is None:
        return None, []
    page = Path(config.docs_dir) / config.architecture_page
    rel = f"docs/{config.architecture_page}"
    if not page.is_file():
        return None, [
            _doc_violation(
                "SIM102",
                page,
                rel,
                0,
                "",
                f"{rel} is missing, so the backend seam list cannot "
                "be verified",
            )
        ]
    text = page.read_text()
    begin = text.find(SEAM_BEGIN)
    end = text.find(SEAM_END)
    if begin < 0 or end < 0 or end < begin:
        return None, [
            _doc_violation(
                "SIM102",
                page,
                rel,
                1,
                SEAM_BEGIN,
                f"{rel} has no {SEAM_BEGIN} ... {SEAM_END} block "
                "listing the fabric seams backends may touch",
            )
        ]
    block = text[begin:end]
    seams = set(_SEAM_ROW.findall(block))
    violations: list[Violation] = []
    fabric = next(
        (
            cls
            for cls in program.classes.values()
            if cls.name == config.fabric_class
        ),
        None,
    )
    if fabric is not None:
        surface = _class_surface(program, fabric)
        block_start_line = text[:begin].count("\n") + 1
        for seam in sorted(seams - surface):
            offset = block[:block.find(f"`{seam}`")].count("\n")
            violations.append(
                _doc_violation(
                    "SIM102",
                    page,
                    rel,
                    block_start_line + offset,
                    f"`{seam}`",
                    f"documented backend seam `{seam}` does not exist "
                    f"on {config.fabric_class} (doc drift)",
                )
            )
    return seams, violations


def _class_surface(program: Program, cls: ClassInfo) -> set[str]:
    """Every name an instance legitimately exposes."""
    surface: set[str] = set()
    for ancestor in program.iter_mro(cls.qualname):
        surface.update(ancestor.methods)
        surface.update(ancestor.own_attrs)
        surface.update(ancestor.class_attrs)
        if ancestor.slots:
            surface.update(ancestor.slots)
    return surface


# ----------------------------------------------------------------------
# SIM103 — interprocedural determinism taint
# ----------------------------------------------------------------------
def check_report_taint(
    program: Program, config: ContractConfig
) -> list[Violation]:
    entries: set[str] = set()
    ctor_suffix = f".{config.report_class}.__init__"
    key_suffixes = tuple(f".{s}" for s in config.cache_key_suffixes)
    for fn in program.functions.values():
        if any(call.ref.endswith(ctor_suffix) for call in fn.calls):
            entries.add(fn.qualname)
        if fn.qualname.endswith(key_suffixes):
            entries.add(fn.qualname)
    if not entries:
        return []
    closure = program.transitive_callees(entries)
    rng_module = f"{program.package}.util.rng"
    violations: list[Violation] = []
    for qualname in sorted(closure):
        fn = program.functions[qualname]
        if fn.module == rng_module:
            continue  # the one module allowed to own randomness
        mod = program.modules[fn.module]
        scope = _scope_of(fn)
        for call in fn.calls:
            ref = call.ref
            if ref.startswith("random.") or "numpy.random" in ref:
                violations.append(
                    _violation(
                        "SIM103",
                        mod,
                        call.node,
                        f"unseeded randomness ({ref}) in {qualname}, "
                        "which is reachable from FabricReport or the "
                        "sweep-cache key",
                        scope,
                    )
                )
            elif ref in _WALLCLOCK_REFS or ref.endswith(
                _WALLCLOCK_SUFFIXES
            ):
                violations.append(
                    _violation(
                        "SIM103",
                        mod,
                        call.node,
                        f"wall-clock read ({ref}) in {qualname}, "
                        "which is reachable from FabricReport or the "
                        "sweep-cache key",
                        scope,
                    )
                )
        for node in _set_iterations(fn.node):
            violations.append(
                _violation(
                    "SIM103",
                    mod,
                    node,
                    f"set iteration order leaks from {qualname} into "
                    "state reachable from FabricReport or the "
                    "sweep-cache key",
                    scope,
                )
            )
    return violations


def _set_iterations(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.expr]:
    """Iterations whose order observes set hashing, in one function."""
    set_names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    set_names.add(target.id)

    def order_dependent(expr: ast.expr) -> bool:
        if _is_set_expr(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_names
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Name
        ):
            if expr.func.id == "sorted":
                return False
            if expr.func.id in ("list", "tuple", "iter") and expr.args:
                return order_dependent(expr.args[0])
        return False

    flagged: list[ast.expr] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if order_dependent(node.iter):
                flagged.append(node.iter)
        elif isinstance(node, ast.comprehension):
            if order_dependent(node.iter):
                flagged.append(node.iter)
    return flagged


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


# ----------------------------------------------------------------------
# SIM104 — environment-variable registry
# ----------------------------------------------------------------------
def check_env_registry(
    program: Program, config: ContractConfig
) -> list[Violation]:
    env_module = f"{program.package}.util.env"
    prefix = config.env_prefix
    registry = _registered_env_names(program, env_module)
    violations: list[Violation] = []

    env_helpers = {"raw", "text", "flag", "integer", "floating"}
    for mod in program.modules.values():
        for node in ast.walk(mod.tree):
            name, is_read = _environ_access(node)
            if (
                name is not None
                and is_read
                and name.startswith(prefix)
                and mod.module != env_module
            ):
                violations.append(
                    _violation(
                        "SIM104",
                        mod,
                        node,
                        f"direct os.environ read of {name} outside "
                        f"{env_module}; use the registry helpers",
                        "<module>",
                    )
                )
                continue
            helper_name = _env_helper_arg(mod, node, env_module, env_helpers)
            if (
                helper_name is not None
                and helper_name.startswith(prefix)
                and registry is not None
                and helper_name not in registry
            ):
                violations.append(
                    _violation(
                        "SIM104",
                        mod,
                        node,
                        f"{helper_name} is read through {env_module} "
                        "but never registered there",
                        "<module>",
                    )
                )

    if registry is not None and config.docs_dir is not None:
        violations += _env_doc_drift(program, config, registry)
    return violations


def _registered_env_names(
    program: Program, env_module: str
) -> dict[str, int] | None:
    """Registered names → registration line, or None without the module."""
    mod = program.modules.get(env_module)
    if mod is None:
        return None
    names: dict[str, int] = {}
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "EnvVar"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names[node.args[0].value] = node.lineno
    return names


def _environ_access(node: ast.AST) -> tuple[str | None, bool]:
    """(variable name, is_read) for an ``os.environ`` access node."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            target = ast.unparse(func.value)
            if target == "os.environ" and func.attr in (
                "get",
                "setdefault",
                "pop",
            ):
                if node.args and isinstance(node.args[0], ast.Constant):
                    return str(node.args[0].value), True
            elif target == "os" and func.attr == "getenv":
                if node.args and isinstance(node.args[0], ast.Constant):
                    return str(node.args[0].value), True
    elif isinstance(node, ast.Subscript):
        if ast.unparse(node.value) == "os.environ" and isinstance(
            node.slice, ast.Constant
        ):
            return str(node.slice.value), isinstance(node.ctx, ast.Load)
    return None, False


def _env_helper_arg(
    mod: ModuleInfo,
    node: ast.AST,
    env_module: str,
    helpers: set[str],
) -> str | None:
    """Literal name passed to an ``env`` helper call, if this is one."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in helpers
        and isinstance(node.func.value, ast.Name)
    ):
        return None
    root = node.func.value.id
    if mod.imports.get(root) != env_module and not (
        mod.module == env_module and root == "env"
    ):
        return None
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return node.args[0].value
    return None


def _env_doc_drift(
    program: Program,
    config: ContractConfig,
    registry: dict[str, int],
) -> list[Violation]:
    page = Path(config.docs_dir) / config.env_doc_page
    rel = f"docs/{config.env_doc_page}"
    env_module = f"{program.package}.util.env"
    if not page.is_file():
        return [
            _doc_violation(
                "SIM104",
                page,
                rel,
                0,
                "",
                f"{rel} is missing, so the environment-variable table "
                "cannot be cross-checked against the registry",
            )
        ]
    lines = page.read_text().splitlines()
    documented: dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        for token in _ENV_TOKEN.findall(line):
            documented.setdefault(token, lineno)
    violations: list[Violation] = []
    mod = program.modules[env_module]
    for name in sorted(set(registry) - set(documented)):
        line = registry[name]
        snippet = (
            mod.source_lines[line - 1].strip()
            if 1 <= line <= len(mod.source_lines)
            else ""
        )
        violations.append(
            Violation(
                rule="SIM104",
                path=mod.relpath,
                line=line,
                col=0,
                message=f"{name} is registered in {env_module} but "
                f"absent from {rel} (doc drift)",
                scope="<module>",
                snippet=snippet,
            )
        )
    for name in sorted(set(documented) - set(registry)):
        lineno = documented[name]
        violations.append(
            _doc_violation(
                "SIM104",
                page,
                rel,
                lineno,
                lines[lineno - 1],
                f"{name} appears in {rel} but is not registered in "
                f"{env_module} (doc drift)",
            )
        )
    return violations


# ----------------------------------------------------------------------
# SIM105 — hot-path attribute discipline
# ----------------------------------------------------------------------
def check_slots_discipline(
    program: Program, config: ContractConfig
) -> list[Violation]:
    guarded: dict[str, tuple[ClassInfo, set[str]]] = {}
    prefixes = tuple(
        f"{program.package}.{sub}." for sub in config.slots_packages
    )
    for cls in program.classes.values():
        if not cls.module.startswith(prefixes):
            continue
        mro = list(program.iter_mro(cls.qualname))
        if any(ancestor.slots is None for ancestor in mro):
            continue  # some base carries a __dict__: dynamic attrs legal
        allowed: set[str] = set()
        for ancestor in mro:
            allowed.update(ancestor.slots or ())
            allowed.update(ancestor.methods)
            allowed.update(ancestor.class_attrs)
        guarded[cls.qualname] = (cls, allowed)
    if not guarded:
        return []
    violations: list[Violation] = []
    for mod in program.modules.values():
        for fn in _all_functions(mod):
            for access in fn.attr_accesses:
                if not access.is_write or access.receiver_type is None:
                    continue
                entry = guarded.get(access.receiver_type)
                if entry is None:
                    continue
                cls, allowed = entry
                if cls.module == mod.module:
                    continue  # the class's own module may evolve it
                if access.attr in allowed:
                    continue
                violations.append(
                    _violation(
                        "SIM105",
                        mod,
                        access.node,
                        f"write to undeclared attribute "
                        f"{cls.name}.{access.attr} from outside "
                        f"{cls.module} (a __slots__ hot-path class)",
                        _scope_of(fn),
                    )
                )
    return violations
