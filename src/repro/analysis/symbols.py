"""Whole-program symbol table for the contract checker.

:mod:`repro.analysis.lint` looks at one file at a time; the SIM100
contract rules (:mod:`repro.analysis.contracts`) need to see the whole
package at once — which class defines which methods, who calls whom,
what type an attribute holds, which functions a report can reach.
This module parses every Python file under one package root into a
:class:`Program`:

* per module: the AST, an import map (local name → dotted target), and
  every class/function definition keyed by qualname;
* per class: base names, methods, declared ``__slots__``, and an
  *instance-attribute type map* inferred from ``self.x = ClassName(...)``
  assignments (including ``list``-of-constructor comprehensions);
* per function: parameter/local type bindings from annotations and
  constructor assignments, every call expression resolved to a
  best-effort dotted reference, and every attribute read/write with a
  resolved receiver type.

Resolution is deliberately *best effort* — this is a lint, not a type
checker.  Names that cannot be resolved stay as their source text and
rules treat them conservatively (call-graph edges are simply absent,
attribute receivers stay untyped).  The mutation tests in
``tests/test_analysis_contracts.py`` pin down the resolution power the
contract rules actually rely on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "AttributeAccess",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
]


@dataclass
class CallSite:
    """One call expression, with its best-effort resolved target.

    ``ref`` is a dotted reference such as
    ``repro.noc.stats.NetworkStats.average_packet_latency`` when
    resolution succeeded, or the literal source text (``hash``,
    ``handle.write``) when it did not.
    """

    ref: str
    node: ast.Call


@dataclass
class AttributeAccess:
    """One ``<receiver>.<attr>`` read or write inside a function.

    ``receiver_type`` is the resolved class qualname of the receiver
    (``repro.noc.router.Router``) or ``None`` when unknown;
    ``receiver_text`` is the unparsed receiver expression.
    """

    attr: str
    receiver_type: str | None
    receiver_text: str
    is_write: bool
    node: ast.AST


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "<module>.<Class>.<name>" or "<module>.<name>"
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner_class: str | None  # enclosing class qualname, or None
    calls: list[CallSite] = field(default_factory=list)
    attr_accesses: list[AttributeAccess] = field(default_factory=list)
    #: Local name → resolved class qualname (annotations, constructor
    #: assignments, loops over known lists).
    local_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition."""

    qualname: str  # "<module>.<name>"
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # resolved refs
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Declared ``__slots__`` names, or ``None`` when undeclared.
    slots: tuple[str, ...] | None = None
    #: Instance attribute → resolved class qualname; list-typed
    #: attributes are stored as ``("list", element qualname)`` under
    #: :attr:`attr_list_types`.
    attr_types: dict[str, str] = field(default_factory=dict)
    attr_list_types: dict[str, str] = field(default_factory=dict)
    #: Every instance attribute name ever assigned via ``self.x = ...``
    #: anywhere in the class body (slots discipline uses this).
    own_attrs: set[str] = field(default_factory=set)
    #: Class-level assignments: name → literal string value when the
    #: right-hand side is a string constant, else ``None``.
    class_attrs: dict[str, str | None] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module."""

    module: str  # dotted name, e.g. "repro.noc.router"
    path: Path
    relpath: str  # repository-style path for reports
    tree: ast.Module
    source_lines: list[str]
    #: Local name → dotted target ("env" → "repro.util.env",
    #: "PhaseProfiler" → "repro.perf.profiler.PhaseProfiler").
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)  # by name
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class Program:
    """Every module under one package root, cross-indexed."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        #: Class qualname → info, plus a by-bare-name index (a name can
        #: be defined in several modules; all are kept).
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: Function qualname → info.
        self.functions: dict[str, FunctionInfo] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: Path | str) -> "Program":
        """Parse every ``.py`` file under ``root`` (a package dir).

        The package name is ``root``'s basename; module dotted names
        are derived from the path below ``root``'s parent, so loading
        ``src/repro`` yields modules named ``repro.*`` and loading a
        test fixture tree ``tmp/repro`` yields the same shape.
        """
        root = Path(root).resolve()
        program = cls(root.name)
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent)
            dotted = ".".join(rel.parts)[: -len(".py")]
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            source = path.read_text()
            info = ModuleInfo(
                module=dotted,
                path=path,
                relpath="/".join(rel.parts),
                tree=ast.parse(source, filename=str(path)),
                source_lines=source.splitlines(),
            )
            program.modules[dotted] = info
        for info in program.modules.values():
            program._index_module(info)
        for info in program.modules.values():
            program._analyze_module(info)
        return program

    # ------------------------------------------------------------------
    # Pass 1: imports, definitions, slots, instance-attribute types
    # ------------------------------------------------------------------
    def _index_module(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import
                    parts = mod.module.split(".")
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    mod.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{mod.module}.{node.name}",
                    module=mod.module,
                    name=node.name,
                    node=node,
                    owner_class=None,
                )
                mod.functions[fn.qualname] = fn
                self.functions[fn.qualname] = fn

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cls_info = ClassInfo(
            qualname=f"{mod.module}.{node.name}",
            module=mod.module,
            name=node.name,
            node=node,
            bases=[self._resolve_expr_ref(mod, base) for base in node.bases],
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{cls_info.qualname}.{stmt.name}",
                    module=mod.module,
                    name=stmt.name,
                    node=stmt,
                    owner_class=cls_info.qualname,
                )
                cls_info.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__slots__":
                        cls_info.slots = _literal_str_tuple(stmt.value)
                    else:
                        value = stmt.value
                        cls_info.class_attrs[target.id] = (
                            value.value
                            if isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                            else None
                        )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls_info.class_attrs[stmt.target.id] = (
                    stmt.value.value
                    if isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                    else None
                )
        mod.classes[node.name] = cls_info
        self.classes[cls_info.qualname] = cls_info
        self.classes_by_name.setdefault(node.name, []).append(cls_info)

    # ------------------------------------------------------------------
    # Pass 2: per-function analysis (needs the full class index)
    # ------------------------------------------------------------------
    def _analyze_module(self, mod: ModuleInfo) -> None:
        for cls_info in mod.classes.values():
            # Instance-attribute types first: every method may bind
            # ``self.x``; constructor calls give the attribute a type.
            for method in cls_info.methods.values():
                self._collect_self_attrs(mod, cls_info, method)
        for cls_info in mod.classes.values():
            for method in cls_info.methods.values():
                self._analyze_function(mod, method, cls_info)
        for fn in mod.functions.values():
            self._analyze_function(mod, fn, None)

    def _collect_self_attrs(
        self, mod: ModuleInfo, cls_info: ClassInfo, fn: FunctionInfo
    ) -> None:
        self_name = _first_arg_name(fn.node)
        if self_name is None:
            return
        args = fn.node.args
        param_types: dict[str, str] = {}
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ann = _annotation_name(arg.annotation)
            if ann is None:
                continue
            resolved = self._resolve_class_name(mod, ann)
            if resolved is not None:
                param_types[arg.arg] = resolved
        for node in ast.walk(fn.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
                value = node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                cls_info.own_attrs.add(target.attr)
                if value is None:
                    continue
                direct = self._constructed_class(mod, value)
                if direct is None and isinstance(value, ast.Name):
                    direct = param_types.get(value.id)
                if direct is not None:
                    cls_info.attr_types.setdefault(target.attr, direct)
                element = self._constructed_list_element(mod, value)
                if element is not None:
                    cls_info.attr_list_types.setdefault(
                        target.attr, element
                    )

    def _analyze_function(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        cls_info: ClassInfo | None,
    ) -> None:
        self_name = _first_arg_name(fn.node) if cls_info else None
        # Parameter annotations bind local types.
        args = fn.node.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]:
            ann = _annotation_name(arg.annotation)
            if ann is None:
                continue
            resolved = self._resolve_class_name(mod, ann)
            if resolved is not None:
                fn.local_types[arg.arg] = resolved
        # Walk the body: local bindings, calls, attribute accesses.
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    constructed = self._constructed_class(mod, node.value)
                    if constructed is not None:
                        fn.local_types[target.id] = constructed
                    else:
                        aliased = self._receiver_type(
                            mod, fn, cls_info, self_name, node.value
                        )
                        if aliased is not None:
                            fn.local_types[target.id] = aliased
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ann = _annotation_name(node.annotation)
                resolved = (
                    self._resolve_class_name(mod, ann) if ann else None
                )
                if resolved is not None:
                    fn.local_types[node.target.id] = resolved
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    element = self._element_type(
                        mod, fn, cls_info, self_name, node.iter
                    )
                    if element is not None:
                        fn.local_types[node.target.id] = element
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                ref = self._resolve_call(
                    mod, fn, cls_info, self_name, node
                )
                fn.calls.append(CallSite(ref=ref, node=node))
            elif isinstance(node, ast.Attribute):
                receiver = self._receiver_type(
                    mod, fn, cls_info, self_name, node.value
                )
                fn.attr_accesses.append(
                    AttributeAccess(
                        attr=node.attr,
                        receiver_type=receiver,
                        receiver_text=ast.unparse(node.value),
                        is_write=isinstance(node.ctx, ast.Store),
                        node=node,
                    )
                )

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def _resolve_expr_ref(self, mod: ModuleInfo, node: ast.expr) -> str:
        """Dotted reference for an expression (imports applied)."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            head = cur.id
            target = mod.imports.get(head)
            if target is None and (
                head in mod.classes
                or f"{mod.module}.{head}" in self.functions
            ):
                target = f"{mod.module}.{head}"
            parts.append(target if target is not None else head)
            return ".".join(reversed(parts))
        return ast.unparse(node)

    def _resolve_class_name(
        self, mod: ModuleInfo, name: str
    ) -> str | None:
        """Class qualname for a (possibly dotted) annotation name."""
        name = name.strip().strip('"').strip("'")
        bare = name.split(".")[-1]
        if "." in name:
            head = name.split(".")[0]
            target = mod.imports.get(head)
            if target is not None:
                dotted = ".".join([target, *name.split(".")[1:]])
                if dotted in self.classes:
                    return dotted
        target = mod.imports.get(name)
        if target is not None and target in self.classes:
            return target
        if bare in mod.classes:
            return mod.classes[bare].qualname
        candidates = self.classes_by_name.get(bare, [])
        if len(candidates) == 1:
            return candidates[0].qualname
        return None

    def _constructed_class(
        self, mod: ModuleInfo, value: ast.expr
    ) -> str | None:
        """Class qualname when ``value`` is ``ClassName(...)``."""
        if not isinstance(value, ast.Call):
            return None
        ref = self._resolve_expr_ref(mod, value.func)
        if ref in self.classes:
            return ref
        bare = ref.split(".")[-1]
        candidates = self.classes_by_name.get(bare, [])
        if len(candidates) == 1 and ref == bare:
            return candidates[0].qualname
        return None

    def _constructed_list_element(
        self, mod: ModuleInfo, value: ast.expr
    ) -> str | None:
        """Element class for ``[ClassName(...) for ...]`` and friends."""
        if isinstance(value, ast.ListComp):
            return self._constructed_class(mod, value.elt)
        if isinstance(value, ast.List) and value.elts:
            first = self._constructed_class(mod, value.elts[0])
            if first is not None and all(
                self._constructed_class(mod, elt) == first
                for elt in value.elts
            ):
                return first
        return None

    def _receiver_type(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        cls_info: ClassInfo | None,
        self_name: str | None,
        node: ast.expr,
    ) -> str | None:
        """Resolved class qualname of an expression, or ``None``."""
        if isinstance(node, ast.Name):
            if cls_info is not None and node.id == self_name:
                return cls_info.qualname
            return fn.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._receiver_type(
                mod, fn, cls_info, self_name, node.value
            )
            if base is not None and base in self.classes:
                return self.attr_type_of(base, node.attr)
            return None
        if isinstance(node, ast.Subscript):
            # container[i] — element type of a known list attribute.
            return self._element_type(
                mod, fn, cls_info, self_name, node.value
            )
        return None

    def _element_type(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        cls_info: ClassInfo | None,
        self_name: str | None,
        node: ast.expr,
    ) -> str | None:
        """Element class of an iterable expression, or ``None``."""
        if isinstance(node, ast.Attribute):
            base = self._receiver_type(
                mod, fn, cls_info, self_name, node.value
            )
            if base is not None and base in self.classes:
                for ancestor in self.iter_mro(base):
                    element = ancestor.attr_list_types.get(node.attr)
                    if element is not None:
                        return element
        return None

    def _resolve_call(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        cls_info: ClassInfo | None,
        self_name: str | None,
        node: ast.Call,
    ) -> str:
        """Best-effort dotted target of one call expression."""
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self._receiver_type(
                mod, fn, cls_info, self_name, func.value
            )
            if receiver is not None:
                return f"{receiver}.{func.attr}"
        ref = self._resolve_expr_ref(mod, func)
        # A constructor call resolves to the class's __init__ so the
        # call graph enters the class.
        if ref in self.classes:
            return f"{ref}.__init__"
        return ref

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_mro(self, qualname: str) -> Iterator[ClassInfo]:
        """The class and its known base classes, derivation order.

        Only bases defined inside the loaded program appear; external
        bases (``object``, stdlib ABCs) are silently skipped.
        """
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            info = self.classes.get(current)
            if info is None or current in seen:
                continue
            seen.add(current)
            yield info
            stack.extend(info.bases)

    def attr_type_of(self, qualname: str, attr: str) -> str | None:
        """Inferred type of an instance attribute, bases included."""
        for info in self.iter_mro(qualname):
            found = info.attr_types.get(attr)
            if found is not None:
                return found
        return None

    def method_of(self, qualname: str, name: str) -> FunctionInfo | None:
        """A method by name, searching the known base chain."""
        for info in self.iter_mro(qualname):
            method = info.methods.get(name)
            if method is not None:
                return method
        return None

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """Classes whose (transitive) base resolves to ``base_name``.

        ``base_name`` may be a bare class name or a qualname suffix;
        matching is by dotted-suffix so fixture trees resolve too.
        """
        def matches(ref: str) -> bool:
            return ref == base_name or ref.endswith(f".{base_name}")

        roots = {
            info.qualname
            for info in self.classes.values()
            if matches(info.qualname)
        }
        found: dict[str, ClassInfo] = {}
        changed = True
        while changed:
            changed = False
            for info in self.classes.values():
                if info.qualname in found or info.qualname in roots:
                    continue
                for base in info.bases:
                    if (
                        matches(base)
                        or base in roots
                        or base in found
                    ):
                        found[info.qualname] = info
                        changed = True
                        break
        return [found[key] for key in sorted(found)]

    def transitive_callees(
        self, entry_points: set[str], max_functions: int = 10_000
    ) -> set[str]:
        """Function qualnames reachable from ``entry_points`` by calls.

        Only edges that resolve to a known function are followed;
        method calls additionally fall back to a unique-by-name match
        when the receiver type is unknown but exactly one class in the
        program defines that method.
        """
        by_method_name: dict[str, list[str]] = {}
        for qualname, info in self.functions.items():
            if info.owner_class is not None:
                by_method_name.setdefault(info.name, []).append(qualname)
        seen = set(entry_points) & set(self.functions)
        stack = list(seen)
        while stack and len(seen) < max_functions:
            current = stack.pop()
            for call in self.functions[current].calls:
                targets: list[str] = []
                if call.ref in self.functions:
                    targets = [call.ref]
                else:
                    bare = call.ref.split(".")[-1]
                    unique = by_method_name.get(bare, [])
                    if len(unique) == 1 and "." in call.ref:
                        targets = unique
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        return seen


def _first_arg_name(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    if not ordered:
        return None
    decorators = {
        getattr(dec, "id", None) for dec in node.decorator_list
    }
    if "staticmethod" in decorators:
        return None
    return ordered[0].arg


def _annotation_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, (ast.Name, ast.Attribute)):
        return ast.unparse(node)
    if isinstance(node, ast.Constant):
        return None
    # "Router | None" → Router; "Optional[Router]" → Router.
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        head = _annotation_name(node.value)
        if head in ("Optional",):
            return _annotation_name(
                node.slice if not isinstance(node.slice, ast.Tuple)
                else node.slice.elts[0]
            )
    return None


def _literal_str_tuple(node: ast.expr) -> tuple[str, ...] | None:
    """``__slots__`` value as a tuple of names, when literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        names: list[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(
                elt.value, str
            ):
                names.append(elt.value)
            else:
                return None
        return tuple(names)
    return None
