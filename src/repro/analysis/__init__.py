"""Static lint passes and runtime invariant checking for the simulator.

The correctness of Catnap's results rests on delicate distributed
state — credit-based VC flow control, per-subnet power-gating legality,
and the LCS/RCS congestion fabric — where a single lost credit or a
flit delivered to a sleeping router silently corrupts every downstream
figure.  This package machine-checks that state from two sides:

* :mod:`repro.analysis.lint` — an AST-based static checker with
  simulator-specific rules (SIM001–SIM006: unseeded randomness,
  order-dependent set iteration, wall-clock reads, mutable defaults,
  float equality, strippable ``assert`` guards), runnable as
  ``python -m repro.analysis lint`` with a committed-baseline workflow
  so CI fails only on *new* violations.
* :mod:`repro.analysis.invariants` — a cycle-level runtime checker
  that, when ``REPRO_CHECK=1``, hooks the fabric and asserts
  per-cycle conservation laws (credit conservation per (port, VC),
  no flit loss or duplication, no arrival at a gated router, strict
  subnet-selection priority) plus a channel-dependency-graph deadlock
  watchdog that dumps a cycle witness on stall.

See ``docs/analysis.md`` for the rule catalogue, baseline workflow,
and ``REPRO_CHECK`` semantics.
"""

from __future__ import annotations

from repro.analysis.invariants import InvariantChecker, InvariantViolation
from repro.analysis.lint import (
    LINT_RULES,
    Baseline,
    Violation,
    lint_file,
    lint_paths,
)

__all__ = [
    "LINT_RULES",
    "Baseline",
    "Violation",
    "lint_file",
    "lint_paths",
    "InvariantChecker",
    "InvariantViolation",
]
