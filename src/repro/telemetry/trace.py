"""Chrome trace-event export for fabric telemetry.

Builds a `Trace Event Format`_ JSON object (the ``traceEvents`` array
form) that loads directly into Perfetto / ``chrome://tracing``:

* router power states as complete (``ph: "X"``) slices on a
  process-per-subnet, thread-per-node track layout,
* packet lifetimes as async (``ph: "b"`` / ``ph: "e"``) slices keyed
  by packet id,
* RCS latch toggles as instant (``ph: "i"``) events,
* process/thread naming metadata (``ph: "M"``).

Timestamps are **simulation cycles**, not microseconds; the viewer's
time axis therefore reads cycles (recorded in ``otherData`` so the
unit is self-describing).

:func:`validate_trace` is the schema check used by the test suite, the
CI smoke job, and ``python -m repro.telemetry validate``.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["build_chrome_trace", "validate_trace"]

#: Phase codes emitted by :func:`build_chrome_trace`.
_EMITTED_PHASES = ("X", "b", "e", "i", "M")

#: Phase codes :func:`validate_trace` accepts (superset: counter and
#: duration events are legal trace-event phases other tools may add).
_KNOWN_PHASES = frozenset("XbeniMBEsftPC")


def _metadata(pid: int, name: str, tid: int | None = None) -> dict:
    event: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def build_chrome_trace(
    config_name: str,
    cycles: int,
    num_subnets: int,
    num_nodes: int,
    power_intervals: Iterable[tuple[int, int, str, int, int]],
    packets: Iterable[Mapping[str, int]],
    rcs_events: Iterable[tuple[int, int, int, bool]],
    truncated_packets: int = 0,
    fault_events: Iterable[tuple[int, int, str]] = (),
    recovery_events: Iterable[tuple[int, int, str]] = (),
) -> dict:
    """Assemble a Perfetto-loadable trace-event document.

    Parameters
    ----------
    config_name, cycles:
        Labels for ``otherData`` (configuration name, simulated
        cycles).
    num_subnets, num_nodes:
        Track layout: one process per subnet, one thread per node.
    power_intervals:
        ``(subnet, node, state_name, start_cycle, end_cycle)`` tuples
        with ``end_cycle >= start_cycle``; rendered as complete
        slices.  Zero-length intervals are dropped.
    packets:
        Mappings with keys ``id, src, dst, subnet, created, received``
        and optionally ``injected, hops, flits, message_class``;
        rendered as async begin/end pairs in category ``"packet"``.
    rcs_events:
        ``(cycle, subnet, region, asserted)`` latch-toggle tuples;
        rendered as process-scoped instant events.
    truncated_packets:
        Count of packet records dropped by the hub's memory cap
        (recorded in ``otherData`` so a partial trace is detectable).
    fault_events, recovery_events:
        ``(cycle, subnet, name)`` instants from an attached
        :class:`repro.faults.engine.FaultEngine` — armed fault events
        and recovery-mechanism actions, rendered as process-scoped
        instants in categories ``"fault"`` and ``"recovery"`` so they
        line up with the power slices they perturb.
    """
    events: list[dict] = []
    for subnet in range(num_subnets):
        events.append(_metadata(subnet, f"subnet{subnet}"))
        for node in range(num_nodes):
            events.append(_metadata(subnet, f"router{node}", tid=node))
    for subnet, node, state, start, end in power_intervals:
        if end <= start:
            continue
        events.append(
            {
                "ph": "X",
                "cat": "power",
                "name": state,
                "pid": subnet,
                "tid": node,
                "ts": start,
                "dur": end - start,
            }
        )
    for record in packets:
        subnet = record.get("subnet", -1)
        pid = subnet if subnet >= 0 else 0
        begin: dict[str, Any] = {
            "ph": "b",
            "cat": "packet",
            "id": record["id"],
            "name": f"pkt {record['src']}->{record['dst']}",
            "pid": pid,
            "tid": record["src"],
            "ts": record["created"],
            "args": {
                key: record[key]
                for key in (
                    "src", "dst", "subnet", "injected",
                    "hops", "flits", "message_class",
                )
                if key in record
            },
        }
        end: dict[str, Any] = {
            "ph": "e",
            "cat": "packet",
            "id": record["id"],
            "name": begin["name"],
            "pid": pid,
            "tid": record["src"],
            "ts": record["received"],
        }
        events.append(begin)
        events.append(end)
    for cycle, subnet, region, asserted in rcs_events:
        events.append(
            {
                "ph": "i",
                "cat": "rcs",
                "name": (
                    f"rcs{'+' if asserted else '-'} region{region}"
                ),
                "pid": subnet,
                "ts": cycle,
                "s": "p",
                "args": {"region": region, "asserted": int(asserted)},
            }
        )
    for category, instants in (
        ("fault", fault_events),
        ("recovery", recovery_events),
    ):
        for cycle, subnet, name in instants:
            events.append(
                {
                    "ph": "i",
                    "cat": category,
                    "name": name,
                    "pid": subnet if subnet >= 0 else 0,
                    "ts": cycle,
                    "s": "p",
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "config": config_name,
            "cycles": cycles,
            "time_unit": "cycles",
            "truncated_packets": truncated_packets,
        },
    }


def _check_event(index: int, event: object, errors: list[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
        errors.append(f"{where}: bad phase {phase!r}")
        return
    if phase == "M":
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: metadata event without name")
        return
    if not isinstance(event.get("name"), str):
        errors.append(f"{where}: missing name")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: bad ts {ts!r}")
    if "pid" in event and not isinstance(event["pid"], int):
        errors.append(f"{where}: bad pid {event['pid']!r}")
    if phase == "X":
        dur = event.get("dur")
        if (
            not isinstance(dur, (int, float))
            or isinstance(dur, bool)
            or dur < 0
        ):
            errors.append(f"{where}: complete event with bad dur {dur!r}")
    if phase in ("b", "e", "n"):
        if "id" not in event:
            errors.append(f"{where}: async event without id")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: async event without cat")
    if phase == "i" and event.get("s") not in (None, "g", "p", "t"):
        errors.append(f"{where}: bad instant scope {event.get('s')!r}")


def validate_trace(doc: object) -> list[str]:
    """Check ``doc`` against the trace-event schema; return problems.

    An empty list means the document is a well-formed trace: the
    required top-level shape, every event structurally valid, and
    every async begin matched by exactly one same-``(cat, id)`` end at
    a later-or-equal timestamp.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    begins: dict[tuple[str, object], list[float]] = {}
    ends: dict[tuple[str, object], list[float]] = {}
    for index, event in enumerate(events):
        _check_event(index, event, errors)
        if not isinstance(event, dict):
            continue
        phase = event.get("ph")
        if phase in ("b", "e") and "id" in event:
            key = (str(event.get("cat")), event["id"])
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                side = begins if phase == "b" else ends
                side.setdefault(key, []).append(float(ts))
    for key, starts in begins.items():
        stops = ends.get(key, [])
        if len(stops) != len(starts):
            errors.append(
                f"async {key[0]}/{key[1]}: {len(starts)} begin(s) "
                f"vs {len(stops)} end(s)"
            )
        elif len(starts) == 1 and stops and stops[0] < starts[0]:
            errors.append(
                f"async {key[0]}/{key[1]}: end before begin"
            )
    for key in ends:
        if key not in begins:
            errors.append(f"async {key[0]}/{key[1]}: end without begin")
    return errors
