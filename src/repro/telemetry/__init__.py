"""Zero-overhead observability for the Multi-NoC fabric.

Three coordinated parts (see ``docs/telemetry.md``):

* :mod:`repro.telemetry.hub` — the :class:`TelemetryHub` probe layer,
  attached per fabric instance by shadowing a handful of methods, so
  telemetry-off runs execute the identical unhooked code path;
* :mod:`repro.telemetry.samplers` — periodic time-series collection
  (power-state occupancy, buffer occupancy, congestion status,
  injection queues) with ASCII rendering;
* :mod:`repro.telemetry.trace` — Chrome trace-event (Perfetto) export
  and its schema validator (also available as
  ``python -m repro.telemetry validate``).

Enable with ``REPRO_TELEMETRY=1`` or ``catnap-experiments
--telemetry``; artifacts land under ``results/telemetry/`` by default.
"""

from repro.telemetry.hub import TelemetryHub, maybe_attach, telemetry_enabled
from repro.telemetry.samplers import TimeSeriesSampler
from repro.telemetry.trace import build_chrome_trace, validate_trace

__all__ = [
    "TelemetryHub",
    "TimeSeriesSampler",
    "build_chrome_trace",
    "maybe_attach",
    "telemetry_enabled",
    "validate_trace",
]
