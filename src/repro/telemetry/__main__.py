"""Telemetry command line: ``python -m repro.telemetry``.

``validate`` checks trace files against the Chrome trace-event schema
(:func:`repro.telemetry.trace.validate_trace`); directories are
scanned for ``*.trace.json``.  Exit status 0 means every file checked
out; 1 means a schema violation, unreadable file, or nothing to check
— the CI smoke job relies on that contract.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.telemetry.trace import validate_trace

__all__ = ["main"]


def _trace_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".trace.json")
            )
        else:
            files.append(path)
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Telemetry artifact tooling.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    validate = subparsers.add_parser(
        "validate",
        help="check trace files against the trace-event schema",
    )
    validate.add_argument(
        "paths",
        nargs="+",
        help="trace files or directories containing *.trace.json",
    )
    args = parser.parse_args(argv)
    files = _trace_files(args.paths)
    if not files:
        print("no trace files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})")
            failures += 1
            continue
        errors = validate_trace(doc)
        if errors:
            failures += 1
            print(f"{path}: INVALID ({len(errors)} problem(s))")
            for error in errors[:20]:
                print(f"  {error}")
        else:
            events = len(doc.get("traceEvents", []))
            print(f"{path}: ok ({events} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
