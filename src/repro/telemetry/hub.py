"""The telemetry hub: zero-overhead probes over a Multi-NoC fabric.

``TelemetryHub`` observes one :class:`~repro.noc.multinoc.MultiNocFabric`
by *shadowing* a handful of methods with per-instance attributes (the
same contract as :class:`repro.analysis.invariants.InvariantChecker`):

* ``fabric.step`` — drives the periodic time-series sampler and the
  per-cycle LCS toggle diff;
* ``fabric.report`` — autoflushes telemetry artifacts next to the
  report when the hub was attached via the environment;
* ``gating._sleep`` / ``_begin_wakeup`` / ``_wake_complete`` /
  ``request_wakeup`` — record every power transition with its exact
  cycle (O(1) per transition, no per-cycle scans);
* ``monitor.regional.update`` — diffs the latched RCS bits at update
  boundaries for toggle events and duty-cycle integration;
* each ``ni.packet_sink`` — records packet lifetimes at tail ejection.

Because shadowing only touches *instances*, a fabric without a hub
executes the original unhooked class methods: telemetry-off runs take
the identical code path as a build without this package.  Enable with
``REPRO_TELEMETRY=1`` (see :func:`telemetry_enabled`); tune with
``REPRO_TELEMETRY_PERIOD`` (sampling period, default 64 cycles),
``REPRO_TELEMETRY_DIR`` (output directory, default
``results/telemetry``) and ``REPRO_TELEMETRY_MAX_PACKETS`` (packet
trace memory cap, default 20000 records).

Accounting convention (matches :class:`repro.core.gating.GatingStats`,
which counts each router's state at the *entry* of every controller
step, before transitions): a sleep period entered at step ``c0`` and
left at step ``c1`` contributes exactly ``c1 - c0`` sleep cycles; a
period still open after ``N`` executed steps contributes
``N - 1 - c0``.  The hub derives its per-subnet totals purely from
transition events under this convention, so they reconcile exactly
with the controller's own counters — the acceptance test for the
probes.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Callable

from repro.noc.router import PowerState, Router
from repro.telemetry.samplers import TimeSeriesSampler
from repro.telemetry.trace import build_chrome_trace
from repro.util import env
from repro.util.ascii_plot import bar_chart
from repro.util.histogram import BoundedHistogram

if TYPE_CHECKING:
    from repro.core.gating import GatingStats
    from repro.noc.flit import Packet
    from repro.noc.multinoc import MultiNocFabric

__all__ = ["TelemetryHub", "telemetry_enabled", "maybe_attach"]

#: Defaults for the environment knobs.
DEFAULT_PERIOD = 64
DEFAULT_DIR = os.path.join("results", "telemetry")
DEFAULT_MAX_PACKETS = 20_000


def telemetry_enabled() -> bool:
    """True when ``REPRO_TELEMETRY`` asks for fabric telemetry."""
    return env.flag("REPRO_TELEMETRY")


def maybe_attach(fabric: "MultiNocFabric") -> "TelemetryHub | None":
    """Attach a hub to ``fabric`` when ``REPRO_TELEMETRY`` is set."""
    if not telemetry_enabled():
        return None
    return TelemetryHub.from_env(fabric).attach()


class TelemetryHub:
    """Probes, samplers, and trace export for one fabric instance."""

    def __init__(
        self,
        fabric: "MultiNocFabric",
        period: int = DEFAULT_PERIOD,
        out_dir: str | None = None,
        max_packets: int = DEFAULT_MAX_PACKETS,
    ) -> None:
        self.fabric = fabric
        self.out_dir = out_dir
        self.max_packets = max_packets
        self.sampler = TimeSeriesSampler(fabric, period)
        self.attached = False
        num_subnets = fabric.config.num_subnets
        # (object, attribute, had_instance_attr, saved_value) records
        # for detach; restored in reverse attach order.
        self._saved: list[tuple[object, str, bool, object]] = []
        # --- power transitions ------------------------------------------
        # Open intervals keyed by id(router); totals per subnet follow
        # the GatingStats entry-count convention (module docstring).
        self._sleep_start: dict[int, int] = {}
        self._wake_start: dict[int, tuple[int, int]] = {}
        self._pending_request: dict[int, int] = {}
        self._closed_sleep = [0] * num_subnets
        self._closed_wakeup = [0] * num_subnets
        self.sleep_periods = [0] * num_subnets
        self.wake_requests = [0] * num_subnets
        #: Closed (subnet, node, state, start, end) power intervals.
        self.power_intervals: list[tuple[int, int, str, int, int]] = []
        self.wakeup_latency = BoundedHistogram()
        # --- congestion status ------------------------------------------
        self.lcs_raised = [0] * num_subnets
        self.lcs_cleared = [0] * num_subnets
        self._prev_lcs = [list(row) for row in fabric.monitor.lcs]
        regional = fabric.monitor.regional
        self._prev_rcs = [
            [
                regional.rcs_region(subnet, region)
                for region in range(regional.num_regions)
            ]
            for subnet in range(num_subnets)
        ]
        #: (cycle, subnet, region, asserted) RCS latch toggles.
        self.rcs_events: list[tuple[int, int, int, bool]] = []
        self._rcs_on_since: dict[tuple[int, int], int] = {}
        self._closed_rcs_cycles = [0] * num_subnets
        # --- packets ----------------------------------------------------
        self.packet_records: list[dict[str, int]] = []
        self.packets_seen = 0
        self.truncated_packets = 0
        self.unfinished_packets = 0
        self.ejected_per_subnet = [0] * num_subnets
        self.latency = BoundedHistogram()
        self._flush_count = 0
        self._orig_step: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Construction from the environment
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, fabric: "MultiNocFabric") -> "TelemetryHub":
        """Build a hub configured by ``REPRO_TELEMETRY_*`` variables."""
        period = env.integer("REPRO_TELEMETRY_PERIOD", DEFAULT_PERIOD)
        out_dir = env.text("REPRO_TELEMETRY_DIR", DEFAULT_DIR)
        max_packets = env.integer(
            "REPRO_TELEMETRY_MAX_PACKETS", DEFAULT_MAX_PACKETS
        )
        return cls(
            fabric,
            period=period,
            out_dir=out_dir,
            max_packets=max_packets,
        )

    # ------------------------------------------------------------------
    # Attach / detach (per-instance shadowing)
    # ------------------------------------------------------------------
    def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
        had = name in obj.__dict__
        self._saved.append((obj, name, had, obj.__dict__.get(name)))
        setattr(obj, name, replacement)

    def attach(self) -> "TelemetryHub":
        """Install every probe on the fabric; returns ``self``."""
        if self.attached:
            return self
        fabric = self.fabric
        gating = fabric.gating
        regional = fabric.monitor.regional
        self._orig_step = fabric.step
        self._orig_report = fabric.report
        self._orig_sleep = gating._sleep
        self._orig_begin_wakeup = gating._begin_wakeup
        self._orig_wake_complete = gating._wake_complete
        self._orig_request_wakeup = gating.request_wakeup
        self._orig_regional_update = regional.update
        self._shadow(fabric, "step", self._telemetry_step)
        self._shadow(fabric, "report", self._telemetry_report)
        self._shadow(gating, "_sleep", self._tap_sleep)
        self._shadow(gating, "_begin_wakeup", self._tap_begin_wakeup)
        self._shadow(gating, "_wake_complete", self._tap_wake_complete)
        self._shadow(gating, "request_wakeup", self._tap_request_wakeup)
        self._shadow(regional, "update", self._tap_regional_update)
        for ni in fabric.nis:
            self._shadow(
                ni, "packet_sink", self._make_packet_tap(ni.packet_sink)
            )
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every probe, restoring the pre-attach attributes."""
        if not self.attached:
            return
        for obj, name, had, value in reversed(self._saved):
            if had:
                setattr(obj, name, value)
            else:
                delattr(obj, name)
        self._saved.clear()
        self.attached = False

    # ------------------------------------------------------------------
    # Shadowed fabric methods
    # ------------------------------------------------------------------
    def _telemetry_step(self) -> None:
        fabric = self.fabric
        cycle = fabric.cycle
        if cycle % self.sampler.period == 0:
            # Pre-step sample: a consistent post-gating snapshot of the
            # previous cycle (gating.step runs last inside step()).
            self.sampler.sample(cycle)
        orig_step = self._orig_step
        if orig_step is None:  # pragma: no cover - attach() sets it
            raise RuntimeError("telemetry hub is not attached")
        orig_step()
        # LCS toggle diff: monitor.update ran inside the step, so the
        # latched rows are the post-step truth for this cycle.
        prev = self._prev_lcs
        for subnet, row in enumerate(fabric.monitor.lcs):
            prev_row = prev[subnet]
            if row == prev_row:
                continue
            raised = cleared = 0
            for current, old in zip(row, prev_row):
                if current and not old:
                    raised += 1
                elif old and not current:
                    cleared += 1
            self.lcs_raised[subnet] += raised
            self.lcs_cleared[subnet] += cleared
            prev[subnet] = list(row)

    def _telemetry_report(self):
        report = self._orig_report()
        if self.out_dir is not None:
            self.flush()
        return report

    # ------------------------------------------------------------------
    # Gating transition probes
    # ------------------------------------------------------------------
    def _tap_sleep(self, router: Router, cycle: int) -> None:
        self._orig_sleep(router, cycle)
        self._sleep_start[id(router)] = cycle
        self.sleep_periods[router.subnet] += 1

    def _tap_begin_wakeup(
        self, router: Router, cycle: int, stats: "GatingStats"
    ) -> None:
        self._orig_begin_wakeup(router, cycle, stats)
        key = id(router)
        start = self._sleep_start.pop(key, None)
        if start is not None:
            self._closed_sleep[router.subnet] += cycle - start
            self.power_intervals.append(
                (router.subnet, router.node, "sleep", start, cycle)
            )
        # A wake with no recorded request was RCS-triggered: latency is
        # measured from the wakeup begin itself.
        request = self._pending_request.pop(key, cycle)
        self._wake_start[key] = (cycle, request)

    def _tap_wake_complete(self, router: Router, cycle: int) -> None:
        self._orig_wake_complete(router, cycle)
        key = id(router)
        record = self._wake_start.pop(key, None)
        if record is not None:
            begin, request = record
            self._closed_wakeup[router.subnet] += cycle - begin
            self.power_intervals.append(
                (router.subnet, router.node, "wakeup", begin, cycle)
            )
            self.wakeup_latency.record(cycle - request)

    def _tap_request_wakeup(self, router: Router) -> None:
        if router.power_state == PowerState.SLEEP:
            key = id(router)
            if key not in self._pending_request:
                # fabric.cycle is the in-progress step's cycle: step()
                # publishes cycle+1 only after all sub-steps ran.
                self._pending_request[key] = self.fabric.cycle
                self.wake_requests[router.subnet] += 1
        self._orig_request_wakeup(router)

    # ------------------------------------------------------------------
    # RCS latch probe
    # ------------------------------------------------------------------
    def _tap_regional_update(
        self, cycle: int, lcs: list[list[bool]]
    ) -> None:
        regional = self.fabric.monitor.regional
        if cycle % regional.update_period:
            self._orig_regional_update(cycle, lcs)
            return
        self._orig_regional_update(cycle, lcs)
        prev = self._prev_rcs
        for subnet in range(len(prev)):
            prev_row = prev[subnet]
            for region in range(regional.num_regions):
                bit = regional.rcs_region(subnet, region)
                if bit == prev_row[region]:
                    continue
                prev_row[region] = bit
                self.rcs_events.append((cycle, subnet, region, bit))
                key = (subnet, region)
                if bit:
                    self._rcs_on_since[key] = cycle
                else:
                    on_since = self._rcs_on_since.pop(key, cycle)
                    self._closed_rcs_cycles[subnet] += cycle - on_since

    # ------------------------------------------------------------------
    # Packet lifetime probe
    # ------------------------------------------------------------------
    def _make_packet_tap(
        self, orig: "Callable[[Packet, int], None] | None"
    ) -> "Callable[[Packet, int], None]":
        def tap(packet: "Packet", cycle: int) -> None:
            if orig is not None:
                orig(packet, cycle)
            self._record_packet(packet)

        return tap

    def _record_packet(self, packet: "Packet") -> None:
        # A sentinel -1 timestamp marks a packet that never finished
        # (e.g. drained at run end before its tail was injected); its
        # negative pseudo-latency must not reach the histogram.
        if packet.injected_cycle < 0 or packet.received_cycle < 0:
            self.unfinished_packets += 1
            return
        self.packets_seen += 1
        self.latency.record(packet.latency)
        if 0 <= packet.subnet < len(self.ejected_per_subnet):
            self.ejected_per_subnet[packet.subnet] += 1
        if len(self.packet_records) >= self.max_packets:
            self.truncated_packets += 1
            return
        self.packet_records.append(
            {
                "id": packet.packet_id,
                "src": packet.src,
                "dst": packet.dst,
                "subnet": packet.subnet,
                "created": packet.created_cycle,
                "injected": packet.injected_cycle,
                "received": packet.received_cycle,
                "hops": packet.hops,
                "flits": packet.num_flits,
                "message_class": packet.message_class,
            }
        )

    # ------------------------------------------------------------------
    # Derived totals (non-destructive; callable mid-run)
    # ------------------------------------------------------------------
    def sleep_cycles_by_subnet(self) -> list[int]:
        """Per-subnet sleep cycles derived purely from transitions.

        Reconciles exactly with ``GatingStats.sleep_cycles`` (see the
        module docstring for the entry-count convention).
        """
        final = self.fabric.cycle
        totals = list(self._closed_sleep)
        for key, start in self._sleep_start.items():
            router = self._router_of(key)
            if router is not None:
                totals[router.subnet] += max(0, final - 1 - start)
        return totals

    def wakeup_cycles_by_subnet(self) -> list[int]:
        """Per-subnet wakeup cycles derived purely from transitions."""
        final = self.fabric.cycle
        totals = list(self._closed_wakeup)
        for key, (begin, _request) in self._wake_start.items():
            router = self._router_of(key)
            if router is not None:
                totals[router.subnet] += max(0, final - 1 - begin)
        return totals

    def _router_of(self, key: int) -> Router | None:
        return self.fabric.gating._router_by_id.get(key)

    def rcs_duty_by_subnet(self) -> list[float]:
        """Fraction of region-cycles each subnet's RCS latch was set."""
        final = self.fabric.cycle
        regional = self.fabric.monitor.regional
        totals = list(self._closed_rcs_cycles)
        for (subnet, _region), on_since in self._rcs_on_since.items():
            totals[subnet] += max(0, final - on_since)
        denominator = regional.num_regions * final
        if not denominator:
            return [0.0] * len(totals)
        return [total / denominator for total in totals]

    def _open_power_intervals(
        self, final: int
    ) -> list[tuple[int, int, str, int, int]]:
        extra: list[tuple[int, int, str, int, int]] = []
        for key, start in self._sleep_start.items():
            router = self._router_of(key)
            if router is not None:
                extra.append(
                    (router.subnet, router.node, "sleep", start, final)
                )
        for key, (begin, _request) in self._wake_start.items():
            router = self._router_of(key)
            if router is not None:
                extra.append(
                    (router.subnet, router.node, "wakeup", begin, final)
                )
        return extra

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-safe aggregate summary of everything the hub saw."""
        fabric = self.fabric
        injected = [0] * fabric.config.num_subnets
        for ni in fabric.nis:
            for subnet, count in enumerate(ni.injected_per_subnet):
                injected[subnet] += count
        engine = getattr(fabric, "faults", None)
        faults = (
            {
                **engine.outcome_counts(),
                "injected_by_subnet": list(engine.injected_by_subnet),
                "dropped_flits": sum(engine.dropped_flits),
                "watchdog_trips": engine.watchdog_trips,
                "forced_wakes": engine.forced_wakes,
                "event_digest": engine.event_digest(),
            }
            if engine is not None
            else None
        )
        return {
            "faults": faults,
            "config": fabric.config.name,
            "seed": fabric.seed,
            "cycles": fabric.cycle,
            "sampling_period": self.sampler.period,
            "sleep_cycles_by_subnet": self.sleep_cycles_by_subnet(),
            "wakeup_cycles_by_subnet": self.wakeup_cycles_by_subnet(),
            "sleep_periods_by_subnet": list(self.sleep_periods),
            "wake_requests_by_subnet": list(self.wake_requests),
            "rcs_duty_by_subnet": self.rcs_duty_by_subnet(),
            "rcs_toggles": len(self.rcs_events),
            "lcs_raised_by_subnet": list(self.lcs_raised),
            "lcs_cleared_by_subnet": list(self.lcs_cleared),
            "injected_per_subnet": injected,
            "ejected_per_subnet": list(self.ejected_per_subnet),
            "packets_seen": self.packets_seen,
            "packet_records": len(self.packet_records),
            "truncated_packets": self.truncated_packets,
            "unfinished_packets": self.unfinished_packets,
            "latency": self.latency.to_dict(),
            "wakeup_latency": self.wakeup_latency.to_dict(),
        }

    def time_series_doc(self) -> dict:
        """Full time-series document (sampler columns + summary)."""
        return {
            "schema": "repro.telemetry.timeseries/1",
            "summary": self.summary(),
            "series": self.sampler.to_dict(),
        }

    def chrome_trace_doc(self) -> dict:
        """Perfetto-loadable trace-event document for this run."""
        fabric = self.fabric
        final = fabric.cycle
        intervals = list(self.power_intervals)
        intervals.extend(self._open_power_intervals(final))
        engine = getattr(fabric, "faults", None)
        return build_chrome_trace(
            config_name=fabric.config.name,
            cycles=final,
            num_subnets=fabric.config.num_subnets,
            num_nodes=fabric.mesh.num_nodes,
            power_intervals=intervals,
            packets=self.packet_records,
            rcs_events=self.rcs_events,
            truncated_packets=self.truncated_packets,
            fault_events=(
                engine.fault_instants if engine is not None else ()
            ),
            recovery_events=(
                engine.recovery_instants if engine is not None else ()
            ),
        )

    def ascii_summary(self) -> str:
        """Human-readable terminal summary (sparklines + heatmaps)."""
        fabric = self.fabric
        final = fabric.cycle
        lines = [
            f"telemetry: {fabric.config.name} seed={fabric.seed} "
            f"cycles={final}",
            self.sampler.ascii_render(),
        ]
        sleep = self.sleep_cycles_by_subnet()
        routers = fabric.mesh.num_nodes
        if final and any(sleep):
            fractions = [
                total / (routers * final) for total in sleep
            ]
            lines.append(
                bar_chart(
                    [f"subnet{idx}" for idx in range(len(sleep))],
                    fractions,
                    title="sleep fraction by subnet:",
                )
            )
        if self.latency.count:
            p50, p95, p99 = self.latency.percentiles(0.50, 0.95, 0.99)
            lines.append(
                f"packet latency: n={self.latency.count} "
                f"mean={self.latency.mean:.1f} "
                f"p50={p50:.0f} p95={p95:.0f} p99={p99:.0f} "
                f"max={self.latency.max_value}"
            )
        if self.wakeup_latency.count:
            p50, p95, p99 = self.wakeup_latency.percentiles(
                0.50, 0.95, 0.99
            )
            lines.append(
                f"wakeup latency: n={self.wakeup_latency.count} "
                f"mean={self.wakeup_latency.mean:.1f} "
                f"p50={p50:.0f} p95={p95:.0f} p99={p99:.0f}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def flush(self) -> dict[str, str]:
        """Write the three telemetry artifacts; return their paths.

        Files are named ``{config}-s{seed}-p{pid}-r{n}`` so parallel
        sweep workers and repeated flushes never collide.  The ``r``
        counter is process-wide
        (:func:`repro.obs.artifacts.next_flush_ref`), not per-hub: two
        fabrics with the same config and seed in one process (e.g. a
        sweep probing two loads of one configuration) each get their
        own hub, and per-instance counters would silently overwrite
        the first fabric's artifacts with the second's.
        """
        from repro.obs.artifacts import next_flush_ref

        out_dir = self.out_dir if self.out_dir is not None else DEFAULT_DIR
        os.makedirs(out_dir, exist_ok=True)
        fabric = self.fabric
        prefix = (
            f"{fabric.config.name}-s{fabric.seed}-p{os.getpid()}"
        )
        stem = f"{prefix}-r{next_flush_ref(prefix)}"
        self._flush_count += 1
        paths = {
            "timeseries": os.path.join(
                out_dir, f"{stem}.timeseries.json"
            ),
            "trace": os.path.join(out_dir, f"{stem}.trace.json"),
            "summary": os.path.join(out_dir, f"{stem}.summary.txt"),
        }
        with open(paths["timeseries"], "w", encoding="utf-8") as handle:
            json.dump(
                self.time_series_doc(), handle, separators=(",", ":")
            )
        with open(paths["trace"], "w", encoding="utf-8") as handle:
            json.dump(
                self.chrome_trace_doc(), handle, separators=(",", ":")
            )
        with open(paths["summary"], "w", encoding="utf-8") as handle:
            handle.write(self.ascii_summary() + "\n")
        return paths
