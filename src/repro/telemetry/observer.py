"""Sweep-runner integration: report telemetry artifacts per point.

Telemetry hubs attach inside sweep worker processes (the fabric
constructor reads ``REPRO_TELEMETRY``), so the parent CLI process
never sees the hub objects themselves — only the files they flush.
:class:`TelemetryObserver` plugs into the sweep observer chain and
reports every artifact that appears in the telemetry directory while
a sweep runs, giving ``--telemetry`` runs a per-point line that says
where each trace landed.

Directory scanning lives in
:class:`repro.obs.artifacts.ArtifactScanner`, shared with
:class:`repro.perf.observer.PerfObserver` and the run ledger so all
three agree on what counts as a telemetry artifact.
"""

from __future__ import annotations

from repro.experiments.runner import SweepObserver, SweepStats
from repro.obs.artifacts import TELEMETRY_SUFFIXES, ArtifactScanner
from repro.telemetry.hub import DEFAULT_DIR
from repro.util import env

__all__ = ["TelemetryObserver"]


class TelemetryObserver(SweepObserver):
    """Announces new telemetry artifacts as sweep points complete."""

    def __init__(
        self, directory: str | None = None, stream=None
    ) -> None:
        import sys

        self.directory = directory or env.text(
            "REPRO_TELEMETRY_DIR", DEFAULT_DIR
        )
        self.stream = stream if stream is not None else sys.stderr
        self._scanner = ArtifactScanner(
            self.directory, TELEMETRY_SUFFIXES
        )
        #: Every artifact path reported so far, in report order.
        self.reported: list[str] = []

    def _report_fresh(self) -> None:
        for path in self._scanner.fresh():
            self.reported.append(path)
            print(f"  telemetry: {path}", file=self.stream)

    # -- SweepObserver hooks ------------------------------------------
    def sweep_started(self, total: int) -> None:
        # Pre-existing artifacts belong to earlier runs; only report
        # what this sweep produces.
        self._scanner.prime()

    def point_finished(self, index, spec, rows, elapsed, cached) -> None:
        self._report_fresh()

    def sweep_finished(self, stats: SweepStats) -> None:
        # Parallel workers may flush after their point_finished record
        # was consumed; catch any stragglers.
        self._report_fresh()
