"""Periodic time-series sampling of fabric state.

The :class:`TimeSeriesSampler` is polled by the telemetry hub once per
sampling period (``REPRO_TELEMETRY_PERIOD`` cycles, before the step
executes, so every sample observes a consistent post-gating snapshot
of the previous cycle).  Each tick records:

* per subnet: router power-state occupancy (active/sleep/wakeup
  counts), the max buffer occupancy over all routers (the BFM
  congestion signal), the latched LCS node count, and the set RCS
  region count;
* fabric-wide: injection-queue flits waiting at the NIs and in-flight
  flits.

It also accumulates the peak per-router input-buffer occupancy over
the whole run, rendered as a per-subnet mesh heatmap by
:meth:`ascii_render`.

Sampling cost is O(routers) per tick, paid only every period cycles
and only on fabrics with telemetry attached — never on the default
fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.noc.router import PowerState
from repro.util.ascii_plot import heatmap, sparkline

if TYPE_CHECKING:
    from repro.noc.multinoc import MultiNocFabric

__all__ = ["TimeSeriesSampler"]


class _SubnetSeries:
    """Per-subnet column store, one list entry per sample tick."""

    __slots__ = (
        "active", "sleep", "wakeup",
        "max_buffer_occupancy", "lcs_nodes", "rcs_regions",
        "faults_injected",
    )

    def __init__(self) -> None:
        self.active: list[int] = []
        self.sleep: list[int] = []
        self.wakeup: list[int] = []
        self.max_buffer_occupancy: list[int] = []
        self.lcs_nodes: list[int] = []
        self.rcs_regions: list[int] = []
        # Cumulative injected-fault count per tick; all-zero (and
        # omitted from ascii output) without a fault engine.
        self.faults_injected: list[int] = []

    def to_dict(self) -> dict:
        return {
            "active": self.active,
            "sleep": self.sleep,
            "wakeup": self.wakeup,
            "max_buffer_occupancy": self.max_buffer_occupancy,
            "lcs_nodes": self.lcs_nodes,
            "rcs_regions": self.rcs_regions,
            "faults_injected": self.faults_injected,
        }


class TimeSeriesSampler:
    """Columnar time-series collector over one fabric."""

    def __init__(self, fabric: "MultiNocFabric", period: int) -> None:
        if period < 1:
            raise ValueError("sampling period must be >= 1")
        self.fabric = fabric
        self.period = period
        self.ticks: list[int] = []
        self.subnets = [
            _SubnetSeries() for _ in range(fabric.config.num_subnets)
        ]
        self.injection_queue_flits: list[int] = []
        self.in_flight_flits: list[int] = []
        # peak_occupancy[subnet][node]: max input-buffer flits observed
        # at any sample tick (heatmap source).
        self.peak_occupancy = [
            [0] * fabric.mesh.num_nodes
            for _ in range(fabric.config.num_subnets)
        ]

    # ------------------------------------------------------------------
    def sample(self, cycle: int) -> None:
        """Record one tick of every series at ``cycle``."""
        fabric = self.fabric
        self.ticks.append(cycle)
        regional = fabric.monitor.regional
        use_regional = fabric.monitor.use_regional
        engine = getattr(fabric, "faults", None)
        for subnet_idx, network in enumerate(fabric.subnets):
            series = self.subnets[subnet_idx]
            peaks = self.peak_occupancy[subnet_idx]
            active = sleep = wakeup = 0
            max_occupancy = 0
            for node, router in enumerate(network.routers):
                state = router.power_state
                if state == PowerState.ACTIVE:
                    active += 1
                elif state == PowerState.SLEEP:
                    sleep += 1
                else:
                    wakeup += 1
                occupancy = router.max_port_occupancy()
                if occupancy > max_occupancy:
                    max_occupancy = occupancy
                if occupancy > peaks[node]:
                    peaks[node] = occupancy
            series.active.append(active)
            series.sleep.append(sleep)
            series.wakeup.append(wakeup)
            series.max_buffer_occupancy.append(max_occupancy)
            series.lcs_nodes.append(fabric.monitor.lcs_count(subnet_idx))
            series.rcs_regions.append(
                sum(
                    regional.rcs_region(subnet_idx, region)
                    for region in range(regional.num_regions)
                )
                if use_regional
                else 0
            )
            series.faults_injected.append(
                engine.injected_by_subnet[subnet_idx]
                if engine is not None
                else 0
            )
        self.injection_queue_flits.append(
            sum(ni.queue_occupancy_flits() for ni in fabric.nis)
        )
        self.in_flight_flits.append(fabric.in_flight_flits)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe column store of every series."""
        return {
            "period": self.period,
            "cycles": self.ticks,
            "subnets": [series.to_dict() for series in self.subnets],
            "injection_queue_flits": self.injection_queue_flits,
            "in_flight_flits": self.in_flight_flits,
            "peak_occupancy": self.peak_occupancy,
        }

    def _mesh_grid(self, values: list[int]) -> list[list[int]]:
        mesh = self.fabric.mesh
        return [
            values[row * mesh.cols : (row + 1) * mesh.cols]
            for row in range(mesh.rows)
        ]

    def ascii_render(self) -> str:
        """Terminal rendering: sparklines per subnet + peak heatmaps."""
        lines: list[str] = []
        if not self.ticks:
            return "(no samples)"
        lines.append(
            f"samples: {len(self.ticks)} (period {self.period} cycles, "
            f"cycles {self.ticks[0]}..{self.ticks[-1]})"
        )
        for subnet_idx, series in enumerate(self.subnets):
            lines.append(f"subnet {subnet_idx}:")
            lines.append(f"  sleep routers   {sparkline(series.sleep)}")
            lines.append(
                f"  max buffer occ  "
                f"{sparkline(series.max_buffer_occupancy)}"
            )
            lines.append(f"  LCS nodes       {sparkline(series.lcs_nodes)}")
            lines.append(
                f"  RCS regions     {sparkline(series.rcs_regions)}"
            )
            if any(series.faults_injected):
                lines.append(
                    f"  faults injected "
                    f"{sparkline(series.faults_injected)}"
                )
            lines.append(
                heatmap(
                    self._mesh_grid(self.peak_occupancy[subnet_idx]),
                    title=f"  peak router occupancy (flits), "
                    f"subnet {subnet_idx}:",
                )
            )
        lines.append(
            f"injection queue   {sparkline(self.injection_queue_flits)}"
        )
        lines.append(
            f"in-flight flits   {sparkline(self.in_flight_flits)}"
        )
        return "\n".join(lines)
