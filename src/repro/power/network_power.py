"""Network-level power aggregation.

Turns a :class:`~repro.noc.multinoc.FabricReport` (activity counters +
gating residency) into watts, per component and split into dynamic and
static parts.  Power gating reduces static power through the sleep
residency recorded by the gating controller; every sleep period is
charged ``T-breakeven`` cycles worth of leakage for the sleep-transistor
switching and decap recharge (paper §4.3), so short periods *cost*
energy exactly as the paper describes.

``power_at_port_load`` evaluates the model analytically at a fixed
per-port load factor — the methodology behind Figure 7, which assumes a
load factor of 0.5 rather than a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.regional import OR_NETWORK_SWITCH_ENERGY_J
from repro.noc.config import NocConfig
from repro.noc.multinoc import FabricReport
from repro.power.router_power import RouterPowerModel

__all__ = [
    "ComponentPower",
    "NetworkPowerBreakdown",
    "compute_network_power",
    "power_at_port_load",
    "COMPONENT_NAMES",
]

COMPONENT_NAMES = ("buffer", "crossbar", "control", "clock", "link", "ni")


@dataclass
class ComponentPower:
    """Dynamic + static watts of one network component class."""

    dynamic_watts: float = 0.0
    static_watts: float = 0.0

    @property
    def total_watts(self) -> float:
        """Dynamic plus static power."""
        return self.dynamic_watts + self.static_watts


@dataclass
class NetworkPowerBreakdown:
    """Full power picture of one fabric configuration."""

    config_name: str
    components: dict[str, ComponentPower] = field(default_factory=dict)
    csc_fraction: float = 0.0

    @property
    def dynamic_watts(self) -> float:
        """Total dynamic network power."""
        return sum(c.dynamic_watts for c in self.components.values())

    @property
    def static_watts(self) -> float:
        """Total static (leakage) network power after gating."""
        return sum(c.static_watts for c in self.components.values())

    @property
    def total_watts(self) -> float:
        """Total network power."""
        return self.dynamic_watts + self.static_watts

    def as_row(self) -> dict[str, float | str]:
        """Flat record for table rendering."""
        row: dict[str, float | str] = {"config": self.config_name}
        for name, component in self.components.items():
            row[name] = component.total_watts
        row["dynamic"] = self.dynamic_watts
        row["static"] = self.static_watts
        row["total"] = self.total_watts
        return row


def compute_network_power(report: FabricReport) -> NetworkPowerBreakdown:
    """Evaluate the power model over a finished fabric report."""
    config = report.config
    cycles = report.cycles
    if cycles <= 0:
        raise ValueError("report covers zero cycles")
    frequency_hz = config.frequency_ghz * 1e9
    seconds = cycles / frequency_hz
    breakdown = NetworkPowerBreakdown(config_name=config.name)
    components = {name: ComponentPower() for name in COMPONENT_NAMES}
    breakdown.components = components
    model = RouterPowerModel(
        config.link_width_bits, config.voltage_v, config.num_subnets
    )
    breakeven = config.gating.breakeven_cycles
    for subnet in range(config.num_subnets):
        activity = report.activity[subnet]
        gating = report.gating[subnet]
        flit_hops = (
            activity["buffer_writes"] + activity["buffer_reads"]
        ) / 2.0
        components["buffer"].dynamic_watts += (
            flit_hops * model.buffer_energy_per_flit / seconds
        )
        components["crossbar"].dynamic_watts += (
            activity["crossbar_traversals"]
            * model.crossbar_energy_per_flit
            / seconds
        )
        components["link"].dynamic_watts += (
            activity["link_traversals"]
            * model.link_energy_per_flit
            / seconds
        )
        components["control"].dynamic_watts += (
            activity["crossbar_traversals"]
            * model.control_energy_per_flit
            / seconds
        )
        components["ni"].dynamic_watts += (
            (activity["flits_injected"] + activity["flits_ejected"])
            * model.ni_energy_per_flit
            / seconds
        )
        powered_cycles = gating.active_cycles + gating.wakeup_cycles
        components["clock"].dynamic_watts += (
            powered_cycles * model.clock_energy_per_cycle / seconds
        )
        # Leakage: sleeping routers leak nothing, but each sleep period
        # pays T-breakeven cycles of leakage-equivalent switching energy.
        total_router_cycles = gating.total_cycles
        leak_cycles = (
            total_router_cycles
            - gating.sleep_cycles
            + breakeven * gating.sleep_periods
        )
        static_watts = model.leakage_watts * leak_cycles / cycles
        for name in model.leakage_components():
            components[name].static_watts += (
                static_watts
                * model.leakage_share(name)
                / model.leakage_watts
            )
    # Regional congestion OR network (Catnap's only added hardware).
    components["control"].dynamic_watts += (
        report.rcs_transitions * OR_NETWORK_SWITCH_ENERGY_J / seconds
    )
    breakdown.csc_fraction = report.csc_fraction
    return breakdown


def power_at_port_load(
    config: NocConfig, port_load: float = 0.5
) -> NetworkPowerBreakdown:
    """Analytic power at a fixed per-port load factor (Figure 7).

    Every router input port is assumed to carry ``port_load``
    flits/cycle; no power gating is applied (Figure 7 characterizes the
    designs before gating).
    """
    if not 0.0 <= port_load <= 1.0:
        raise ValueError("port_load must be within [0, 1]")
    from repro.core.gating import GatingStats  # cycle-free import

    cycles = 1_000_000
    num_routers = config.num_nodes
    # Per router per cycle: 5 ports x port_load arrivals; each arrival
    # is one buffer write+read and one crossbar traversal.  Departures
    # through the four mesh ports use links (the local port ejects to
    # the NI); injections and ejections each run at port_load per node.
    flit_events = round(5 * port_load * num_routers * cycles)
    link_events = round(4 * port_load * num_routers * cycles)
    ni_events = round(2 * port_load * num_routers * cycles)
    activity = {
        "buffer_writes": flit_events,
        "buffer_reads": flit_events,
        "crossbar_traversals": flit_events,
        "link_traversals": link_events,
        "flits_injected": ni_events // 2,
        "flits_ejected": ni_events // 2,
        "packets_injected": 0,
        "packets_ejected": 0,
        "flit_cycles": 0,
    }
    gating = GatingStats(active_cycles=num_routers * cycles)
    report = FabricReport(
        config=config,
        cycles=cycles,
        activity=[dict(activity) for _ in range(config.num_subnets)],
        gating=[
            GatingStats(active_cycles=gating.active_cycles)
            for _ in range(config.num_subnets)
        ],
        gating_policy="none",
        rcs_transitions=0,
        avg_packet_latency=0.0,
        avg_network_latency=0.0,
        throughput_packets=0.0,
        throughput_flits=0.0,
        offered_rate=0.0,
        packets_received=0,
        subnet_injection_share=[],
    )
    return compute_network_power(report)
