"""Per-component router energy model (Orion-2 style, paper §4.2).

Dynamic energy is modelled per event (flit buffer write/read, crossbar
traversal, link traversal, NI flit, control operation) plus a per-cycle
clock term; leakage is a per-router power including the router's share
of links and NI.  Every component scales with datapath width ``W`` by a
component-specific exponent and with supply voltage as ``V**2``
(dynamic) or ``V`` (leakage).

Calibration — the constants below are fitted so the model reproduces
the paper's reported absolutes:

* Static power of the whole network is ~25 W both for 1NT-512b @ 0.750 V
  and 4NT-128b @ 0.625 V (Fig. 8: "static power for Single-NoC and
  Multi-NoC is about the same (25 W)").  Solving
  ``64*(A + 512*B)*0.75 = 25`` and ``256*(A + 128*B)*0.625 = 25`` gives
  ``A = 0.0348 W/V`` and ``B = 9.494e-4 W/(bit*V)``.
* At a per-port load factor of 0.5 (Fig. 7's operating point), dynamic
  power of 1NT-512b @ 0.750 V is ~45 W, split ~12 W buffers, ~16 W
  crossbar, ~6 W clock, ~1 W control, ~8 W links, ~1.5 W NI — matching
  Fig. 7's stack shape.  With 3.2e11 flit-hops/s at that point, the
  per-event reference energies below follow directly.
* The crossbar exponent 1.8 makes one 512-bit crossbar cost ~3x the
  power of four 128-bit crossbars (paper §5.2: super-linear crossbar
  scaling); the clock exponent 1.3 gives the reported super-linear
  clock-tree savings; links pay a 4 % crossover penalty per extra
  subnet (paper: +12 % for four subnets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["RouterPowerModel", "LEAKAGE_A_W_PER_V", "LEAKAGE_B_W_PER_BIT_V"]

#: Reference operating point for the per-event energies below.
_REF_WIDTH_BITS = 512
_REF_VOLTAGE_V = 0.750

#: Reference dynamic energies (joules per event) at 512 bits, 0.750 V.
_E_BUFFER_FLIT = 37.5e-12  # write + read, per flit-hop
_E_CROSSBAR_FLIT = 50.0e-12
_E_LINK_FLIT = 25.0e-12
_E_CONTROL_FLIT = 3.0e-12
_E_NI_FLIT = 11.7e-12
_E_CLOCK_CYCLE = 46.9e-12  # per active router per cycle

#: Width-scaling exponents per component.
_GAMMA_BUFFER = 1.0
_GAMMA_CROSSBAR = 1.8
_GAMMA_LINK = 1.0
_GAMMA_CONTROL = 0.0
_GAMMA_NI = 1.0
_GAMMA_CLOCK = 1.3

#: Link-length penalty for routing multiple subnets' links across a
#: node (paper §5.2 layout analysis: +12 % for four subnets).
_LINK_CROSSOVER_PENALTY_PER_SUBNET = 0.04

#: Leakage fit (see module docstring): P = (A + B*W) * V per router.
LEAKAGE_A_W_PER_V = 0.0348
LEAKAGE_B_W_PER_BIT_V = 9.494e-4

#: How leakage is attributed to components in breakdowns.
_LEAKAGE_SHARES = {
    "buffer": 0.40,
    "crossbar": 0.25,
    "link": 0.15,
    "clock": 0.08,
    "control": 0.07,
    "ni": 0.05,
}


def _scale(reference: float, width_bits: int, gamma: float) -> float:
    return reference * (width_bits / _REF_WIDTH_BITS) ** gamma


@dataclass(frozen=True)
class RouterPowerModel:
    """Energy/power figures for one router of a given subnet design.

    Parameters
    ----------
    width_bits:
        Datapath width of the subnet this router belongs to.
    voltage_v:
        Supply voltage of the subnet.
    num_subnets:
        Total subnets in the fabric (affects the link crossover
        penalty only).
    """

    width_bits: int
    voltage_v: float
    num_subnets: int = 1

    def __post_init__(self) -> None:
        check_positive("width_bits", self.width_bits)
        check_positive("voltage_v", self.voltage_v)
        check_positive("num_subnets", self.num_subnets)

    # ------------------------------------------------------------------
    # Dynamic energies (joules per event)
    # ------------------------------------------------------------------
    @property
    def _v_scale(self) -> float:
        return (self.voltage_v / _REF_VOLTAGE_V) ** 2

    @property
    def buffer_energy_per_flit(self) -> float:
        """Register-FIFO write + read energy for one flit."""
        return (
            _scale(_E_BUFFER_FLIT, self.width_bits, _GAMMA_BUFFER)
            * self._v_scale
        )

    @property
    def crossbar_energy_per_flit(self) -> float:
        """Matrix-crossbar traversal energy for one flit."""
        return (
            _scale(_E_CROSSBAR_FLIT, self.width_bits, _GAMMA_CROSSBAR)
            * self._v_scale
        )

    @property
    def link_energy_per_flit(self) -> float:
        """Inter-router link traversal energy for one flit."""
        penalty = 1.0 + _LINK_CROSSOVER_PENALTY_PER_SUBNET * (
            self.num_subnets - 1
        )
        return (
            _scale(_E_LINK_FLIT, self.width_bits, _GAMMA_LINK)
            * penalty
            * self._v_scale
        )

    @property
    def control_energy_per_flit(self) -> float:
        """Routing/arbitration control energy for one flit."""
        return (
            _scale(_E_CONTROL_FLIT, self.width_bits, _GAMMA_CONTROL)
            * self._v_scale
        )

    @property
    def ni_energy_per_flit(self) -> float:
        """Network-interface energy per injected or ejected flit."""
        return _scale(_E_NI_FLIT, self.width_bits, _GAMMA_NI) * self._v_scale

    @property
    def clock_energy_per_cycle(self) -> float:
        """Clock-tree energy per active router per cycle."""
        return (
            _scale(_E_CLOCK_CYCLE, self.width_bits, _GAMMA_CLOCK)
            * self._v_scale
        )

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------
    @property
    def leakage_watts(self) -> float:
        """Leakage power of one router plus its links/NI share."""
        return (
            LEAKAGE_A_W_PER_V + LEAKAGE_B_W_PER_BIT_V * self.width_bits
        ) * self.voltage_v

    def leakage_share(self, component: str) -> float:
        """Leakage attributed to a named component, in watts."""
        return self.leakage_watts * _LEAKAGE_SHARES[component]

    @staticmethod
    def leakage_components() -> tuple[str, ...]:
        """Component names used in leakage attribution."""
        return tuple(_LEAKAGE_SHARES)
