"""32 nm technology model: voltage-frequency scaling (paper Table 2).

The paper synthesizes the arbitration + matrix-crossbar stages at 32 nm
and finds the crossbar dominates the router critical path at widths of
256 bits and beyond, so narrower routers reach the same frequency at a
lower voltage.  We model the maximum frequency with an alpha-power-law
delay model whose three constants are fitted to reproduce Table 2
exactly:

* ``f(W, V) = K * (V - V_TH)^ALPHA / V / (1 + W / WIDTH_DELAY_BITS)``
* 512-bit router: 2.0 GHz @ 0.750 V, 1.4 GHz @ 0.625 V
* 128-bit router: 2.9 GHz @ 0.750 V, 2.0 GHz @ 0.625 V

Fit: ``ALPHA = 1.44`` makes the 0.625/0.750 frequency ratio 0.70 (the
paper's 1.4/2.0 and 2.0/2.9); ``WIDTH_DELAY_BITS = 725`` makes the
512b/128b frequency ratio 0.69 (2.0/2.9); ``K = 9.577`` anchors the
absolute 2.9 GHz point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = [
    "TECH_NODE_NM",
    "V_TH",
    "ALPHA",
    "WIDTH_DELAY_BITS",
    "FREQUENCY_K",
    "max_frequency_ghz",
    "min_voltage_for",
    "VoltageFrequencyPoint",
    "table2_rows",
]

TECH_NODE_NM = 32
V_TH = 0.35
ALPHA = 1.44
WIDTH_DELAY_BITS = 725.0
FREQUENCY_K = 9.577

#: Voltage search bounds for :func:`min_voltage_for`.
_V_MIN, _V_MAX = 0.40, 1.20


def max_frequency_ghz(width_bits: int, voltage_v: float) -> float:
    """Maximum router frequency for a datapath width at a voltage."""
    check_positive("width_bits", width_bits)
    check_in_range("voltage_v", voltage_v, V_TH + 1e-6, 2.0)
    headroom = voltage_v - V_TH
    drive = FREQUENCY_K * headroom**ALPHA / voltage_v
    return drive / (1.0 + width_bits / WIDTH_DELAY_BITS)


def min_voltage_for(width_bits: int, frequency_ghz: float) -> float:
    """Lowest supply voltage at which the router meets ``frequency_ghz``.

    Solved by bisection on the monotone :func:`max_frequency_ghz`.
    """
    check_positive("frequency_ghz", frequency_ghz)
    if max_frequency_ghz(width_bits, _V_MAX) < frequency_ghz:
        raise ValueError(
            f"{width_bits}-bit router cannot reach "
            f"{frequency_ghz} GHz below {_V_MAX} V"
        )
    low, high = _V_MIN, _V_MAX
    for _ in range(60):
        mid = 0.5 * (low + high)
        if max_frequency_ghz(width_bits, mid) >= frequency_ghz:
            high = mid
        else:
            low = mid
    return high


@dataclass(frozen=True)
class VoltageFrequencyPoint:
    """One row of Table 2."""

    design: str
    router_width_bits: int
    frequency_ghz: float
    voltage_v: float
    highlighted: bool


def table2_rows() -> list[VoltageFrequencyPoint]:
    """Regenerate Table 2 from the delay model.

    Frequencies are computed at the paper's two voltage points; the
    highlighted rows are the operating points used in the evaluation
    (both designs at 2 GHz).
    """
    rows = []
    for design, width in (("Single-NoC", 512), ("Multi-NoC", 128)):
        for voltage in (0.750, 0.625):
            freq = max_frequency_ghz(width, voltage)
            # Voltages are drawn from the literal grid above, but keep
            # the comparison tolerance-based (SIM005): a recomputed or
            # deserialized operating point must still highlight.
            highlighted = (
                width == 512 and math.isclose(voltage, 0.750)
            ) or (width == 128 and math.isclose(voltage, 0.625))
            rows.append(
                VoltageFrequencyPoint(
                    design=design,
                    router_width_bits=width,
                    frequency_ghz=round(freq, 1),
                    voltage_v=voltage,
                    highlighted=highlighted,
                )
            )
    return rows
