"""Orion-2-style network power model and 32 nm technology constants."""

from repro.power.network_power import (
    COMPONENT_NAMES,
    ComponentPower,
    NetworkPowerBreakdown,
    compute_network_power,
    power_at_port_load,
)
from repro.power.router_power import RouterPowerModel
from repro.power.technology import (
    max_frequency_ghz,
    min_voltage_for,
    table2_rows,
    VoltageFrequencyPoint,
)

__all__ = [
    "COMPONENT_NAMES",
    "ComponentPower",
    "NetworkPowerBreakdown",
    "compute_network_power",
    "power_at_port_load",
    "RouterPowerModel",
    "max_frequency_ghz",
    "min_voltage_for",
    "table2_rows",
    "VoltageFrequencyPoint",
]
