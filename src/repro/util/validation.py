"""Small argument-validation helpers used by public constructors."""

from __future__ import annotations

__all__ = ["check_positive", "check_in_range", "check_power_of_two"]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(
    name: str, value: float, low: float, high: float
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a power of two."""
    if value < 1 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value!r}")
