"""Plain-text table rendering for experiment reports.

Experiment drivers return row dictionaries; benches and examples render
them with :func:`format_table` so that every figure/table in the paper has
a textual equivalent that can be diffed across runs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``rows`` (mappings) as an aligned ASCII table.

    Parameters
    ----------
    rows:
        Sequence of mappings; all keys of the first row are used as
        columns unless ``columns`` is given.
    columns:
        Explicit column order (and subset) to render.
    title:
        Optional heading printed above the table.
    precision:
        Decimal places used for floats.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, ""), precision) for c in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def format_series(
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a single (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, [x_label, y_label], title, precision)
