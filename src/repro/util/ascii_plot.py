"""Terminal-friendly plotting: sparklines, bar charts, line charts.

Experiment drivers produce tables; these helpers render their series
as ASCII figures so the paper's plots have a visual analogue directly
in the terminal (and in saved ``.txt`` outputs).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["sparkline", "bar_chart", "line_chart", "heatmap"]

_SPARKS = "▁▂▃▄▅▆▇█"

_SHADES = " .:-=+*#%@"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a unicode sparkline string."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARKS[0] * len(values)
    levels = len(_SPARKS) - 1
    return "".join(
        _SPARKS[round((v - low) / span * levels)] for v in values
    )


def heatmap(
    grid: Sequence[Sequence[float]],
    title: str | None = None,
    cell_width: int = 2,
) -> str:
    """Render a 2-D grid of values as an intensity heatmap.

    Each cell maps linearly from ``[0, max]`` onto a ten-step shade
    ramp; rows render top to bottom in the given order.  Used by the
    telemetry samplers to show per-router occupancy over the mesh.
    """
    if not grid or not any(len(row) for row in grid):
        return title or ""
    peak = max((v for row in grid for v in row), default=0.0)
    levels = len(_SHADES) - 1
    lines = [] if title is None else [title]
    for row in grid:
        cells = []
        for value in row:
            level = round(value / peak * levels) if peak > 0 else 0
            cells.append(_SHADES[level] * cell_width)
        lines.append("|" + "".join(cells) + "|")
    lines.append(f"scale: ' '=0 .. '@'={peak:.3g}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render horizontal bars, one per (label, value) pair."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title or ""
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} |{bar} {value:.3g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render one or more y-series against shared x values.

    Each series is drawn with its own marker character; the chart is a
    plain character grid with a y-axis range annotation.
    """
    if not xs or not series:
        return title or ""
    markers = "*o+x@%"
    all_values = [v for ys in series.values() for v in ys]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    x_low, x_high = min(xs), max(xs)
    x_span = (x_high - x_low) or 1.0
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - low) / span * (height - 1))
            grid[row][col] = marker
    lines = [] if title is None else [title]
    lines.append(f"y: [{low:.3g} .. {high:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_low:.3g} .. {x_high:.3g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
