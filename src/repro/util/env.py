"""The central registry of ``REPRO_*`` environment variables.

Every environment variable the simulator consumes is declared here —
name, type, default, and the documentation page that defines it — and
every *read* anywhere in ``src/repro`` must go through the typed
helpers in this module.  That single-choke-point rule is enforced
statically by the ``SIM104`` contract check (``python -m
repro.analysis contracts``, see ``docs/analysis.md``): a raw
``os.environ.get("REPRO_...")`` outside this module, an unregistered
name, or a registry/doc mismatch against ``docs/index.md`` is a lint
failure, so a new knob cannot ship half-documented.

Writes (the experiments CLI exporting policy to forked sweep workers)
still use ``os.environ[...] = ...`` directly — the registry governs
how configuration is *consumed*, not how processes hand it down — but
the names written must be registered, which SIM104 also checks.

Reads happen at call time, never at import time, so tests and the CLI
may mutate ``os.environ`` freely between fabric constructions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "EnvVar",
    "REGISTRY",
    "registered_names",
    "raw",
    "text",
    "flag",
    "integer",
    "floating",
]


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable.

    ``kind`` is advisory metadata for docs and tooling ("flag",
    "text", "int", "float", "path", "spec"); ``doc_page`` is the
    ``docs/`` page that defines the variable (SIM104 cross-checks the
    ``docs/index.md`` table against it).
    """

    name: str
    kind: str
    default: str
    doc_page: str
    description: str


#: Every known variable, keyed by name.  Populated by the module-level
#: ``EnvVar`` declarations below; SIM104 extracts the same names
#: statically from this file's AST.
REGISTRY: dict[str, EnvVar] = {}


def _register(var: EnvVar) -> EnvVar:
    if var.name in REGISTRY:
        raise ValueError(f"duplicate env-var registration: {var.name}")
    REGISTRY[var.name] = var
    return var


# -- simulation kernel -------------------------------------------------
_register(EnvVar(
    "REPRO_BACKEND", "text", "dense", "architecture.md",
    "time-loop kernel for every fabric: dense (default) or skip",
))

# -- experiment pipeline -----------------------------------------------
_register(EnvVar(
    "REPRO_SCALE", "float", "1.0", "experiments.md",
    "global cycle-count scale factor for experiment drivers",
))
_register(EnvVar(
    "REPRO_JOBS", "int", "<all cores>", "experiments.md",
    "sweep worker-pool size (1 disables multiprocessing)",
))
_register(EnvVar(
    "REPRO_NO_CACHE", "flag", "unset", "experiments.md",
    "disable the on-disk sweep result cache",
))
_register(EnvVar(
    "REPRO_CACHE_DIR", "path", "results/.cache", "experiments.md",
    "directory of the content-hashed sweep result cache",
))

# -- runtime invariant checker -----------------------------------------
_register(EnvVar(
    "REPRO_CHECK", "flag", "unset", "analysis.md",
    "attach the runtime invariant checker to every fabric",
))
_register(EnvVar(
    "REPRO_CHECK_INTERVAL", "int", "1", "analysis.md",
    "check every N-th cycle (laws hold at every cycle boundary)",
))
_register(EnvVar(
    "REPRO_CHECK_STALL", "int", "1024", "analysis.md",
    "deadlock-watchdog horizon in cycles",
))

# -- fault injection ---------------------------------------------------
_register(EnvVar(
    "REPRO_FAULTS", "spec", "unset", "faults.md",
    "fault-injection spec (rate=...;classes=...;seed=...)",
))

# -- telemetry ---------------------------------------------------------
_register(EnvVar(
    "REPRO_TELEMETRY", "flag", "unset", "telemetry.md",
    "attach the telemetry hub to every fabric",
))
_register(EnvVar(
    "REPRO_TELEMETRY_DIR", "path", "results/telemetry", "telemetry.md",
    "telemetry artifact output directory",
))
_register(EnvVar(
    "REPRO_TELEMETRY_PERIOD", "int", "64", "telemetry.md",
    "time-series sampling period in cycles",
))
_register(EnvVar(
    "REPRO_TELEMETRY_MAX_PACKETS", "int", "20000", "telemetry.md",
    "per-fabric cap on fully-traced packets",
))

# -- attribution -------------------------------------------------------
_register(EnvVar(
    "REPRO_EXPLAIN", "spec", "unset", "explain.md",
    "attach the attribution hub: 1 (both), latency, or energy",
))
_register(EnvVar(
    "REPRO_EXPLAIN_DIR", "path", "results/explain", "explain.md",
    "attribution artifact output directory",
))

# -- simulator self-profiling ------------------------------------------
_register(EnvVar(
    "REPRO_PERF", "flag", "unset", "perf.md",
    "attach the phase profiler to every fabric",
))
_register(EnvVar(
    "REPRO_PERF_DIR", "path", "results/perf", "perf.md",
    "profile artifact output directory",
))
_register(EnvVar(
    "REPRO_PERF_CPROFILE", "flag", "unset", "perf.md",
    "additionally capture a deterministic cProfile per step",
))

# -- campaign observability --------------------------------------------
_register(EnvVar(
    "REPRO_OBS", "flag", "unset", "obs.md",
    "attach the run-ledger observer to every sweep",
))
_register(EnvVar(
    "REPRO_OBS_DIR", "path", "results/obs", "obs.md",
    "run-ledger output directory (one subdirectory per run)",
))

# -- serving workloads -------------------------------------------------
_register(EnvVar(
    "REPRO_WORKLOADS", "spec", "tenants:rates=0.06,0.03,0.01",
    "workloads.md",
    "serving workload spec swept by ext_serving (kind:key=value;...)",
))
_register(EnvVar(
    "REPRO_WORKLOADS_DIR", "path", "results/workloads", "workloads.md",
    "default output directory for recorded streaming traces",
))
_register(EnvVar(
    "REPRO_WORKLOADS_CHUNK", "int", "65536", "workloads.md",
    "records per compressed chunk in the streaming trace format",
))

# -- benchmark harness -------------------------------------------------
_register(EnvVar(
    "REPRO_BENCH_SCALE", "float", "0.35", "perf.md",
    "cycle-count scale for the pytest benchmark harness",
))


def registered_names() -> tuple[str, ...]:
    """Every registered variable name, sorted."""
    return tuple(sorted(REGISTRY))


def _require(name: str) -> None:
    if name not in REGISTRY:
        raise KeyError(
            f"unregistered environment variable {name!r}; declare it in "
            "repro.util.env (and docs/index.md) first"
        )


def raw(name: str) -> str | None:
    """The raw value, or ``None`` when unset.

    The only helper that distinguishes *unset* from *empty* — use it
    when the default depends on the caller (e.g. ``REPRO_JOBS`` falls
    back to the core count).
    """
    _require(name)
    return os.environ.get(name)


def text(name: str, default: str = "") -> str:
    """The value as text; unset and empty both yield ``default``."""
    _require(name)
    return os.environ.get(name, "") or default


def flag(name: str) -> bool:
    """True when set to anything but ``""`` or ``"0"``.

    The shared on/off convention of every ``REPRO_*`` switch
    (``REPRO_CHECK``, ``REPRO_PERF``, ``REPRO_TELEMETRY``, ...).
    """
    _require(name)
    return os.environ.get(name, "") not in ("", "0")


def integer(name: str, default: int) -> int:
    """The value as an ``int``; unset and empty yield ``default``."""
    _require(name)
    value = os.environ.get(name, "")
    return int(value) if value else default


def floating(name: str, default: float) -> float:
    """The value as a ``float``; unset and empty yield ``default``."""
    _require(name)
    value = os.environ.get(name, "")
    return float(value) if value else default
