"""Deterministic random number generation for reproducible simulations.

Every stochastic component in the simulator draws from a
:class:`DeterministicRng` seeded from an experiment-level seed plus a
stream name, so that adding a new consumer of randomness never perturbs
the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["DeterministicRng", "derive_seed"]


def derive_seed(base_seed: int, stream: str) -> int:
    """Derive a child seed from ``base_seed`` and a ``stream`` label.

    The derivation hashes the pair so that streams are statistically
    independent and stable across runs and platforms.
    """
    digest = hashlib.sha256(f"{base_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng(random.Random):
    """A :class:`random.Random` with named-substream derivation.

    Parameters
    ----------
    seed:
        Base seed for this generator.
    stream:
        Optional label; two generators with the same seed but different
        stream labels produce independent sequences.
    """

    def __init__(self, seed: int, stream: str = "root") -> None:
        self._base_seed = seed
        self._stream = stream
        super().__init__(derive_seed(seed, stream))

    @property
    def stream(self) -> str:
        """Label of this generator's substream."""
        return self._stream

    def substream(self, stream: str) -> "DeterministicRng":
        """Return a new independent generator for ``stream``."""
        return DeterministicRng(self._base_seed, f"{self._stream}/{stream}")
