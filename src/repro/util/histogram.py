"""Bounded integer histograms for latency-style distributions.

A cycle-level simulator produces millions of latency samples; storing
them all to compute percentiles is unbounded memory for an end-of-run
aggregate.  :class:`BoundedHistogram` keeps exact unit-width bins for
small values (where packet latencies cluster and a one-cycle error
would be visible) and power-of-two bins for the tail, so memory is a
small constant regardless of sample count while p50/p95/p99 stay exact
below ``linear_limit`` and within a factor-of-two bucket above it.

Used by :class:`repro.noc.stats.NetworkStats` (measurement-window
packet latency) and by the telemetry samplers
(:mod:`repro.telemetry.samplers`) for latency and wakeup-latency
distributions.
"""

from __future__ import annotations

__all__ = ["BoundedHistogram"]


class BoundedHistogram:
    """Fixed-memory histogram over non-negative integer samples.

    Values below ``linear_limit`` land in exact unit bins; larger
    values land in power-of-two bins ``[2^k, 2^{k+1})`` up to
    ``2^63``-ish, so any plausible cycle count is representable.
    Percentiles report the exact value in the linear range and the
    bucket midpoint in the geometric range.
    """

    __slots__ = ("linear_limit", "count", "total", "max_value",
                 "_linear", "_geometric")

    #: Number of geometric (power-of-two) tail buckets.
    GEOMETRIC_BINS = 56

    def __init__(self, linear_limit: int = 128) -> None:
        if linear_limit < 1:
            raise ValueError("linear_limit must be >= 1")
        self.linear_limit = linear_limit
        self.count = 0
        self.total = 0
        self.max_value = 0
        self._linear = [0] * linear_limit
        self._geometric = [0] * self.GEOMETRIC_BINS

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: int, weight: int = 1) -> None:
        """Add ``value`` ``weight`` times; negative values raise.

        A negative sample is always a caller bug — typically a latency
        computed from a sentinel ``-1`` timestamp of a packet that was
        never injected or received.  Folding it into bin 0 would
        silently skew percentiles, so it fails loudly instead; callers
        must exclude unfinished packets before recording.
        """
        if value < 0:
            raise ValueError(
                f"negative histogram sample {value}; exclude "
                "sentinel-timestamped (unfinished) packets before "
                "recording"
            )
        self.count += weight
        self.total += value * weight
        if value > self.max_value:
            self.max_value = value
        if value < self.linear_limit:
            self._linear[value] += weight
            return
        index = value.bit_length() - self.linear_limit.bit_length()
        if index >= self.GEOMETRIC_BINS:
            index = self.GEOMETRIC_BINS - 1
        self._geometric[index] += weight

    def merge(self, other: "BoundedHistogram") -> None:
        """Fold ``other`` into this histogram (same ``linear_limit``)."""
        if other.linear_limit != self.linear_limit:
            raise ValueError("cannot merge histograms with different "
                             "linear_limit values")
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        for i, n in enumerate(other._linear):
            self._linear[i] += n
        for i, n in enumerate(other._geometric):
            self._geometric[i] += n

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def _geometric_bounds(self, index: int) -> tuple[int, int]:
        """Inclusive [lo, hi] value range of geometric bucket ``index``."""
        bits = self.linear_limit.bit_length() + index
        lo = 1 << (bits - 1)
        hi = (1 << bits) - 1
        if index == 0:
            lo = self.linear_limit
        return lo, hi

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in (0, 1]; 0.0 on an empty histogram.

        Exact in the linear range; the bucket midpoint in the
        geometric tail.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        # Smallest rank whose cumulative count covers q of the samples.
        target = q * self.count
        cumulative = 0
        for value, n in enumerate(self._linear):
            if not n:
                continue
            cumulative += n
            if cumulative >= target:
                return float(value)
        for index, n in enumerate(self._geometric):
            if not n:
                continue
            cumulative += n
            if cumulative >= target:
                lo, hi = self._geometric_bounds(index)
                return (lo + min(hi, self.max_value)) / 2.0
        return float(self.max_value)

    def percentiles(self, *qs: float) -> list[float]:
        """Convenience: one :meth:`percentile` call per quantile."""
        return [self.percentile(q) for q in qs]

    def to_dict(self) -> dict:
        """JSON-safe snapshot: summary stats plus non-empty bins.

        ``bins`` is a list of ``[lo, hi, count]`` (inclusive bounds)
        for every non-empty bucket, in ascending value order.
        """
        bins: list[list[int]] = []
        for value, n in enumerate(self._linear):
            if n:
                bins.append([value, value, n])
        for index, n in enumerate(self._geometric):
            if n:
                lo, hi = self._geometric_bounds(index)
                bins.append([lo, hi, n])
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "max": self.max_value,
            "linear_limit": self.linear_limit,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "bins": bins,
        }
