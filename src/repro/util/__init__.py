"""Shared utilities: RNG, tables, ASCII plotting, validation."""

from repro.util.ascii_plot import bar_chart, line_chart, sparkline
from repro.util.rng import DeterministicRng
from repro.util.tables import format_table
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
)

__all__ = [
    "bar_chart",
    "line_chart",
    "sparkline",
    "DeterministicRng",
    "format_table",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
]
