"""Catnap: energy proportional multiple network-on-chip (ISCA 2013).

A full reproduction of the Catnap architecture: a cycle-level multiple
network-on-chip simulator with congestion-aware subnet selection,
regional congestion detection, router power gating, an Orion-2-style
power model, and a closed-loop 256-core processor substrate.

Quickstart::

    from repro import NocConfig, MultiNocFabric, run_open_loop
    from repro import SyntheticTrafficSource, make_pattern

    config = NocConfig.multi_noc(num_subnets=4, power_gating=True)
    fabric = MultiNocFabric(config)
    pattern = make_pattern("uniform", fabric.mesh)
    source = SyntheticTrafficSource(fabric, pattern, load=0.05)
    report = run_open_loop(fabric, source)
    print(report.avg_packet_latency, report.csc_fraction)
"""

from repro.noc import (
    CongestionConfig,
    FabricReport,
    MessageClass,
    MultiNocFabric,
    NocConfig,
    Packet,
    PowerGatingConfig,
    SimulationPhases,
    run_open_loop,
)
from repro.traffic import (
    BurstyTrafficSource,
    SyntheticTrafficSource,
    make_pattern,
)

__version__ = "1.0.0"

__all__ = [
    "CongestionConfig",
    "FabricReport",
    "MessageClass",
    "MultiNocFabric",
    "NocConfig",
    "Packet",
    "PowerGatingConfig",
    "SimulationPhases",
    "run_open_loop",
    "BurstyTrafficSource",
    "SyntheticTrafficSource",
    "make_pattern",
    "__version__",
]
