"""``python -m repro.obs`` — inspect recorded campaign runs.

Subcommands::

    ls                      list runs under the obs root
    status [RUN] [--follow] render live progress for a run
    report [RUN] [--json]   artifact-joined rollup + report.json

``RUN`` may be a run-directory path, a ``ledger.jsonl`` path, an exact
run-directory name, or a unique run-id prefix; omitted, the most
recently written run is used — so ``python -m repro.obs status
--follow`` in one terminal tails the sweep another terminal just
started.  Exit codes: 0 on success, 1 for an unresolvable run
reference, 2 for argparse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs import ledger as ledger_mod
from repro.obs.ledger import LEDGER_NAME, read_ledger
from repro.obs.report import render_report, write_report
from repro.obs.status import (
    render_ls,
    render_status,
    replay,
    resolve_run,
)

#: ``--follow`` re-render period, seconds.
_FOLLOW_INTERVAL = 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect campaign run ledgers (see docs/obs.md).",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="obs root to search (default: $REPRO_OBS_DIR or results/obs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ls", help="list recorded runs")

    status = sub.add_parser(
        "status", help="render progress for one run"
    )
    status.add_argument(
        "run", nargs="?", default=None, help="run dir/name/prefix"
    )
    status.add_argument(
        "--follow",
        action="store_true",
        help="re-render until the run finishes (tails a live ledger)",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=_FOLLOW_INTERVAL,
        help="--follow refresh period in seconds",
    )

    report = sub.add_parser(
        "report", help="artifact-joined rollup for one run"
    )
    report.add_argument(
        "run", nargs="?", default=None, help="run dir/name/prefix"
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="print the report document instead of the table",
    )

    args = parser.parse_args(argv)
    root = args.dir if args.dir is not None else ledger_mod.default_dir()

    if args.command == "ls":
        print(render_ls(root))
        return 0

    run_dir = resolve_run(args.run, root)
    if run_dir is None:
        ref = args.run or "<latest>"
        print(
            f"obs: no run matching {ref!r} under {root}",
            file=sys.stderr,
        )
        return 1

    if args.command == "status":
        return _status(run_dir, args.follow, args.interval)

    report_doc, out = write_report(run_dir)
    if args.json:
        print(json.dumps(report_doc, indent=2, sort_keys=True))
    else:
        print(render_report(report_doc))
        print(f"report: {out}")
    return 0


def _status(run_dir: object, follow: bool, interval: float) -> int:
    """Render once, or repeatedly until the ledger reports finished."""
    from pathlib import Path

    ledger = Path(str(run_dir)) / LEDGER_NAME
    while True:
        events, warnings = read_ledger(ledger)
        state = replay(events, warnings)
        text = render_status(state)
        if follow and not state.finished:
            # Clear-and-home keeps the block stable on ANSI terminals;
            # piped output just sees successive blocks.
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(text, flush=True)
            time.sleep(max(0.1, interval))
            continue
        print(text)
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
