"""Artifact-directory scanning and artifact readers for the rollup.

Three subsystems drop per-point files into ``results/`` directories
while a sweep runs: telemetry (``*.timeseries.json``, ``*.trace.json``,
``*.summary.txt``), perf (``*.perf.json``, ``*.pstats``,
``*.folded.txt``), and the ledger itself.  :class:`ArtifactScanner` is
the one implementation of "which files appeared since I last looked" —
:class:`repro.telemetry.observer.TelemetryObserver`,
:class:`repro.perf.observer.PerfObserver`, and the run ledger all scan
through it, so a new artifact suffix only has to be taught in one
place.

The module also holds the readers the campaign rollup
(:mod:`repro.obs.report`) uses to *join* a ledger with the artifacts
its points recorded.  Every reader degrades gracefully: a missing,
truncated, or schema-foreign file yields ``None``, never an exception,
because a rollup over an interrupted campaign must still render the
points that did complete.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "TELEMETRY_SUFFIXES",
    "PERF_SUFFIXES",
    "EXPLAIN_SUFFIXES",
    "ArtifactScanner",
    "classify_artifact",
    "explain_tax",
    "next_flush_ref",
    "read_json_artifact",
    "sleep_fractions",
]

#: File suffixes the telemetry hub's ``flush`` produces.
TELEMETRY_SUFFIXES: tuple[str, ...] = (
    ".timeseries.json",
    ".trace.json",
    ".summary.txt",
)

#: File suffixes the phase profiler's ``flush`` produces.
PERF_SUFFIXES: tuple[str, ...] = (".perf.json", ".pstats", ".folded.txt")

#: File suffixes the attribution hub's ``flush`` produces.
EXPLAIN_SUFFIXES: tuple[str, ...] = (".explain.json",)

#: Suffix → artifact kind, most specific first (``.timeseries.json``
#: must win over a hypothetical bare ``.json`` entry).
_KINDS: tuple[tuple[str, str], ...] = (
    (".timeseries.json", "telemetry-timeseries"),
    (".trace.json", "telemetry-trace"),
    (".summary.txt", "telemetry-summary"),
    (".perf.json", "perf-profile"),
    (".pstats", "perf-pstats"),
    (".folded.txt", "perf-folded"),
    (".explain.json", "explain-attribution"),
)


class ArtifactScanner:
    """Tracks fresh artifact files appearing in one directory.

    ``fresh()`` returns the paths of matching files that appeared since
    the previous call (or since :meth:`prime`), sorted by name so the
    report order is deterministic.  A directory that does not exist yet
    simply scans empty — subsystems create their directories lazily on
    first flush.
    """

    def __init__(
        self, directory: str, suffixes: tuple[str, ...]
    ) -> None:
        self.directory = directory
        self.suffixes = suffixes
        self._known: set[str] = set()

    def scan(self) -> list[str]:
        """All matching file names currently present, sorted."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name for name in names if name.endswith(self.suffixes)
        )

    def prime(self) -> None:
        """Mark everything currently present as already known.

        Pre-existing artifacts belong to earlier runs; callers prime at
        sweep start so only this sweep's output is reported.
        """
        self._known.update(self.scan())

    def fresh(self) -> list[str]:
        """Paths of files that appeared since the last look, sorted."""
        paths: list[str] = []
        for name in self.scan():
            if name in self._known:
                continue
            self._known.add(name)
            paths.append(os.path.join(self.directory, name))
        return paths


#: Process-wide flush counts per artifact-stem prefix; see
#: :func:`next_flush_ref`.
_FLUSH_REFS: dict[str, int] = {}


def next_flush_ref(prefix: str) -> int:
    """Next free ``-r<n>`` suffix for ``prefix`` in this process.

    Telemetry hubs and phase profilers name their artifacts
    ``{config}-s{seed}-p{pid}-r{n}``.  The ``r`` counter must be
    process-wide, not per-writer-instance: a sweep probing two loads
    of one configuration builds two fabrics (each with its own hub or
    profiler) in the same process, and per-instance counters would
    both pick ``r0`` — the second flush silently overwriting the
    first's artifacts.  Forked pool workers inherit a copy of the
    table, but their pid lands in the prefix, so inherited entries are
    merely unused.
    """
    ref = _FLUSH_REFS.get(prefix, 0)
    _FLUSH_REFS[prefix] = ref + 1
    return ref


def classify_artifact(path: str) -> str:
    """Artifact kind for ``path`` (``"other"`` when unrecognized)."""
    for suffix, kind in _KINDS:
        if path.endswith(suffix):
            return kind
    return "other"


def read_json_artifact(path: str) -> dict[str, object] | None:
    """Parse a JSON artifact; ``None`` on any read or parse failure."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def sleep_fractions(path: str) -> list[float] | None:
    """Per-subnet sleep fraction from a ``*.timeseries.json`` artifact.

    The telemetry summary records exact per-subnet sleep cycles
    (reconciled against ``GatingStats``); dividing by routers-per-
    subnet × simulated cycles gives the fraction of router-cycles each
    subnet spent power-gated — the quantity the energy-proportionality
    rollup plots against offered load.  Returns ``None`` when the file
    is missing/corrupt or carries no usable occupancy data.
    """
    doc = read_json_artifact(path)
    if doc is None:
        return None
    summary = doc.get("summary")
    series = doc.get("series")
    if not isinstance(summary, dict) or not isinstance(series, dict):
        return None
    sleep_cycles = summary.get("sleep_cycles_by_subnet")
    cycles = summary.get("cycles")
    if not isinstance(sleep_cycles, list) or not isinstance(cycles, int):
        return None
    if cycles <= 0:
        return None
    routers = _routers_per_subnet(series)
    if routers is None or routers <= 0:
        return None
    fractions: list[float] = []
    for total in sleep_cycles:
        if not isinstance(total, (int, float)):
            return None
        fractions.append(float(total) / (routers * cycles))
    return fractions


def explain_tax(
    path: str,
) -> tuple[list[float | None], list[float | None]] | None:
    """Per-subnet attribution columns from a ``*.explain.json`` file.

    Returns ``(energy_per_flit_j, mean_wakeup_stall)`` lists indexed
    by subnet — the two columns the campaign rollup joins.  Entries
    are ``None`` when that decomposition was disabled or the subnet
    carried no flits; the whole result is ``None`` when the file is
    missing, corrupt, or schema-foreign.
    """
    doc = read_json_artifact(path)
    if doc is None or doc.get("schema") != "repro.explain/1":
        return None
    tax = doc.get("tax")
    if not isinstance(tax, dict):
        return None
    rows = tax.get("per_subnet")
    if not isinstance(rows, list) or not rows:
        return None
    per_flit: list[float | None] = []
    stall: list[float | None] = []
    for row in rows:
        if not isinstance(row, dict):
            return None
        energy = row.get("energy_per_flit_j")
        wakeup = row.get("mean_wakeup_stall")
        per_flit.append(
            float(energy) if isinstance(energy, (int, float)) else None
        )
        stall.append(
            float(wakeup) if isinstance(wakeup, (int, float)) else None
        )
    return per_flit, stall


def _routers_per_subnet(series: dict[str, object]) -> int | None:
    """Router count per subnet from the first occupancy sample."""
    subnets = series.get("subnets")
    if not isinstance(subnets, list) or not subnets:
        return None
    first = subnets[0]
    if not isinstance(first, dict):
        return None
    total = 0
    for key in ("active", "sleep", "wakeup"):
        column = first.get(key)
        if (
            not isinstance(column, list)
            or not column
            or not isinstance(column[0], int)
        ):
            return None
        total += column[0]
    return total
