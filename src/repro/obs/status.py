"""Ledger replay and live status rendering for ``repro.obs``.

A ledger is an append-only event log, so "what is this campaign doing
right now" is a pure fold: :func:`replay` reduces the events seen so
far into a :class:`RunState`, and :func:`render_status` turns one state
into the text block the ``status`` subcommand prints.  Because
:func:`repro.obs.ledger.read_ledger` tolerates the partial trailing
line of a file another process is still appending to, ``status
--follow`` can re-read and re-render in a loop against a live sweep
with no coordination beyond the filesystem.

Run directories are resolved by :func:`resolve_run`: an explicit path,
an exact run-directory name, a unique run-id prefix, or — with no
reference at all — the most recently modified run under the obs root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.ledger import LEDGER_NAME, canonical_digest, read_ledger
from repro.perf.meters import throughput_suffix
from repro.util.ascii_plot import sparkline
from repro.util.tables import format_table

__all__ = [
    "RunState",
    "WorkerState",
    "replay",
    "render_status",
    "render_ls",
    "resolve_run",
    "list_runs",
]

#: Sparkline window: the most recent N per-point throughput samples.
_SPARK_WINDOW = 32


@dataclass
class WorkerState:
    """Accumulated heartbeat record for one worker pid."""

    pid: int
    points: int = 0
    cycles: int = 0
    flits: int = 0
    busy_seconds: float = 0.0


@dataclass
class RunState:
    """Everything ``status`` renders, folded from ledger events."""

    run_id: str = ""
    total: int = 0
    jobs: int = 0
    cache: bool = False
    done: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    finished: bool = False
    digest: str | None = None
    retried: int = 0
    exec_seconds: float = 0.0
    sim_cycles: int = 0
    sim_flits: int = 0
    wall_seconds: float = 0.0
    artifacts: int = 0
    workers: dict[int, WorkerState] = field(default_factory=dict)
    #: Per executed point: (cycles/s, flits/s), ledger order.
    rates: list[tuple[float, float]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    spec_index: list[dict[str, Any]] = field(default_factory=list)
    #: Describe strings of failed points, ledger order.
    failures: list[str] = field(default_factory=list)


def replay(
    events: list[dict[str, Any]],
    warnings: list[str] | None = None,
) -> RunState:
    """Fold ledger ``events`` into the current :class:`RunState`."""
    state = RunState(warnings=list(warnings or []))
    describe: dict[int, str] = {}
    for event in events:
        kind = event.get("event")
        if kind == "sweep_started":
            state.run_id = str(event.get("run_id", ""))
            state.total = _as_int(event.get("total"))
            state.jobs = _as_int(event.get("jobs"))
            state.cache = bool(event.get("cache"))
            index = event.get("spec_index")
            if isinstance(index, list):
                state.spec_index = [
                    entry for entry in index if isinstance(entry, dict)
                ]
                for entry in state.spec_index:
                    describe[_as_int(entry.get("index"))] = str(
                        entry.get("describe", "")
                    )
        elif kind == "cache_hit":
            state.done += 1
            state.cache_hits += 1
        elif kind == "point_finished":
            state.done += 1
            state.executed += 1
            state.exec_seconds += _as_float(event.get("elapsed"))
            artifacts = event.get("artifacts")
            if isinstance(artifacts, list):
                state.artifacts += len(artifacts)
        elif kind == "heartbeat":
            pid = _as_int(event.get("pid"))
            worker = state.workers.setdefault(pid, WorkerState(pid))
            cycles = _as_int(event.get("cycles"))
            flits = _as_int(event.get("flits"))
            elapsed = _as_float(event.get("elapsed"))
            worker.points += 1
            worker.cycles += cycles
            worker.flits += flits
            worker.busy_seconds += elapsed
            state.sim_cycles += cycles
            state.sim_flits += flits
            if elapsed > 0:
                state.rates.append(
                    (cycles / elapsed, flits / elapsed)
                )
        elif kind == "point_failed":
            state.done += 1
            state.failed += 1
            index = _as_int(event.get("index"))
            label = describe.get(index, f"point {index}")
            state.failures.append(
                f"{label}: {event.get('error', '?')}"
            )
        elif kind == "sweep_finished":
            state.finished = True
            digest = event.get("digest")
            state.digest = digest if isinstance(digest, str) else None
            stats = event.get("stats")
            if isinstance(stats, dict):
                state.retried = _as_int(stats.get("retried_points"))
                state.wall_seconds = _as_float(
                    stats.get("wall_seconds")
                )
    return state


def render_status(state: RunState) -> str:
    """The ``status`` text block for one replayed run state."""
    lines: list[str] = []
    phase = "finished" if state.finished else "running"
    lines.append(
        f"run {state.run_id or '?'} [{phase}] "
        f"jobs={state.jobs} cache={'on' if state.cache else 'off'}"
    )
    lines.append(
        f"  progress: {state.done}/{state.total} points "
        f"{_bar(state.done, state.total)}"
    )
    ratio = (
        f" ({100.0 * state.cache_hits / state.done:.0f}%)"
        if state.done
        else ""
    )
    lines.append(
        f"  cache:    {state.cache_hits} hits / "
        f"{state.executed} simulated{ratio}"
    )
    if state.failed or state.retried:
        lines.append(
            f"  failures: {state.failed} failed, "
            f"{state.retried} retried"
        )
        for failure in state.failures:
            lines.append(f"    - {failure}")
    seconds = (
        state.wall_seconds if state.finished else state.exec_seconds
    )
    rates = throughput_suffix(
        state.sim_cycles, state.sim_flits, seconds
    )
    if rates:
        lines.append(f"  rate:     {rates}")
    window = state.rates[-_SPARK_WINDOW:]
    if window:
        lines.append(
            f"  cycles/s: {sparkline([c for c, _ in window])}"
        )
        lines.append(
            f"  flits/s:  {sparkline([f for _, f in window])}"
        )
    if state.artifacts:
        lines.append(f"  artifacts: {state.artifacts} recorded")
    if state.workers:
        busiest = max(
            w.busy_seconds for w in state.workers.values()
        )
        for pid in sorted(state.workers):
            worker = state.workers[pid]
            share = (
                worker.busy_seconds / busiest if busiest > 0 else 0.0
            )
            lines.append(
                f"  worker {pid}: {worker.points} points, "
                f"{worker.busy_seconds:.2f}s busy "
                f"{_meter(share)}"
            )
    if state.finished and state.digest:
        lines.append(f"  digest:   {state.digest}")
    for warning in state.warnings:
        lines.append(f"  warning:  {warning}")
    return "\n".join(lines)


def list_runs(root: "Path | str") -> list[dict[str, object]]:
    """One summary row per run directory under ``root``.

    Sorted by ledger modification time (oldest first) so the listing
    reads chronologically; rows degrade gracefully for damaged runs.
    """
    base = Path(root)
    stamped: list[tuple[float, Path]] = []
    try:
        children = sorted(base.iterdir())
    except OSError:
        return []
    for child in children:
        ledger = child / LEDGER_NAME
        if not ledger.is_file():
            continue
        try:
            stamp = ledger.stat().st_mtime
        except OSError:
            stamp = 0.0
        stamped.append((stamp, child))
    rows: list[dict[str, object]] = []
    for _, child in sorted(stamped, key=lambda item: item[0]):
        events, warnings = read_ledger(child / LEDGER_NAME)
        state = replay(events, warnings)
        rows.append(
            {
                "run": child.name,
                "points": f"{state.done}/{state.total}",
                "failed": state.failed,
                "cached": state.cache_hits,
                "status": "finished" if state.finished else "running",
                "digest": (state.digest or "")[:12],
            }
        )
    return rows


def render_ls(root: "Path | str") -> str:
    """The ``ls`` table for every run recorded under ``root``."""
    rows = list_runs(root)
    if not rows:
        return f"no runs under {root}"
    return format_table(
        rows,
        columns=[
            "run",
            "points",
            "failed",
            "cached",
            "status",
            "digest",
        ],
        title=f"recorded runs ({root})",
    )


def resolve_run(ref: str | None, root: "Path | str") -> Path | None:
    """Locate a run directory from a user-supplied reference.

    Accepts, in order of precedence: a filesystem path (to a run
    directory or directly to a ``ledger.jsonl``), an exact run
    directory name under ``root``, a unique name prefix (run-ids are
    hex prefixes of the spec digest hash, so ``catnap obs status
    68dfd8`` works), or ``None`` for the most recently written run.
    Returns ``None`` when nothing (or nothing unambiguous) matches.
    """
    base = Path(root)
    if ref:
        as_path = Path(ref)
        if as_path.is_file() and as_path.name == LEDGER_NAME:
            return as_path.parent
        if as_path.is_dir() and (as_path / LEDGER_NAME).is_file():
            return as_path
        exact = base / ref
        if (exact / LEDGER_NAME).is_file():
            return exact
        matches = [
            child
            for child in sorted(base.glob(f"{ref}*"))
            if (child / LEDGER_NAME).is_file()
        ]
        return matches[0] if len(matches) == 1 else None
    latest: Path | None = None
    latest_stamp = float("-inf")
    try:
        children = sorted(base.iterdir())
    except OSError:
        return None
    for child in children:
        ledger = child / LEDGER_NAME
        if not ledger.is_file():
            continue
        try:
            stamp = ledger.stat().st_mtime
        except OSError:
            continue
        if stamp > latest_stamp:
            latest_stamp = stamp
            latest = child
    return latest


def verify_digest(events: list[dict[str, Any]]) -> bool | None:
    """Recorded vs recomputed digest; ``None`` for unfinished runs."""
    recorded: str | None = None
    prefix: list[dict[str, Any]] = []
    for event in events:
        if event.get("event") == "sweep_finished":
            digest = event.get("digest")
            recorded = digest if isinstance(digest, str) else None
            break
        prefix.append(event)
    if recorded is None:
        return None
    return canonical_digest(prefix) == recorded


def _bar(done: int, total: int, width: int = 20) -> str:
    """``#`` progress bar, e.g. ``[#####---------------] 25%``."""
    if total <= 0:
        return "[" + "-" * width + "]"
    filled = round(width * min(done, total) / total)
    pct = 100.0 * min(done, total) / total
    return "[" + "#" * filled + "-" * (width - filled) + f"] {pct:.0f}%"


def _meter(share: float, width: int = 10) -> str:
    """Relative-utilization meter for the worker lines."""
    filled = round(width * max(0.0, min(1.0, share)))
    return "|" + "#" * filled + "-" * (width - filled) + "|"


def _as_int(value: object) -> int:
    return value if isinstance(value, int) else 0


def _as_float(value: object) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    return 0.0
