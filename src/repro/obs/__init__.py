"""Campaign-level observability: run ledgers, live status, rollups.

The sweep runner (:mod:`repro.experiments.runner`) reports progress
through :class:`~repro.experiments.runner.SweepObserver` hooks, but
without this package that record is transient — a progress line on
stderr that vanishes with the process.  ``repro.obs`` makes campaign
execution durable and queryable:

* :mod:`repro.obs.ledger` — :class:`~repro.obs.ledger.LedgerObserver`
  streams structured JSONL events (``sweep_started``, ``point_*``,
  ``cache_hit``, worker ``heartbeat``\\ s, ``sweep_finished``) to
  ``results/obs/<run>/ledger.jsonl`` with crash-safe appends and a
  canonical-JSON digest proving serial and parallel runs recorded the
  same work;
* :mod:`repro.obs.status` — ``python -m repro.obs status [--follow]``
  tails a ledger (including one being written by another process) and
  renders progress, per-worker utilization, cache-hit ratio, and
  throughput sparklines; ``ls`` enumerates recorded runs;
* :mod:`repro.obs.report` — ``python -m repro.obs report`` joins a
  ledger with the telemetry/perf artifacts its points produced into an
  energy-proportionality rollup plus a machine-readable
  ``report.json``;
* :mod:`repro.obs.artifacts` — the fresh-artifact directory scanner
  shared with :class:`repro.telemetry.observer.TelemetryObserver` and
  :class:`repro.perf.observer.PerfObserver`.

Enable per run with ``catnap-experiments <fig> --ledger`` (or
``REPRO_OBS=1``); artifacts land under ``REPRO_OBS_DIR`` (default
``results/obs``).  See ``docs/obs.md``.
"""

from __future__ import annotations

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerObserver,
    canonical_digest,
    read_ledger,
    run_id_for,
)

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerObserver",
    "canonical_digest",
    "read_ledger",
    "run_id_for",
]
