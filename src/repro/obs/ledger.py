"""The campaign run ledger: durable JSONL record of sweep execution.

:class:`LedgerObserver` plugs into the sweep observer chain
(:class:`repro.experiments.runner.SweepObserver`) and streams one JSON
object per line to ``<REPRO_OBS_DIR>/<run>/ledger.jsonl`` while the
sweep runs.  Event stream, in emission order::

    sweep_started   run identity, spec index, execution policy
    point_started   specs[i] entered the execution section
    cache_hit       specs[i] was served from the on-disk cache
    heartbeat       worker pid + (cycles, flits, elapsed) point delta
    point_finished  specs[i] executed; rows digest + fresh artifacts
    point_failed    specs[i] failed its run and the serial retry
    sweep_finished  SweepStats.to_json() + the canonical ledger digest

Three durability rules make the file tailable and crash-tolerant:

* appends are line-buffered — every event is one complete ``write()``
  of one line, so a concurrent reader sees only whole lines plus at
  most one partial trailing line (which :func:`read_ledger` skips);
* milestone events (``sweep_started``, ``point_failed``,
  ``sweep_finished``) are fsynced, so a crash can lose at most recent
  per-point chatter, never the run's identity or its failures;
* nothing in the *canonical* record depends on wall-clock or pids —
  run-ids come from the spec digests (the sweep's seeded determinism
  contract) and event ordering from spec indices, so a serial and a
  ``REPRO_JOBS=N`` run of the same sweep produce ledgers with the same
  :func:`canonical_digest` even though their raw event interleavings
  differ.

One observer instance may witness several sweeps (an experiment driver
can call ``run_sweep`` more than once); each sweep opens its own run
directory, suffixed ``-r<n>`` to keep repeated runs of the same sweep
distinct on disk.  See ``docs/obs.md`` for the schema table.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.experiments.runner import SweepObserver
from repro.obs.artifacts import (
    EXPLAIN_SUFFIXES,
    PERF_SUFFIXES,
    TELEMETRY_SUFFIXES,
    ArtifactScanner,
)
from repro.util import env

if TYPE_CHECKING:
    from repro.experiments.runner import PointSpec, SweepStats

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_NAME",
    "DEFAULT_DIR",
    "LedgerObserver",
    "ledger_enabled",
    "run_id_for",
    "canonical_digest",
    "read_ledger",
]

#: Event-schema version tag carried by every ``sweep_started`` event
#: (and shared with :meth:`repro.experiments.runner.SweepStats.to_json`).
LEDGER_SCHEMA = "repro.obs/1"

#: Ledger file name inside each run directory.
LEDGER_NAME = "ledger.jsonl"

#: Default run-ledger root (override with ``REPRO_OBS_DIR``).
DEFAULT_DIR = os.path.join("results", "obs")

#: Row keys copied from a point's first row into its ledger event —
#: the compact, join-ready subset the rollup needs (full rows live in
#: the sweep cache and the returned tables, not the ledger).
_ROW_SUMMARY_KEYS = (
    "load",
    "latency",
    "throughput",
    "power_w",
    "dynamic_w",
    "static_w",
    "csc_pct",
    "subnet_share",
    "survival_rate",
    "injected",
    "masked",
    "recovered",
    "effective",
    "fatal",
    "ipc",
    "tenants",
    "sleep_frac",
)


def ledger_enabled() -> bool:
    """True when ``REPRO_OBS`` asks for a run ledger on every sweep."""
    return env.flag("REPRO_OBS")


def default_dir() -> str:
    """Ledger root per environment (``REPRO_OBS_DIR``)."""
    return env.text("REPRO_OBS_DIR", DEFAULT_DIR)


def run_id_for(specs: "list[PointSpec]") -> str:
    """Deterministic run identity from the sweep's spec digests.

    Twelve hex chars of SHA-256 over the ordered spec digest list —
    the same seeded-determinism contract that makes rows byte-identical
    across ``jobs=1`` vs ``jobs=N`` makes this id identical too.
    Wall-clock never participates: rerunning the same sweep yields the
    same id (disambiguated on disk by the ``-r<n>`` directory suffix).
    """
    payload = json.dumps(
        {"schema": LEDGER_SCHEMA, "specs": [s.digest() for s in specs]},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _rows_digest(rows: list[dict[str, Any]]) -> str:
    """Content hash of a point's JSON-normalized rows."""
    payload = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def canonical_digest(events: "list[dict[str, Any]]") -> str | None:
    """Digest of the work a ledger records, independent of execution.

    Canonicalization keeps only what the seeded determinism contract
    pins — run identity, the spec digest list, each point's rows digest
    and outcome (ordered by spec index), and the failed index set — and
    drops everything execution-dependent: wall times, worker pids,
    cache hit/miss status (a hit records the same rows the miss
    computed), artifact paths (which embed pids), and raw event
    interleaving.  Serial, parallel, cold, and warm runs of one sweep
    therefore digest identically; returns ``None`` when the events
    contain no ``sweep_started`` header to canonicalize against.
    """
    header: dict[str, Any] | None = None
    points: dict[int, dict[str, Any]] = {}
    failed: set[int] = set()
    for event in events:
        kind = event.get("event")
        if kind == "sweep_started" and header is None:
            header = event
        elif kind in ("point_finished", "cache_hit"):
            index = event.get("index")
            if isinstance(index, int):
                points[index] = {
                    "index": index,
                    "spec": event.get("spec"),
                    "rows_digest": event.get("rows_digest"),
                    "ok": True,
                }
        elif kind == "point_failed":
            index = event.get("index")
            if isinstance(index, int):
                failed.add(index)
                points[index] = {
                    "index": index,
                    "spec": event.get("spec"),
                    "rows_digest": None,
                    "ok": False,
                }
    if header is None:
        return None
    canonical = {
        "schema": LEDGER_SCHEMA,
        "run_id": header.get("run_id"),
        "total": header.get("total"),
        "specs": header.get("specs"),
        "points": [points[i] for i in sorted(points)],
        "failed": sorted(failed),
    }
    payload = json.dumps(
        canonical, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def read_ledger(
    path: "Path | str",
) -> tuple[list[dict[str, Any]], list[str]]:
    """Events plus warnings from a ledger file, crash-tolerantly.

    Corrupt lines are *skipped with a warning, never a crash* (the
    ledger mirror of :class:`~repro.experiments.runner.SweepCache`'s
    read-as-miss rule): a truncated trailing line — the normal state of
    a ledger another process is still writing — is tolerated silently,
    while an interior line that fails to parse, or a trailing corrupt
    line of a finished ledger, produces a warning naming its line
    number.  A missing file reads as no events plus one warning.
    """
    events: list[dict[str, Any]] = []
    warnings: list[str] = []
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        return [], [f"{path}: unreadable ({exc})"]
    text = data.decode("utf-8", errors="replace")
    complete_tail = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            if number == len(lines) and not complete_tail:
                continue  # partial trailing line: writer still at work
            warnings.append(
                f"{path}: line {number}: corrupt event skipped"
            )
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            warnings.append(
                f"{path}: line {number}: non-object event skipped"
            )
    return events, warnings


class LedgerObserver(SweepObserver):
    """Sweep observer that writes one run ledger per observed sweep."""

    def __init__(
        self,
        root: "Path | str | None" = None,
        stream: "IO[str] | None" = None,
    ) -> None:
        self.root = Path(root) if root is not None else Path(default_dir())
        self.stream: IO[str] = (
            stream if stream is not None else sys.stderr
        )
        #: Run directories this observer has opened, in order.
        self.runs: list[Path] = []
        self._handle: IO[str] | None = None
        self._seq = 0
        self._specs: list["PointSpec"] = []
        self._scanners: list[ArtifactScanner] = []
        self._run_id = ""
        self._jobs = 0
        self._cached = False

    # -- plumbing ------------------------------------------------------

    def _emit(self, event: dict[str, Any], milestone: bool = False) -> None:
        """Append one event line; fsync when ``milestone``."""
        if self._handle is None:
            return
        event = {"seq": self._seq, **event}
        self._seq += 1
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        if milestone:
            os.fsync(self._handle.fileno())

    def _allocate_run_dir(self, run_id: str) -> Path:
        """``<root>/<run_id>-r<n>`` for the first free ``n``."""
        self.root.mkdir(parents=True, exist_ok=True)
        gitignore = self.root / ".gitignore"
        if not gitignore.exists():
            # Artifact roots self-ignore so a run never dirties git
            # status (mirrors the committed results/*/.gitignore files).
            gitignore.write_text("*\n!.gitignore\n")
        n = 0
        while (self.root / f"{run_id}-r{n}").exists():
            n += 1
        run_dir = self.root / f"{run_id}-r{n}"
        run_dir.mkdir(parents=True, exist_ok=True)
        return run_dir

    def _fresh_artifacts(self) -> list[str]:
        paths: list[str] = []
        for scanner in self._scanners:
            paths.extend(scanner.fresh())
        return paths

    def _spec_entry(self, index: int, spec: "PointSpec") -> dict[str, Any]:
        """Compact join-ready identity of one spec for the header."""
        return {
            "index": index,
            "digest": spec.digest(),
            "kind": spec.kind,
            "describe": spec.describe(),
            "config": spec.config.name if spec.config else None,
            "pattern": spec.pattern,
            "load": spec.load,
            "seed": spec.seed,
            "label": dict(spec.label),
        }

    # -- SweepObserver hooks -------------------------------------------

    def sweep_context(
        self, specs: "list[PointSpec]", jobs: int, cached: bool
    ) -> None:
        if self._handle is not None:
            # A sweep_finished never arrived (crashed sweep); seal the
            # previous ledger before starting the next run.
            self._close()
        self._specs = list(specs)
        self._jobs = jobs
        self._cached = cached
        self._run_id = run_id_for(self._specs)

    def sweep_started(self, total: int) -> None:
        if not self._specs and total:
            return  # no context (not launched via run_sweep): no ledger
        run_dir = self._allocate_run_dir(self._run_id)
        self.runs.append(run_dir)
        self._handle = open(
            run_dir / LEDGER_NAME, "a", buffering=1, encoding="utf-8"
        )
        self._seq = 0
        self._scanners = []
        from repro.perf.profiler import DEFAULT_DIR as PERF_DIR
        from repro.telemetry.hub import DEFAULT_DIR as TELEMETRY_DIR

        if env.flag("REPRO_TELEMETRY"):
            self._scanners.append(
                ArtifactScanner(
                    env.text("REPRO_TELEMETRY_DIR", TELEMETRY_DIR),
                    TELEMETRY_SUFFIXES,
                )
            )
        if env.flag("REPRO_PERF"):
            self._scanners.append(
                ArtifactScanner(
                    env.text("REPRO_PERF_DIR", PERF_DIR), PERF_SUFFIXES
                )
            )
        if env.flag("REPRO_EXPLAIN"):
            from repro.explain.hub import DEFAULT_DIR as EXPLAIN_DIR

            self._scanners.append(
                ArtifactScanner(
                    env.text("REPRO_EXPLAIN_DIR", EXPLAIN_DIR),
                    EXPLAIN_SUFFIXES,
                )
            )
        for scanner in self._scanners:
            scanner.prime()
        self._emit(
            {
                "event": "sweep_started",
                "schema": LEDGER_SCHEMA,
                "run_id": self._run_id,
                "total": total,
                "jobs": self._jobs,
                "cache": self._cached,
                "specs": [s.digest() for s in self._specs],
                "spec_index": [
                    self._spec_entry(i, s)
                    for i, s in enumerate(self._specs)
                ],
            },
            milestone=True,
        )
        print(f"  ledger: {run_dir / LEDGER_NAME}", file=self.stream)

    def point_started(self, index: int, spec: "PointSpec") -> None:
        self._emit({"event": "point_started", "index": index})

    def worker_heartbeat(
        self, pid: int, cycles: int, flits: int, elapsed: float
    ) -> None:
        self._emit(
            {
                "event": "heartbeat",
                "pid": pid,
                "cycles": cycles,
                "flits": flits,
                "elapsed": elapsed,
            }
        )

    def point_finished(
        self,
        index: int,
        spec: "PointSpec",
        rows: list[dict[str, Any]],
        elapsed: float,
        cached: bool,
    ) -> None:
        event: dict[str, Any] = {
            "event": "cache_hit" if cached else "point_finished",
            "index": index,
            "spec": spec.digest(),
            "rows": len(rows),
            "rows_digest": _rows_digest(rows),
            "row_summary": _row_summary(rows),
        }
        if not cached:
            event["elapsed"] = elapsed
            event["artifacts"] = self._fresh_artifacts()
        self._emit(event)

    def point_failed(
        self, index: int, spec: "PointSpec", error: str
    ) -> None:
        self._emit(
            {
                "event": "point_failed",
                "index": index,
                "spec": spec.digest(),
                "error": error,
            },
            milestone=True,
        )

    def sweep_finished(self, stats: "SweepStats") -> None:
        if self._handle is None:
            return
        run_dir = self.runs[-1]
        events, _ = read_ledger(run_dir / LEDGER_NAME)
        straggler = self._fresh_artifacts()
        self._emit(
            {
                "event": "sweep_finished",
                "stats": stats.to_json(),
                "artifacts": straggler,
                "digest": canonical_digest(events),
            },
            milestone=True,
        )
        self._close()

    def _close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _row_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Join-ready subset of a point's first row (empty for no rows)."""
    if not rows:
        return {}
    first = rows[0]
    return {
        key: first[key] for key in _ROW_SUMMARY_KEYS if key in first
    }
