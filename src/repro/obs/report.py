"""Campaign rollup: join a run ledger with its per-point artifacts.

The ledger records *that* each point ran (and a compact row summary);
telemetry artifacts record *how* the fabric behaved while it ran.
:func:`build_report` joins the two into the campaign-level view the
paper argues from — per-subnet sleep fraction against offered load
(energy proportionality), power split into static/dynamic, and, when
the fault layer was armed, survival columns — emitted both as an
aligned table and as a machine-readable ``report.json``.

Determinism contract: everything under the report's ``"rollup"`` key
is a pure function of the simulated work, so two runs of the same
sweep — serial vs parallel, cold vs warm cache — produce byte-identical
rollups.  Execution-dependent facts (wall times, worker census,
artifact paths, which points were cache hits) live under separate keys
and are excluded from that guarantee.

Missing artifacts degrade gracefully: a cache-hit point re-records no
telemetry, an interrupted campaign leaves points unrun — both render
as blank cells, never as errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.artifacts import (
    classify_artifact,
    explain_tax,
    sleep_fractions,
)
from repro.obs.ledger import (
    LEDGER_NAME,
    LEDGER_SCHEMA,
    canonical_digest,
    read_ledger,
)
from repro.util.tables import format_table

__all__ = [
    "REPORT_NAME",
    "build_report",
    "render_report",
    "write_report",
]

#: File name of the machine-readable rollup inside a run directory.
REPORT_NAME = "report.json"

#: row_summary keys copied verbatim into a rollup row when present.
_METRIC_KEYS = (
    "latency",
    "throughput",
    "power_w",
    "dynamic_w",
    "static_w",
    "csc_pct",
    "ipc",
)

#: Survival columns, present only when the fault layer produced them.
_SURVIVAL_KEYS = (
    "survival_rate",
    "injected",
    "masked",
    "recovered",
    "effective",
    "fatal",
)


def build_report(run_dir: "Path | str") -> dict[str, Any]:
    """Joined rollup document for one recorded run.

    Always succeeds on a readable ledger — damaged lines, missing
    artifacts, and unfinished sweeps all degrade to partial rows.
    """
    run_dir = Path(run_dir)
    events, warnings = read_ledger(run_dir / LEDGER_NAME)
    spec_index: list[dict[str, Any]] = []
    header: dict[str, Any] = {}
    outcomes: dict[int, dict[str, Any]] = {}
    artifacts: dict[int, list[str]] = {}
    finished: dict[str, Any] | None = None
    prefix: list[dict[str, Any]] = []
    for event in events:
        kind = event.get("event")
        if kind == "sweep_started" and not header:
            header = event
            index = event.get("spec_index")
            if isinstance(index, list):
                spec_index = [
                    entry for entry in index if isinstance(entry, dict)
                ]
        elif kind in ("point_finished", "cache_hit", "point_failed"):
            point = event.get("index")
            if isinstance(point, int):
                outcomes[point] = event
                paths = event.get("artifacts")
                if isinstance(paths, list):
                    artifacts[point] = [str(p) for p in paths]
        elif kind == "sweep_finished" and finished is None:
            finished = event
        if finished is None:
            prefix.append(event)

    rows = [
        _rollup_row(entry, outcomes, artifacts)
        for entry in spec_index
    ]
    failed = sorted(
        point
        for point, event in outcomes.items()
        if event.get("event") == "point_failed"
    )
    stats = (finished or {}).get("stats")
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": header.get("run_id"),
        "finished": finished is not None,
        # Deterministic across serial/parallel and cold/warm runs.
        "rollup": {
            "total": header.get("total"),
            "rows": rows,
            "failed": failed,
            "digest": canonical_digest(prefix),
        },
        # Execution-dependent; excluded from the determinism contract.
        "execution": {
            "jobs": header.get("jobs"),
            "cache": header.get("cache"),
            "stats": stats if isinstance(stats, dict) else None,
        },
        "artifacts": {
            str(point): [
                {"path": path, "kind": classify_artifact(path)}
                for path in artifacts[point]
            ]
            for point in sorted(artifacts)
        },
        "warnings": warnings,
    }


def _rollup_row(
    entry: dict[str, Any],
    outcomes: dict[int, dict[str, Any]],
    artifacts: dict[int, list[str]],
) -> dict[str, Any]:
    """One deterministic rollup row for one sweep point."""
    index = entry.get("index")
    index = index if isinstance(index, int) else -1
    row: dict[str, Any] = {
        "index": index,
        "config": entry.get("config"),
        "pattern": entry.get("pattern"),
        "load": entry.get("load"),
        "seed": entry.get("seed"),
        "kind": entry.get("kind"),
    }
    outcome = outcomes.get(index)
    if outcome is None:
        row["status"] = "missing"
        return row
    kind = outcome.get("event")
    if kind == "point_failed":
        row["status"] = "failed"
        return row
    # Cache hits recorded the same rows the original execution did, so
    # they are "ok" for rollup purposes (their hit/miss nature is an
    # execution fact, recorded under the report's "execution" key).
    row["status"] = "ok"
    summary = outcome.get("row_summary")
    if isinstance(summary, dict):
        for key in _METRIC_KEYS:
            if key in summary:
                row[key] = summary[key]
        for key in _SURVIVAL_KEYS:
            if key in summary:
                row[key] = summary[key]
    sleep = _sleep_for(artifacts.get(index, []))
    if sleep is None and isinstance(summary, dict):
        # Serving-workload rows carry per-subnet sleep fractions in the
        # row summary itself; the telemetry artifact remains the
        # preferred source when both exist.
        sleep = _sleep_from_summary(summary.get("sleep_frac"))
    row["sleep_frac"] = sleep
    if isinstance(summary, dict):
        tenant_p99 = _tenant_p99_from_summary(summary.get("tenants"))
        if tenant_p99 is not None:
            # Key appears only when the point measured tenants, so
            # tenant-free rollups stay byte-identical.
            row["tenant_p99"] = tenant_p99
    explain = _explain_for(artifacts.get(index, []))
    if explain is not None:
        # Keys appear only when the point recorded an attribution
        # artifact, so non-explain rollups stay byte-identical.
        row["energy_per_flit"], row["wakeup_tax"] = explain
    return row


def _sleep_from_summary(value: object) -> list[float] | None:
    """Per-subnet sleep fractions from a workload row summary."""
    if not isinstance(value, list) or not value:
        return None
    fractions: list[float] = []
    for entry in value:
        if not isinstance(entry, (int, float)):
            return None
        fractions.append(round(float(entry), 6))
    return fractions


def _tenant_p99_from_summary(value: object) -> list[object] | None:
    """Per-tenant p99 latency from a workload row summary.

    ``None`` (no key emitted) unless the summary carries a non-empty
    ``tenants`` list; a malformed entry degrades to a ``None`` cell.
    """
    if not isinstance(value, list) or not value:
        return None
    p99s: list[object] = []
    for entry in value:
        p99 = entry.get("latency_p99") if isinstance(entry, dict) else None
        p99s.append(
            round(float(p99), 3) if isinstance(p99, (int, float)) else None
        )
    return p99s


def _sleep_for(paths: list[str]) -> list[float] | None:
    """Per-subnet sleep fractions from a point's telemetry artifact."""
    for path in paths:
        if classify_artifact(path) != "telemetry-timeseries":
            continue
        fractions = sleep_fractions(path)
        if fractions is not None:
            return [round(f, 6) for f in fractions]
    return None


def _explain_for(
    paths: list[str],
) -> tuple[list[object], list[object]] | None:
    """Per-subnet attribution columns from a point's explain artifact.

    ``energy_per_flit`` is rendered in picojoules so the table cells
    land in a readable range.  Mirrors the telemetry join: a missing
    or unreadable artifact degrades to ``None``, never an error.
    """
    for path in paths:
        if classify_artifact(path) != "explain-attribution":
            continue
        tax = explain_tax(path)
        if tax is not None:
            per_flit, stall = tax
            return (
                [
                    round(value * 1e12, 6)
                    if isinstance(value, float)
                    else None
                    for value in per_flit
                ],
                [
                    round(value, 3)
                    if isinstance(value, float)
                    else None
                    for value in stall
                ],
            )
    return None


def render_report(report: dict[str, Any]) -> str:
    """Aligned-table rendering of one :func:`build_report` document."""
    rollup = report.get("rollup")
    rows = rollup.get("rows") if isinstance(rollup, dict) else None
    if not isinstance(rows, list) or not rows:
        return f"run {report.get('run_id') or '?'}: nothing recorded"
    display: list[dict[str, object]] = []
    any_survival = any(
        isinstance(r, dict) and "survival_rate" in r for r in rows
    )
    any_explain = any(
        isinstance(r, dict) and "energy_per_flit" in r for r in rows
    )
    any_tenants = any(
        isinstance(r, dict) and "tenant_p99" in r for r in rows
    )
    for raw in rows:
        if not isinstance(raw, dict):
            continue
        cell: dict[str, object] = {
            "config": raw.get("config") or "",
            "pattern": raw.get("pattern") or "",
            "load": _blank(raw.get("load")),
            "status": raw.get("status") or "",
            "latency": _blank(raw.get("latency")),
            "power_w": _blank(raw.get("power_w")),
            "static_w": _blank(raw.get("static_w")),
            "csc_pct": _blank(raw.get("csc_pct")),
            "sleep_frac": _sleep_cell(raw.get("sleep_frac")),
        }
        if any_survival:
            cell["survival"] = _blank(raw.get("survival_rate"))
            cell["fatal"] = _blank(raw.get("fatal"))
        if any_explain:
            cell["epf_pj"] = _per_subnet_cell(
                raw.get("energy_per_flit"), "{:.3f}"
            )
            cell["wakeup_tax"] = _per_subnet_cell(
                raw.get("wakeup_tax"), "{:.2f}"
            )
        if any_tenants:
            cell["tenant_p99"] = _per_subnet_cell(
                raw.get("tenant_p99"), "{:.0f}"
            )
        display.append(cell)
    columns = [
        "config",
        "pattern",
        "load",
        "status",
        "latency",
        "power_w",
        "static_w",
        "csc_pct",
        "sleep_frac",
    ]
    if any_survival:
        columns += ["survival", "fatal"]
    if any_explain:
        columns += ["epf_pj", "wakeup_tax"]
    if any_tenants:
        columns += ["tenant_p99"]
    lines = [
        format_table(
            display,
            columns=columns,
            title=(
                f"campaign rollup — run {report.get('run_id') or '?'}"
            ),
        )
    ]
    digest = (
        rollup.get("digest") if isinstance(rollup, dict) else None
    )
    if isinstance(digest, str):
        lines.append(f"ledger digest: {digest}")
    warnings = report.get("warnings")
    if isinstance(warnings, list):
        lines.extend(f"warning: {w}" for w in warnings)
    return "\n".join(lines)


def write_report(run_dir: "Path | str") -> tuple[dict[str, Any], Path]:
    """Build and persist ``report.json`` next to the run's ledger."""
    run_dir = Path(run_dir)
    report = build_report(run_dir)
    out = run_dir / REPORT_NAME
    run_dir.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report, out


def _blank(value: object) -> object:
    """Table cell: missing metrics render as blanks, not ``None``."""
    return "" if value is None else value


def _per_subnet_cell(value: object, pattern: str) -> str:
    """``a/b`` per-subnet cell; ``-`` marks a subnet with no data."""
    if not isinstance(value, list) or not value:
        return ""
    parts: list[str] = []
    for entry in value:
        if isinstance(entry, (int, float)):
            parts.append(pattern.format(float(entry)))
        else:
            parts.append("-")
    return "/".join(parts)


def _sleep_cell(value: object) -> str:
    """``0.42/0.87`` per-subnet sleep cell (blank when unavailable)."""
    if not isinstance(value, list) or not value:
        return ""
    parts: list[str] = []
    for fraction in value:
        if isinstance(fraction, (int, float)):
            parts.append(f"{float(fraction):.2f}")
        else:
            return ""
    return "/".join(parts)
