"""Tests for the open-loop simulation driver."""

from __future__ import annotations

import pytest

from tests.conftest import small_fabric

from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern


class TestSimulationPhases:
    def test_total(self):
        phases = SimulationPhases(100, 200, 50)
        assert phases.total == 350

    def test_scaled(self):
        phases = SimulationPhases(100, 200, 50).scaled(0.5)
        assert (phases.warmup, phases.measure, phases.cooldown) == (
            50, 100, 25,
        )

    def test_scaled_floors_at_one(self):
        phases = SimulationPhases(10, 10, 10).scaled(0.01)
        assert phases.warmup == 1 and phases.measure == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationPhases(warmup=0)
        with pytest.raises(ValueError):
            SimulationPhases(cooldown=-1)


class TestRunOpenLoop:
    def test_report_covers_all_phases(self):
        fabric = small_fabric()
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.05
        )
        phases = SimulationPhases(50, 100, 30)
        report = run_open_loop(fabric, source, phases)
        assert report.cycles == phases.total
        assert fabric.stats.measure_start == 50
        assert fabric.stats.measure_end == 150

    def test_throughput_tracks_offered_at_low_load(self):
        fabric = small_fabric()
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.05
        )
        report = run_open_loop(
            fabric, source, SimulationPhases(200, 800, 200)
        )
        assert report.throughput_packets == pytest.approx(0.05, rel=0.25)

    def test_latency_reported_positive(self):
        fabric = small_fabric()
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.02
        )
        report = run_open_loop(
            fabric, source, SimulationPhases(100, 400, 100)
        )
        assert report.avg_packet_latency > 5
        assert report.avg_network_latency <= report.avg_packet_latency
