"""Tests for the simulator phase profiler (repro.perf.profiler).

The contract under test mirrors the telemetry hub's: a fabric without
``REPRO_PERF`` carries no instance shadows (zero overhead,
structurally); an attached profiler changes *nothing* about simulation
behaviour (byte-identical fabric reports); its phase breakdown
partitions the measured step time; and flushes produce schema-valid
artifacts (plus cProfile outputs when asked).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.noc.config import NocConfig, PowerGatingConfig
from repro.noc.multinoc import MultiNocFabric
from repro.perf.phases import ROUTER_STAGES, STEP_PHASES
from repro.perf.profiler import (
    PROFILE_SCHEMA,
    PhaseProfiler,
    cprofile_enabled,
    maybe_attach,
    perf_enabled,
)
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern

CYCLES = 600
LOAD = 0.15


def _config() -> NocConfig:
    return NocConfig(
        mesh_cols=4,
        mesh_rows=4,
        num_subnets=2,
        link_width_bits=128,
        voltage_v=0.625,
        gating=PowerGatingConfig(enabled=True),
    )


def _run(fabric: MultiNocFabric, cycles: int = CYCLES) -> None:
    source = SyntheticTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), LOAD, 128, seed=7
    )
    # Through the backend (not a hand-rolled step loop) so the
    # profiled-vs-plain contract is tested on every kernel.
    fabric.backend.run(cycles, source)


class TestZeroOverheadWhenDetached:
    def test_perf_off_is_the_class_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        assert fabric.perf is None
        assert not perf_enabled()
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        assert fabric.step.__func__ is MultiNocFabric.step
        assert fabric.report.__func__ is MultiNocFabric.report
        assert "update" not in fabric.monitor.regional.__dict__

    def test_maybe_attach_respects_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        assert maybe_attach(MultiNocFabric(_config(), seed=7)) is None
        monkeypatch.setenv("REPRO_PERF", "0")
        assert maybe_attach(MultiNocFabric(_config(), seed=7)) is None
        assert not cprofile_enabled()

    def test_detach_restores_everything(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=None).attach()
        assert "step" in fabric.__dict__
        assert "update" in fabric.monitor.regional.__dict__
        profiler.detach()
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        assert "update" not in fabric.monitor.regional.__dict__
        assert fabric.step.__func__ is MultiNocFabric.step


class TestBehavioralEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "skip"])
    def test_profiled_run_matches_plain_run(self, monkeypatch, backend):
        """The stage-timed router mirror and the phased step must not
        drift from the plain code path: same seed, same traffic —
        identical fabric report, field for field.  On the skip kernel
        the attached profiler forces the defer path (it observes every
        cycle), which must match the plain skip-kernel run."""
        monkeypatch.delenv("REPRO_PERF", raising=False)
        plain = MultiNocFabric(_config(), seed=7, backend=backend)
        _run(plain)
        plain_report = plain.report()

        profiled = MultiNocFabric(_config(), seed=7, backend=backend)
        profiler = PhaseProfiler(profiled, out_dir=None).attach()
        _run(profiled)
        profiled_report = profiled.report()

        assert dataclasses.asdict(plain_report) == dataclasses.asdict(
            profiled_report
        )
        assert profiler.steps == CYCLES


class TestPhaseAccounting:
    def test_phases_partition_step_time(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=None).attach()
        _run(fabric)
        phases = profiler.phase_seconds()
        assert tuple(phases) == STEP_PHASES
        assert all(seconds >= 0.0 for seconds in phases.values())
        total = sum(phases.values())
        step = profiler.step_seconds
        assert step > 0
        # Acceptance: phase times sum to >= 90% of measured step time
        # (by construction they partition it minus clamping).
        assert total >= 0.9 * step
        assert total <= step * 1.0000001

    def test_router_stages_partition_pipeline(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=None).attach()
        _run(fabric)
        stages = profiler.router_stage_seconds()
        assert tuple(stages) == ROUTER_STAGES
        pipeline = profiler.phase_seconds()["router_pipeline"]
        assert sum(stages.values()) <= pipeline * 1.0000001
        # Traffic flowed, so traversal and allocation actually ran.
        assert stages["switch_traversal"] > 0
        assert stages["vc_alloc"] > 0
        assert stages["route_compute"] > 0

    def test_throughput_counts_real_work(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=None).attach()
        _run(fabric)
        throughput = profiler.throughput()
        assert throughput["cycles_per_sec"] > 0
        assert throughput["flits_per_sec"] > 0
        assert throughput["flits_routed"] > 0

    def test_ascii_summary_renders(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=None).attach()
        _run(fabric, cycles=50)
        text = profiler.ascii_summary()
        assert "router_pipeline" in text
        assert "cycles/s" in text


class TestArtifacts:
    def test_flush_writes_schema_valid_profile(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=str(tmp_path)).attach()
        _run(fabric, cycles=50)
        paths = profiler.flush()
        with open(paths["profile"], encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["config"] == fabric.config.name
        assert doc["steps_profiled"] == 50
        assert set(doc["phases"]) == set(STEP_PHASES)
        assert set(doc["router_stages"]) == set(ROUTER_STAGES)
        assert "step" in doc["step_histograms_ns"]
        # Repeated flushes get fresh names (no clobbering).
        second = profiler.flush()
        assert second["profile"] != paths["profile"]

    def test_report_autoflushes_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF", "1")
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path))
        fabric = MultiNocFabric(_config(), seed=7)
        assert fabric.perf is not None
        _run(fabric, cycles=50)
        fabric.report()
        artifacts = [
            name
            for name in os.listdir(tmp_path)
            if name.endswith(".perf.json")
        ]
        assert len(artifacts) == 1

    def test_cprofile_capture_emits_folded_stacks(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(
            fabric, out_dir=str(tmp_path), capture_cprofile=True
        ).attach()
        _run(fabric, cycles=50)
        paths = profiler.flush()
        assert os.path.exists(paths["pstats"])
        with open(paths["folded"], encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert lines, "cProfile capture produced no folded stacks"
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames
            assert int(weight) > 0
        # Router work must be visible in the capture.
        assert any("step" in line for line in lines)


class TestShowCli:
    def test_show_renders_profile(self, tmp_path, monkeypatch, capsys):
        from repro.perf.__main__ import main

        monkeypatch.delenv("REPRO_PERF", raising=False)
        fabric = MultiNocFabric(_config(), seed=7)
        profiler = PhaseProfiler(fabric, out_dir=str(tmp_path)).attach()
        _run(fabric, cycles=50)
        paths = profiler.flush()
        assert main(["show", paths["profile"]]) == 0
        out = capsys.readouterr().out
        assert "router_pipeline" in out
        assert "switch_traversal" in out

    def test_show_unreadable_path_fails(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        assert main(["show", str(tmp_path / "missing.perf.json")]) == 1
