"""Tests for validation helpers."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", value)


class TestCheckInRange:
    def test_accepts_bounds(self):
        check_in_range("x", 0, 0, 1)
        check_in_range("x", 1, 0, 1)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0, 1)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024])
    def test_accepts_powers(self, value):
        check_power_of_two("x", value)

    @pytest.mark.parametrize("value", [0, 3, 6, -4])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            check_power_of_two("x", value)
