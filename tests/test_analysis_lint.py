"""Static lint passes: every SIM rule, scoping, baseline, and CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.lint import (
    LINT_RULES,
    Baseline,
    default_baseline_path,
    default_target,
    lint_paths,
    lint_source,
)

#: Path prefixes used to exercise package-aware scoping.
SIM_PATH = "src/repro/noc/fake_module.py"
EXP_PATH = "src/repro/experiments/fake_module.py"
RNG_PATH = "src/repro/util/rng.py"


def rules_of(source: str, path: str = SIM_PATH) -> list[str]:
    return [v.rule for v in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# Rule catalogue basics
# ----------------------------------------------------------------------


def test_rule_catalogue_is_complete():
    # The contracts module merges SIM101-SIM105 into the shared
    # catalogue at import time, so assert containment, not equality.
    lint_codes = {c for c in LINT_RULES if c < "SIM100"}
    assert sorted(lint_codes) == [
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
    ]
    for rule in LINT_RULES.values():
        assert rule.severity in ("error", "warning")
        assert rule.hint


# ----------------------------------------------------------------------
# SIM001 — unseeded randomness
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\n",
        "from random import randrange\n",
        "import numpy.random\n",
        "from numpy import random\n",
        "from numpy.random import default_rng\n",
    ],
)
def test_sim001_flags_random_imports(snippet):
    assert "SIM001" in rules_of(snippet)


def test_sim001_exempts_the_rng_module():
    assert rules_of("import random\n", RNG_PATH) == []


def test_sim001_allows_deterministic_rng():
    snippet = "from repro.util.rng import DeterministicRng\n"
    assert "SIM001" not in rules_of(snippet)


# ----------------------------------------------------------------------
# SIM002 — set iteration order
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "for x in {1, 2, 3}:\n    pass\n",
        "for x in set(items):\n    pass\n",
        "for x in frozenset(items):\n    pass\n",
        "values = [x for x in set(items)]\n",
        """
        def f(items):
            seen = set()
            for x in seen:
                pass
        """,
        """
        def f():
            pending: set[int] = set()
            for x in pending:
                pass
        """,
        "for x in enumerate(set(items)):\n    pass\n",
    ],
)
def test_sim002_flags_set_iteration(snippet):
    assert "SIM002" in rules_of(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "for x in sorted(set(items)):\n    pass\n",
        "for x in [1, 2, 3]:\n    pass\n",
        "for k in mapping:\n    pass\n",  # dict order is deterministic
        "for k, v in mapping.items():\n    pass\n",
        "if x in {1, 2, 3}:\n    pass\n",  # membership, not iteration
    ],
)
def test_sim002_allows_deterministic_iteration(snippet):
    assert "SIM002" not in rules_of(snippet)


def test_sim002_scoped_to_simulation_packages():
    snippet = "for x in set(items):\n    pass\n"
    assert "SIM002" in rules_of(snippet, SIM_PATH)
    assert "SIM002" not in rules_of(snippet, EXP_PATH)
    # Unknown modules stay in scope so fixture files always trip.
    assert "SIM002" in rules_of(snippet, "/tmp/scratch.py")


# ----------------------------------------------------------------------
# SIM003 — wall-clock reads
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.time_ns()\n",
        "from datetime import datetime\nt = datetime.now()\n",
        "import datetime\nt = datetime.datetime.utcnow()\n",
        "from time import time\n",
    ],
)
def test_sim003_flags_wall_clock(snippet):
    assert "SIM003" in rules_of(snippet)


def test_sim003_allows_perf_counter():
    snippet = "import time\nt = time.perf_counter()\n"
    assert "SIM003" not in rules_of(snippet)


# ----------------------------------------------------------------------
# SIM004 — mutable defaults
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(x=[]):\n    pass\n",
        "def f(x={}):\n    pass\n",
        "def f(*, x=set()):\n    pass\n",
        "def f(x=list()):\n    pass\n",
        "g = lambda x=[]: x\n",
    ],
)
def test_sim004_flags_mutable_defaults(snippet):
    assert "SIM004" in rules_of(snippet)


def test_sim004_allows_immutable_defaults():
    snippet = "def f(x=None, y=(), z=0):\n    pass\n"
    assert "SIM004" not in rules_of(snippet)


# ----------------------------------------------------------------------
# SIM005 — float equality
# ----------------------------------------------------------------------


def test_sim005_flags_float_equality():
    assert "SIM005" in rules_of("done = rate == 0.5\n")
    assert "SIM005" in rules_of("done = 1.5 != rate\n")


def test_sim005_allows_int_and_ordering():
    assert "SIM005" not in rules_of("done = count == 5\n")
    assert "SIM005" not in rules_of("done = rate >= 0.5\n")


# ----------------------------------------------------------------------
# SIM006 — strippable asserts
# ----------------------------------------------------------------------


def test_sim006_flags_asserts_in_sim_code():
    snippet = "assert credits >= 0\n"
    assert "SIM006" in rules_of(snippet, SIM_PATH)
    assert "SIM006" in rules_of(snippet, "src/repro/core/fake.py")


def test_sim006_ignores_non_sim_packages():
    assert "SIM006" not in rules_of(
        "assert rows\n", EXP_PATH
    )


# ----------------------------------------------------------------------
# The repository itself
# ----------------------------------------------------------------------


def test_repro_tree_has_no_new_violations():
    """The committed baseline covers everything in src/repro."""
    violations = lint_paths([default_target()])
    baseline_path = default_baseline_path()
    assert baseline_path.is_file(), "lint-baseline.json must be committed"
    fresh = Baseline.load(baseline_path).filter_new(violations)
    details = "\n".join(v.render(show_hint=False) for v in fresh)
    assert not fresh, f"new lint violations:\n{details}"


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------

SEEDED = textwrap.dedent(
    """
    import random

    def f(x={}):
        assert x
    """
)


def test_baseline_suppresses_known_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    violations = lint_paths([bad])
    assert {v.rule for v in violations} == {"SIM001", "SIM004", "SIM006"}

    baseline = Baseline.from_violations(violations)
    assert baseline.filter_new(violations) == []


def test_baseline_is_stable_under_line_shifts(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    baseline = Baseline.from_violations(lint_paths([bad]))

    bad.write_text("# comment\n# another\n" + SEEDED)
    shifted = lint_paths([bad])
    assert shifted  # still found, at different line numbers
    assert baseline.filter_new(shifted) == []


def test_baseline_reports_only_new_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    baseline = Baseline.from_violations(lint_paths([bad]))

    bad.write_text(SEEDED + "\nimport random as rng2\n")
    fresh = baseline.filter_new(lint_paths([bad]))
    assert [v.rule for v in fresh] == ["SIM001"]


def test_baseline_round_trips_through_disk(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    violations = lint_paths([bad])
    path = tmp_path / "baseline.json"
    Baseline.from_violations(violations).save(path)
    assert Baseline.load(path).filter_new(violations) == []


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exits_nonzero_on_seeded_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    assert analysis_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out and "fix:" in out


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(SEEDED)
    baseline = tmp_path / "baseline.json"
    assert (
        analysis_main(
            ["lint", str(bad), "--write-baseline", str(baseline)]
        )
        == 0
    )
    assert (
        analysis_main(["lint", str(bad), "--baseline", str(baseline)])
        == 0
    )
    # ... and a new violation still fails against that baseline.
    bad.write_text(SEEDED + "\nfrom random import random\n")
    assert (
        analysis_main(["lint", str(bad), "--baseline", str(baseline)])
        == 1
    )
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert analysis_main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "SIM001"
    assert payload[0]["severity"] == "error"
    assert payload[0]["hint"]


def test_cli_missing_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    missing = tmp_path / "nope.json"
    assert (
        analysis_main(["lint", str(bad), "--baseline", str(missing)])
        == 2
    )
    capsys.readouterr()


def test_cli_default_run_applies_committed_baseline(capsys):
    """``python -m repro.analysis lint`` is green on the repo."""
    assert analysis_main(["lint"]) == 0
    capsys.readouterr()


def test_cli_rules_catalogue(capsys):
    assert analysis_main(["rules"]) == 0
    out = capsys.readouterr().out
    for code in LINT_RULES:
        assert code in out


def test_experiments_cli_forwards_analysis_subcommand(tmp_path, capsys):
    from repro.experiments.cli import main as experiments_main

    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert experiments_main(["analysis", "lint", str(bad)]) == 1
    assert "SIM001" in capsys.readouterr().out
