"""Tests for subnet-selection policies."""

from __future__ import annotations

import pytest

from repro.core.policies import (
    CatnapPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.util.rng import DeterministicRng


class FakeMonitor:
    """Congestion monitor stub with a settable congested set."""

    def __init__(self, congested=()):
        self.congested = set(congested)  # (node, subnet) pairs

    def is_congested(self, node, subnet):
        return (node, subnet) in self.congested


class TestCatnapPolicy:
    def test_prefers_subnet_zero_when_clear(self):
        policy = CatnapPolicy(4, FakeMonitor(), num_nodes=4)
        assert all(policy.select(0, cycle) == 0 for cycle in range(10))

    def test_escalates_past_congested_subnets(self):
        monitor = FakeMonitor({(0, 0), (0, 1)})
        policy = CatnapPolicy(4, monitor, num_nodes=4)
        assert policy.select(0, 0) == 2

    def test_congestion_is_per_node(self):
        monitor = FakeMonitor({(0, 0)})
        policy = CatnapPolicy(4, monitor, num_nodes=4)
        assert policy.select(0, 0) == 1
        assert policy.select(1, 0) == 0

    def test_round_robin_when_all_congested(self):
        monitor = FakeMonitor({(0, s) for s in range(3)})
        policy = CatnapPolicy(3, monitor, num_nodes=1)
        picks = [policy.select(0, cycle) for cycle in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_deescalates_when_congestion_clears(self):
        monitor = FakeMonitor({(0, 0)})
        policy = CatnapPolicy(2, monitor, num_nodes=1)
        assert policy.select(0, 0) == 1
        monitor.congested.clear()
        assert policy.select(0, 1) == 0


class TestRoundRobinPolicy:
    def test_cycles_through_subnets(self):
        policy = RoundRobinPolicy(4, num_nodes=2)
        assert [policy.select(0, c) for c in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_counters_per_node(self):
        policy = RoundRobinPolicy(4, num_nodes=2)
        policy.select(0, 0)
        assert policy.select(1, 0) == 0


class TestRandomPolicy:
    def test_in_range_and_covers_all(self):
        policy = RandomPolicy(4, DeterministicRng(1))
        picks = {policy.select(0, c) for c in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_deterministic_given_seed(self):
        a = RandomPolicy(4, DeterministicRng(9))
        b = RandomPolicy(4, DeterministicRng(9))
        assert [a.select(0, c) for c in range(20)] == [
            b.select(0, c) for c in range(20)
        ]


class TestMakePolicy:
    def test_ir_maps_to_catnap(self):
        policy = make_policy(
            "ir", 4, 4, FakeMonitor(), DeterministicRng(1)
        )
        assert isinstance(policy, CatnapPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("bogus", 4, 4, FakeMonitor(), DeterministicRng(1))

    def test_rejects_zero_subnets(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(0, 4)


class TestClassPartitionPolicy:
    def _packet(self, mc):
        from repro.noc.flit import Packet

        return Packet(src=0, dst=1, size_bits=72, message_class=mc)

    def test_requests_use_lower_half(self):
        from repro.core.policies import ClassPartitionPolicy
        from repro.noc.flit import MessageClass

        policy = ClassPartitionPolicy(4, num_nodes=2)
        picks = {
            policy.select(0, c, self._packet(MessageClass.REQUEST))
            for c in range(8)
        }
        assert picks <= {0, 1}

    def test_responses_use_upper_half(self):
        from repro.core.policies import ClassPartitionPolicy
        from repro.noc.flit import MessageClass

        policy = ClassPartitionPolicy(4, num_nodes=2)
        picks = {
            policy.select(0, c, self._packet(MessageClass.RESPONSE))
            for c in range(8)
        }
        assert picks <= {2, 3}

    def test_no_packet_falls_back_to_all(self):
        from repro.core.policies import ClassPartitionPolicy

        policy = ClassPartitionPolicy(4, num_nodes=1)
        picks = {policy.select(0, c) for c in range(8)}
        assert picks == {0, 1, 2, 3}

    def test_make_policy_builds_it(self):
        from repro.core.policies import ClassPartitionPolicy, make_policy
        from repro.util.rng import DeterministicRng

        policy = make_policy(
            "class_partition", 4, 4, FakeMonitor(), DeterministicRng(1)
        )
        assert isinstance(policy, ClassPartitionPolicy)
