"""Tests for local congestion metrics and the hysteresis latch."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.congestion import (
    BlockingDelayMetric,
    BufferAverageMetric,
    BufferMaxMetric,
    HysteresisLatch,
    InjectionQueueMetric,
    InjectionRateMetric,
    make_metric,
)
from repro.noc.config import CongestionConfig


class FakeRouter:
    """Just enough router surface for the metrics."""

    def __init__(self, occupancies, subnet=0):
        self._occ = occupancies
        self.subnet = subnet
        self.buffered_flits = sum(occupancies)
        self.blocked_accum = 0
        self.moved_accum = 0

    def max_port_occupancy(self):
        return max(self._occ)

    def mean_port_occupancy(self):
        return sum(self._occ) / len(self._occ)


class FakeNi:
    def __init__(self, rate=0.0, queue_flits=0, subnet_rates=None):
        self._rate = rate
        self._queue = queue_flits
        self._subnet_rates = subnet_rates or {}

    def injection_rate(self):
        return self._rate

    def subnet_injection_rate(self, subnet):
        return self._subnet_rates.get(subnet, 0.0)

    def queue_occupancy_flits(self):
        return self._queue


class TestBufferMax:
    def test_triggers_on_single_hot_port(self):
        metric = BufferMaxMetric(9)
        router = FakeRouter([0, 0, 0, 0, 10])
        assert metric.evaluate(0, router, FakeNi())

    def test_below_threshold(self):
        metric = BufferMaxMetric(9)
        assert not metric.evaluate(0, FakeRouter([8, 8, 8, 8, 8]), FakeNi())

    def test_fast_path_consistency(self):
        """Early-out must agree with the full computation."""
        metric = BufferMaxMetric(9)
        router = FakeRouter([2, 2, 2, 1, 1])  # total 8 < 9
        assert not metric.evaluate(0, router, FakeNi())


class TestBufferAverage:
    def test_misses_single_path_congestion(self):
        """The paper's argument against BFA: empty ports mask hot ones."""
        metric = BufferAverageMetric(2.0)
        hot_one_port = FakeRouter([9, 0, 0, 0, 0])
        assert not metric.evaluate(0, hot_one_port, FakeNi())
        bfm = BufferMaxMetric(9)
        assert bfm.evaluate(0, hot_one_port, FakeNi())

    def test_triggers_on_uniform_fill(self):
        metric = BufferAverageMetric(2.0)
        assert metric.evaluate(0, FakeRouter([2, 2, 2, 2, 2]), FakeNi())


class TestInjectionRate:
    def test_per_subnet_rate_thresholded(self):
        metric = InjectionRateMetric(0.1, 64)
        ni = FakeNi(subnet_rates={0: 0.15, 1: 0.05})
        assert metric.evaluate(0, FakeRouter([0] * 5, subnet=0), ni)
        assert not metric.evaluate(0, FakeRouter([0] * 5, subnet=1), ni)

    def test_escalation_caps_per_subnet_share(self):
        """Once every used subnet hits the threshold, all read congested."""
        metric = InjectionRateMetric(0.1, 64)
        ni = FakeNi(subnet_rates={0: 0.11, 1: 0.11, 2: 0.11, 3: 0.02})
        congested = [
            metric.evaluate(0, FakeRouter([0] * 5, subnet=s), ni)
            for s in range(4)
        ]
        assert congested == [True, True, True, False]


class TestInjectionQueue:
    def test_node_wide_signal(self):
        metric = InjectionQueueMetric(4, 16)
        ni = FakeNi(queue_flits=5)
        assert metric.evaluate(0, FakeRouter([0] * 5, subnet=0), ni)
        assert metric.evaluate(0, FakeRouter([0] * 5, subnet=3), ni)

    def test_capacity_clamp(self):
        metric = InjectionQueueMetric(4, 16)
        assert metric.evaluate(0, FakeRouter([0] * 5), FakeNi(queue_flits=999))

    def test_below_threshold(self):
        metric = InjectionQueueMetric(4, 16)
        assert not metric.evaluate(0, FakeRouter([0] * 5), FakeNi(queue_flits=3))


class TestBlockingDelay:
    def test_high_blocking_triggers(self):
        metric = BlockingDelayMetric(1.5, sample_period=4)
        router = FakeRouter([0] * 5)
        for cycle in range(0, 64, 4):
            router.blocked_accum += 40
            router.moved_accum += 4
            metric.evaluate(cycle, router, FakeNi())
        assert metric.evaluate(64, router, FakeNi())

    def test_low_blocking_does_not_trigger(self):
        metric = BlockingDelayMetric(1.5, sample_period=4)
        router = FakeRouter([0] * 5)
        for cycle in range(0, 64, 4):
            router.blocked_accum += 2
            router.moved_accum += 4
        assert not metric.evaluate(64, router, FakeNi())

    def test_needs_blocking_counters_flag(self):
        assert BlockingDelayMetric(1.5, 8).needs_blocking_counters
        assert not BufferMaxMetric(9).needs_blocking_counters


class TestHysteresisLatch:
    def test_sets_immediately(self):
        latch = HysteresisLatch(6)
        assert latch.update(0, True)

    def test_holds_for_minimum_cycles(self):
        latch = HysteresisLatch(6)
        latch.update(0, True)
        for cycle in range(1, 6):
            assert latch.update(cycle, False), f"dropped early at {cycle}"
        assert not latch.update(6, False)

    def test_retrigger_extends_hold(self):
        latch = HysteresisLatch(6)
        latch.update(0, True)
        latch.update(4, True)  # re-trigger
        assert latch.update(9, False)
        assert not latch.update(10, False)

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_latch_state_true_whenever_raw_true(self, raws):
        latch = HysteresisLatch(3)
        for cycle, raw in enumerate(raws):
            state = latch.update(cycle, raw)
            if raw:
                assert state


class TestMakeMetric:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("bfm", BufferMaxMetric),
            ("bfa", BufferAverageMetric),
            ("ir", InjectionRateMetric),
            ("iqocc", InjectionQueueMetric),
            ("delay", BlockingDelayMetric),
        ],
    )
    def test_builds_each_metric(self, name, cls):
        config = CongestionConfig(metric=name)
        assert isinstance(make_metric(config), cls)
