"""Tiny-scale smoke/shape tests for the ablation drivers."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    run_ablation_bfm_threshold,
    run_ablation_idle_detect,
    run_ablation_region_divisions,
    run_ablation_wakeup_delay,
)

TINY = 0.12


class TestDrivers:
    def test_registry_names_match_results(self):
        for name, run in ABLATIONS.items():
            assert callable(run)
            assert name.startswith("abl_")

    def test_bfm_threshold_rows(self):
        result = run_ablation_bfm_threshold(
            scale=TINY, thresholds=(6, 12)
        )
        assert len(result.rows) == 4
        assert {r["threshold"] for r in result.rows} == {6, 12}

    def test_wakeup_delay_latency_monotonicity(self):
        """Longer wakeup delays never help low-load latency."""
        result = run_ablation_wakeup_delay(scale=0.3, delays=(2, 20))
        low = [r for r in result.rows if r["load"] == 0.03]
        fast = next(r for r in low if r["wakeup"] == 2)
        slow = next(r for r in low if r["wakeup"] == 20)
        assert slow["latency"] >= fast["latency"] - 1.0

    def test_idle_detect_short_windows_sleep_more(self):
        """Aggressive idle detection exposes at least as much CSC."""
        result = run_ablation_idle_detect(scale=0.3, values=(1, 32))
        low = [r for r in result.rows if r["load"] == 0.03]
        aggressive = next(r for r in low if r["idle_detect"] == 1)
        lazy = next(r for r in low if r["idle_detect"] == 32)
        assert aggressive["csc_pct"] >= lazy["csc_pct"] - 2.0

    def test_region_divisions_run(self):
        result = run_ablation_region_divisions(
            scale=TINY, divisions=(1, 4)
        )
        assert {r["divisions"] for r in result.rows} == {1, 4}
        assert all(r["csc_pct"] >= 0 for r in result.rows)


class TestExtensionExperiments:
    def test_class_partition_comparison(self):
        from repro.experiments.ext_specialization import (
            run_ext_class_partition,
        )

        result = run_ext_class_partition(scale=0.08)
        assert {r["policy"] for r in result.rows} == {
            "catnap", "round_robin", "class_partition",
        }
        catnap = result.select(policy="catnap")[0]
        partition = result.select(policy="class_partition")[0]
        # Catnap must expose more sleep time than class specialization.
        assert catnap["csc_pct"] > partition["csc_pct"]
