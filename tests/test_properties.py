"""Property-based invariants of the fabric (hypothesis).

These exercise randomized configurations and traffic against the
invariants the simulator must never violate: packet conservation,
credit conservation, buffer bounds, and gated-network equivalence of
delivered traffic.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.config import (
    CongestionConfig,
    NocConfig,
    PowerGatingConfig,
)
from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.noc.topology import Port

configs = st.builds(
    NocConfig,
    mesh_cols=st.integers(2, 4),
    mesh_rows=st.integers(2, 4),
    num_subnets=st.integers(1, 3),
    link_width_bits=st.sampled_from([64, 128, 256]),
    vcs_per_port=st.sampled_from([2, 4]),
    flits_per_vc=st.sampled_from([2, 4]),
    voltage_v=st.just(0.625),
    selection_policy=st.sampled_from(["catnap", "round_robin", "random"]),
    gating=st.booleans().map(lambda on: PowerGatingConfig(enabled=on)),
    congestion=st.sampled_from(
        ["bfm", "bfa", "iqocc"]
    ).map(lambda m: CongestionConfig(metric=m)),
)


def traffic_for(config, data, max_packets=30):
    n = config.num_nodes
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from([72, 256, 584]),
                st.sampled_from(MessageClass.ALL),
            ),
            max_size=max_packets,
        )
    )
    return [
        Packet(src=s, dst=d, size_bits=b, message_class=mc)
        for s, d, b, mc in pairs
        if s != d
    ]


class TestFabricInvariants:
    @settings(max_examples=25, deadline=None)
    @given(configs, st.data())
    def test_conservation_and_drain(self, config, data):
        """Every offered packet is delivered exactly once."""
        fabric = MultiNocFabric(config, seed=data.draw(st.integers(0, 99)))
        delivered = []
        fabric.packet_sink = lambda p, c: delivered.append(p.packet_id)
        packets = traffic_for(config, data)
        for packet in packets:
            fabric.offer(packet)
        assert fabric.drain(30_000)
        assert sorted(delivered) == sorted(p.packet_id for p in packets)

    @settings(max_examples=25, deadline=None)
    @given(configs, st.data())
    def test_credits_restored_after_drain(self, config, data):
        """Credit conservation: all credits return to initial values."""
        fabric = MultiNocFabric(config, seed=data.draw(st.integers(0, 99)))
        for packet in traffic_for(config, data):
            fabric.offer(packet)
        assert fabric.drain(30_000)
        full = config.flits_per_vc
        for network in fabric.subnets:
            for router in network.routers:
                for port in (
                    Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH,
                ):
                    if network.routers and router.neighbor_router[port]:
                        assert all(
                            credit == full
                            for credit in router.credits[port]
                        )

    @settings(max_examples=15, deadline=None)
    @given(configs, st.data())
    def test_buffers_never_exceed_depth(self, config, data):
        """VC occupancy is bounded by flits_per_vc at every cycle."""
        fabric = MultiNocFabric(config, seed=data.draw(st.integers(0, 99)))
        packets = traffic_for(config, data)
        for packet in packets:
            fabric.offer(packet)
        for _ in range(200):
            fabric.step()
            for network in fabric.subnets:
                for router in network.routers:
                    for port in router.ports:
                        for vc in port.vcs:
                            assert vc.occupancy <= config.flits_per_vc

    @settings(max_examples=15, deadline=None)
    @given(configs, st.data())
    def test_latency_at_least_distance(self, config, data):
        """No packet arrives faster than its hop distance allows."""
        fabric = MultiNocFabric(config, seed=data.draw(st.integers(0, 99)))
        packets = traffic_for(config, data, max_packets=10)
        for packet in packets:
            fabric.offer(packet)
        assert fabric.drain(30_000)
        for packet in packets:
            hops = fabric.mesh.hop_distance(packet.src, packet.dst)
            assert packet.latency >= hops

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 99), st.data())
    def test_gating_never_loses_packets(self, seed, data):
        """Power gating must be functionally invisible."""
        config = NocConfig(
            mesh_cols=4,
            mesh_rows=4,
            num_subnets=2,
            link_width_bits=128,
            voltage_v=0.625,
            gating=PowerGatingConfig(enabled=True),
        )
        fabric = MultiNocFabric(config, seed=seed)
        packets = traffic_for(config, data, max_packets=40)
        # Let higher subnets fall asleep first.
        for _ in range(30):
            fabric.step()
        for packet in packets:
            fabric.offer(packet)
        assert fabric.drain(30_000)
        assert fabric.stats.packets_received == len(packets)
