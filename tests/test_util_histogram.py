"""Tests for the bounded latency histogram (repro.util.histogram)."""

from __future__ import annotations

import pytest

from repro.util.histogram import BoundedHistogram


class TestRecording:
    def test_mean_and_count(self):
        hist = BoundedHistogram()
        for value in (1, 2, 3, 4):
            hist.record(value)
        assert hist.count == 4
        assert hist.total == 10
        assert hist.mean == 2.5
        assert hist.max_value == 4

    def test_weights(self):
        hist = BoundedHistogram()
        hist.record(7, weight=3)
        assert hist.count == 3
        assert hist.total == 21
        assert hist.percentile(1.0) == 7.0

    def test_negative_values_raise(self):
        hist = BoundedHistogram()
        with pytest.raises(ValueError, match="negative histogram"):
            hist.record(-5)
        # The rejected sample must leave the histogram untouched.
        assert hist.count == 0
        assert hist.total == 0
        assert hist.percentile(0.5) == 0.0

    def test_empty_histogram(self):
        hist = BoundedHistogram()
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0
        assert hist.to_dict()["bins"] == []

    def test_invalid_construction_and_quantiles(self):
        with pytest.raises(ValueError):
            BoundedHistogram(linear_limit=0)
        hist = BoundedHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)


class TestPercentiles:
    def test_exact_in_linear_range(self):
        hist = BoundedHistogram(linear_limit=128)
        for value in range(100):
            hist.record(value)
        assert hist.percentile(0.50) == 49.0
        assert hist.percentile(0.95) == 94.0
        assert hist.percentile(0.99) == 98.0
        assert hist.percentile(1.0) == 99.0

    def test_geometric_tail_reports_bucket_midpoint(self):
        hist = BoundedHistogram(linear_limit=128)
        # 1000 lands in [512, 1023] -> midpoint clamped by max seen.
        hist.record(1000)
        assert hist.percentile(0.5) == (512 + 1000) / 2.0
        hist.record(600)
        # Same bucket: midpoint uses the bucket bounds and max_value.
        assert hist.percentile(0.1) == (512 + 1000) / 2.0

    def test_huge_values_fit_last_bucket(self):
        hist = BoundedHistogram()
        hist.record(1 << 70)
        assert hist.count == 1
        assert hist.percentile(1.0) > 0

    def test_percentiles_convenience(self):
        hist = BoundedHistogram()
        for value in range(10):
            hist.record(value)
        assert hist.percentiles(0.5, 1.0) == [
            hist.percentile(0.5),
            hist.percentile(1.0),
        ]


class TestMergeAndSerialize:
    def test_merge_sums_counts(self):
        left = BoundedHistogram()
        right = BoundedHistogram()
        for value in range(50):
            left.record(value)
        for value in range(200, 260):
            right.record(value)
        left.merge(right)
        assert left.count == 110
        assert left.max_value == 259
        assert left.percentile(1.0) >= 128

    def test_merge_rejects_different_limits(self):
        with pytest.raises(ValueError):
            BoundedHistogram(64).merge(BoundedHistogram(128))

    def test_to_dict_bins_cover_all_samples(self):
        hist = BoundedHistogram(linear_limit=16)
        for value in (3, 3, 20, 500):
            hist.record(value)
        doc = hist.to_dict()
        assert doc["count"] == 4
        assert sum(n for _, _, n in doc["bins"]) == 4
        for lo, hi, _ in doc["bins"]:
            assert lo <= hi
        # Bins are disjoint and ascending.
        bounds = [(lo, hi) for lo, hi, _ in doc["bins"]]
        assert bounds == sorted(bounds)
        for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
            assert lo > prev_hi
        assert {"p50", "p95", "p99", "mean", "max"} <= set(doc)

    def test_memory_is_bounded(self):
        hist = BoundedHistogram(linear_limit=128)
        assert len(hist._linear) == 128
        assert len(hist._geometric) == BoundedHistogram.GEOMETRIC_BINS
        for value in range(0, 1_000_000, 997):
            hist.record(value)
        assert len(hist._linear) == 128
        assert len(hist._geometric) == BoundedHistogram.GEOMETRIC_BINS
