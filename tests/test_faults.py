"""Tests for the fault-injection subsystem (repro.faults).

Covers the ISSUE-5 guarantees: deterministic schedules and event logs
(same seed => identical log, serial == parallel campaigns), a visible
effect for every fault class with unprotected-vs-protected comparisons
for the recoverable ones, the zero-overhead-when-off structural
contract, composition with the invariant checker, and a campaign
smoke run.
"""

from __future__ import annotations

import pytest

from repro.faults.campaign import (
    render_campaign,
    run_campaign,
    run_fault_point,
)
from repro.faults.engine import FaultEngine, faults_enabled, maybe_attach
from repro.faults.recovery import RecoveryConfig
from repro.faults.spec import (
    FAULT_CLASSES,
    FaultEvent,
    FaultSpec,
    compile_schedule,
    parse_fault_spec,
)
from repro.noc.multinoc import MultiNocFabric
from repro.noc.router import PowerState
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern
from tests.conftest import gated_config, small_config

#: Short open-loop run shared by the effect tests.
PHASES = SimulationPhases(warmup=100, measure=600, cooldown=100)


def run_traffic(fabric, load=0.3, phases=PHASES, seed=5):
    pattern = make_pattern("uniform", fabric.mesh)
    source = SyntheticTrafficSource(fabric, pattern, load, 128, seed=seed)
    return run_open_loop(fabric, source, phases)


def faulted_run(config, schedule_builder, recover=(), load=0.3,
                phases=PHASES, seed=5):
    """Simulate with an explicit schedule; return (fabric, engine)."""
    fabric = MultiNocFabric(config, seed=seed)
    spec = FaultSpec(recover=tuple(recover))
    engine = FaultEngine(
        fabric, spec=spec, schedule=schedule_builder(fabric)
    ).attach()
    fabric.faults = engine
    run_traffic(fabric, load=load, phases=phases, seed=seed)
    engine.detach()
    return fabric, engine


class TestSpecGrammar:
    def test_round_trip(self):
        spec = FaultSpec(
            rate=0.005,
            classes=("drop-wakeup", "lost-credit"),
            window=32,
            start=10,
            end=5000,
            seed=9,
            max_events=7,
            recover=("wakeup-timeout",),
        )
        assert parse_fault_spec(spec.to_string()) == spec

    def test_shorthand_defaults(self):
        assert parse_fault_spec("1") == FaultSpec()
        assert parse_fault_spec("") == FaultSpec()

    def test_recover_keywords(self):
        assert parse_fault_spec("recover=none").recover == ()
        assert parse_fault_spec("recover=all").recover == (
            "wakeup-timeout", "credit-resync", "rcs-refresh",
        )

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            parse_fault_spec("classes=gremlins")

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("frequency=0.1")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            parse_fault_spec("rate=1.5")


class TestSchedule:
    def test_same_seed_compiles_identical_schedules(self, fabric):
        spec = FaultSpec(rate=0.05, seed=11, end=2000)
        first = compile_schedule(spec, fabric.config, fabric.mesh)
        second = compile_schedule(spec, fabric.config, fabric.mesh)
        assert first == second
        assert first, "rate=0.05 over 2000 cycles must schedule events"

    def test_seed_changes_schedule(self, fabric):
        base = FaultSpec(rate=0.05, seed=11, end=2000)
        other = FaultSpec(rate=0.05, seed=12, end=2000)
        assert compile_schedule(
            base, fabric.config, fabric.mesh
        ) != compile_schedule(other, fabric.config, fabric.mesh)

    def test_zero_rate_is_empty(self, fabric):
        spec = FaultSpec(rate=0.0)
        assert compile_schedule(spec, fabric.config, fabric.mesh) == []

    def test_max_events_caps_schedule(self, fabric):
        spec = FaultSpec(rate=0.5, max_events=3, end=2000)
        events = compile_schedule(spec, fabric.config, fabric.mesh)
        assert len(events) == 3

    def test_windows_and_targets_per_class(self, fabric):
        spec = FaultSpec(rate=0.5, window=17, seed=3, end=4000)
        events = compile_schedule(spec, fabric.config, fabric.mesh)
        seen = {event.fault for event in events}
        assert seen == set(FAULT_CLASSES)
        for event in events:
            assert 0 <= event.subnet < fabric.config.num_subnets
            if event.fault == "lost-credit":
                assert event.duration == 0
                assert event.port >= 1 and event.vc >= 0
            else:
                assert event.duration == 17


class TestZeroOverhead:
    def test_no_engine_and_no_shadows_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        fabric = MultiNocFabric(small_config(), seed=5)
        assert fabric.faults is None
        assert "step" not in fabric.__dict__
        assert "request_wakeup" not in fabric.gating.__dict__
        assert "update" not in fabric.monitor.__dict__
        for network in fabric.subnets:
            assert "deliver_arrivals" not in network.__dict__
        # packet_sink is a plain data slot on the NI; without an
        # engine it holds the fabric's own reception callback, not a
        # counting tap.
        for ni in fabric.nis:
            assert ni.packet_sink == fabric._on_packet_received

    def test_attach_detach_restores_structure(self):
        fabric = MultiNocFabric(small_config(), seed=5)
        engine = FaultEngine(fabric, FaultSpec(rate=0.01)).attach()
        assert "step" in fabric.__dict__
        assert "request_wakeup" in fabric.gating.__dict__
        engine.detach()
        assert "step" not in fabric.__dict__
        assert "request_wakeup" not in fabric.gating.__dict__
        for network in fabric.subnets:
            assert "deliver_arrivals" not in network.__dict__

    def test_faults_enabled_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not faults_enabled()
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert not faults_enabled()
        monkeypatch.setenv("REPRO_FAULTS", "rate=0.01")
        assert faults_enabled()

    def test_maybe_attach_is_noop_when_off(self, monkeypatch, fabric):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert maybe_attach(fabric) is None

    def test_env_attach_in_constructor(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rate=0.01;seed=4")
        fabric = MultiNocFabric(small_config(), seed=5)
        assert isinstance(fabric.faults, FaultEngine)
        assert fabric.faults.spec.seed == 4
        fabric.faults.detach()


class TestEventLogDeterminism:
    def test_same_seed_same_log_and_digest(self):
        logs = []
        for _ in range(2):
            fabric = MultiNocFabric(small_config(), seed=5)
            engine = FaultEngine(
                fabric, FaultSpec(rate=0.02, seed=3, end=PHASES.total)
            ).attach()
            fabric.faults = engine
            run_traffic(fabric)
            engine.detach()
            logs.append((engine.event_log_lines(), engine.event_digest()))
        assert logs[0] == logs[1]
        assert logs[0][0], "expected a non-empty event log"

    def test_different_fault_seed_different_digest(self):
        digests = []
        for fault_seed in (3, 4):
            fabric = MultiNocFabric(small_config(), seed=5)
            engine = FaultEngine(
                fabric,
                FaultSpec(rate=0.02, seed=fault_seed, end=PHASES.total),
            ).attach()
            fabric.faults = engine
            run_traffic(fabric)
            engine.detach()
            digests.append(engine.event_digest())
        assert digests[0] != digests[1]


def wildcard(fault, duration, cycle=0, **fields):
    return FaultEvent(
        seq=0, cycle=cycle, fault=fault, duration=duration, **fields
    )


def exhaust_credits_schedule(fabric, subnet=0):
    """Drain every inter-router credit in ``subnet`` at cycle 1."""
    events = []
    config = fabric.config
    for node in range(fabric.mesh.num_nodes):
        for port in sorted(fabric.mesh.neighbors(node)):
            for vc in range(config.vcs_per_port):
                for _ in range(config.flits_per_vc):
                    events.append(
                        FaultEvent(
                            seq=len(events),
                            cycle=1,
                            fault="lost-credit",
                            subnet=subnet,
                            node=node,
                            port=port,
                            vc=vc,
                        )
                    )
    return events


class TestFaultClasses:
    def baseline_survival(self, config, **kwargs):
        _, engine = faulted_run(config, lambda fabric: [], **kwargs)
        return engine.report().survival_rate

    @staticmethod
    def _drop_wakeup_run(recover):
        """Idle until routers sleep, then offer traffic under a
        blanket drop-wakeup fault (sleeping routers only matter once
        something needs to wake them).  Round-robin subnet selection
        spreads traffic over every — sleeping — subnet."""
        config = gated_config().with_policy("round_robin")
        fabric = MultiNocFabric(config, seed=5)
        engine = FaultEngine(
            fabric,
            FaultSpec(recover=recover),
            schedule=[wildcard("drop-wakeup", 400 + PHASES.total)],
        ).attach()
        fabric.faults = engine
        for _ in range(400):
            fabric.step()
        run_traffic(fabric, load=0.3)
        engine.detach()
        return engine

    def test_drop_wakeup_recovery_improves_survival(self):
        unprotected = self._drop_wakeup_run(())
        protected = self._drop_wakeup_run(("wakeup-timeout",))
        assert unprotected.schedule[0].hits > 0
        assert unprotected.has_blocking_effects()
        assert protected.forced_wakes > 0
        assert (
            protected.report().survival_rate
            > unprotected.report().survival_rate
        )

    def test_lost_credit_recovery_improves_survival(self):
        config = small_config()
        _, unprotected = faulted_run(config, exhaust_credits_schedule)
        _, protected = faulted_run(
            config, exhaust_credits_schedule, recover=("credit-resync",)
        )
        assert unprotected.report().lost_credits > 0
        assert protected.credits_resynced > 0
        assert protected.report().lost_credits == 0
        assert (
            protected.report().survival_rate
            > unprotected.report().survival_rate
        )

    def test_drop_flit_loses_packets(self):
        config = small_config()
        schedule = lambda fabric: [  # noqa: E731
            FaultEvent(
                seq=i, cycle=150 + 30 * i, fault="drop-flit", duration=64
            )
            for i in range(10)
        ]
        _, engine = faulted_run(config, schedule)
        report = engine.report()
        assert report.dropped_flits > 0
        assert report.survival_rate < self.baseline_survival(config)

    def test_corrupt_flit_damages_received_packets(self):
        config = small_config()
        schedule = lambda fabric: [  # noqa: E731
            FaultEvent(
                seq=i, cycle=150 + 30 * i, fault="corrupt-flit",
                duration=64,
            )
            for i in range(10)
        ]
        _, engine = faulted_run(config, schedule)
        assert engine.damaged_received > 0
        report = engine.report()
        assert report.survival_rate < self.baseline_survival(config)

    def test_stuck_lcs_1_forces_congestion_bit(self):
        fabric = MultiNocFabric(small_config(), seed=5)
        engine = FaultEngine(
            fabric,
            FaultSpec(),
            schedule=[wildcard("stuck-lcs-1", 100, subnet=0, node=3)],
        ).attach()
        for _ in range(30):
            fabric.step()
        assert fabric.monitor.lcs[0][3] is True
        assert engine.schedule[0].hits > 0
        engine.detach()

    def test_stuck_lcs_0_on_idle_fabric_is_masked(self):
        fabric = MultiNocFabric(small_config(), seed=5)
        engine = FaultEngine(
            fabric,
            FaultSpec(),
            schedule=[wildcard("stuck-lcs-0", 10, subnet=0, node=3)],
        ).attach()
        for _ in range(20):
            fabric.step()
        assert engine.schedule[0].resolved == "masked"
        engine.detach()

    def test_stuck_rcs_1_forced_and_scrubbed_by_refresh(self):
        fabric = MultiNocFabric(small_config(), seed=5)
        engine = FaultEngine(
            fabric,
            FaultSpec(recover=("rcs-refresh",)),
            schedule=[wildcard("stuck-rcs-1", 500, subnet=0, region=0)],
        ).attach()
        regional = fabric.monitor.regional
        for _ in range(12):
            fabric.step()
        assert regional.rcs_region(0, 0) is True
        # rcs-refresh fires at its period (24) and scrubs the lie.
        for _ in range(30):
            fabric.step()
        assert regional.rcs_region(0, 0) is False
        assert engine.rcs_scrubbed > 0
        assert engine.schedule[0].recovered
        engine.detach()

    def test_stuck_awake_pins_routers_active(self):
        config = gated_config()
        baseline = MultiNocFabric(config, seed=5)
        for _ in range(400):
            baseline.step()
        sleepers = sum(
            router.power_state == PowerState.SLEEP
            for network in baseline.subnets
            for router in network.routers
        )
        assert sleepers > 0, "idle gated fabric must put routers to sleep"
        fabric = MultiNocFabric(config, seed=5)
        engine = FaultEngine(
            fabric, FaultSpec(), schedule=[wildcard("stuck-awake", 400)]
        ).attach()
        for _ in range(400):
            fabric.step()
        assert engine.schedule[0].hits > 0
        assert all(
            router.power_state == PowerState.ACTIVE
            for network in fabric.subnets
            for router in network.routers
        )
        engine.detach()

    @staticmethod
    def _stuck_asleep_run(schedule):
        config = gated_config().with_policy("round_robin")
        fabric = MultiNocFabric(config, seed=5)
        engine = FaultEngine(
            fabric, FaultSpec(), schedule=schedule
        ).attach()
        fabric.faults = engine
        for _ in range(400):
            fabric.step()
        run_traffic(fabric, load=0.3)
        engine.detach()
        return engine

    def test_stuck_asleep_suppresses_wakeups(self):
        baseline = self._stuck_asleep_run([])
        engine = self._stuck_asleep_run(
            [wildcard("stuck-asleep", 400 + PHASES.total)]
        )
        assert engine.schedule[0].hits > 0
        assert (
            engine.report().survival_rate
            < baseline.report().survival_rate
        )


class TestCheckerComposition:
    def test_check_composes_with_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            f"rate=0.02;seed=3;end={PHASES.total};"
            "classes=drop-flit,lost-credit",
        )
        fabric = MultiNocFabric(small_config(), seed=5)
        assert fabric.faults is not None
        assert fabric.invariant_checker is not None
        run_traffic(fabric)  # must not raise InvariantViolation
        expected = fabric.invariant_checker.expected
        assert sum(expected.values()) > 0, (
            "fault-aware checker should reconcile at least one "
            f"expected discrepancy, got {expected}"
        )
        assert fabric.faults.report().dropped_flits > 0


class TestCampaign:
    def test_point_rows_are_deterministic(self):
        from repro.faults.campaign import campaign_config
        from repro.experiments.common import synthetic_phases

        phases = synthetic_phases(0.05)
        spec = FaultSpec(
            rate=0.01, classes=("drop-flit",), end=phases.total, seed=2
        )
        rows = [
            run_fault_point(
                campaign_config(), "uniform", 0.3, phases, 7,
                spec.to_string(),
            )
            for _ in range(2)
        ]
        assert rows[0] == rows[1]
        assert rows[0]["event_digest"]

    def test_campaign_serial_equals_parallel(self):
        kwargs = dict(
            classes=("drop-flit",), rates=(0.01,), scale=0.05, seed=7
        )
        serial = run_campaign(jobs=1, **kwargs)
        parallel = run_campaign(jobs=4, **kwargs)
        assert serial.rows == parallel.rows
        assert len(serial.rows) == 2  # unprotected + protected
        for row in serial.rows:
            assert 0.0 <= row["survival_rate"] <= 1.0
            assert row["fault_class"] == "drop-flit"
        assert {row["protected"] for row in serial.rows} == {False, True}
        table = render_campaign(serial)
        assert "survival" in table

    def test_cli_plan_and_campaign(self, capsys):
        from repro.faults.__main__ import main

        assert main(["plan", "rate=0.05;seed=2;end=100"]) == 0
        planned = capsys.readouterr().out
        assert '"fault"' in planned
        assert (
            main(
                [
                    "campaign",
                    "--classes", "drop-flit",
                    "--rates", "0.02",
                    "--scale", "0.03",
                    "--jobs", "1",
                ]
            )
            == 0
        )
        assert "survival" in capsys.readouterr().out


class TestRecoveryConfig:
    def test_from_spec_enables_named_mechanisms(self):
        spec = FaultSpec(recover=("credit-resync",))
        recovery = RecoveryConfig.from_spec(spec)
        assert recovery.credit_resync_enabled
        assert not recovery.wakeup_timeout_enabled
        assert not recovery.rcs_refresh_enabled

    def test_telemetry_sees_fault_instants(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv(
            "REPRO_FAULTS", f"rate=0.02;seed=3;end={PHASES.total}"
        )
        from repro.telemetry.trace import validate_trace

        fabric = MultiNocFabric(small_config(), seed=5)
        run_traffic(fabric)
        summary = fabric.telemetry.summary()
        assert summary["faults"] is not None
        assert summary["faults"]["injected"] > 0
        doc = fabric.telemetry.chrome_trace_doc()
        assert validate_trace(doc) == []
        assert any(
            event.get("cat") == "fault" for event in doc["traceEvents"]
        )
