"""Tests for deterministic RNG utilities."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_varies_with_stream(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_varies_with_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text(max_size=40))
    def test_returns_64_bit_int(self, seed, stream):
        value = derive_seed(seed, stream)
        assert 0 <= value < 2**64


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7, "x")
        b = DeterministicRng(7, "x")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_streams_differ(self):
        a = DeterministicRng(7, "x")
        b = DeterministicRng(7, "y")
        assert [a.random() for _ in range(10)] != [
            b.random() for _ in range(10)
        ]

    def test_substream_is_independent_of_parent_draws(self):
        parent1 = DeterministicRng(7)
        parent1.random()  # consume some state
        child1 = parent1.substream("traffic")
        parent2 = DeterministicRng(7)
        child2 = parent2.substream("traffic")
        assert [child1.random() for _ in range(5)] == [
            child2.random() for _ in range(5)
        ]

    def test_nested_substreams_unique(self):
        root = DeterministicRng(7)
        a = root.substream("a").substream("b")
        b = root.substream("a/b")  # same flattened label
        assert a.stream == "root/a/b"
        assert [a.random() for _ in range(3)] == [
            b.random() for _ in range(3)
        ]

    def test_stream_property(self):
        assert DeterministicRng(1, "abc").stream == "abc"
