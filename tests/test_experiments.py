"""Smoke + shape tests for every experiment driver (tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentResult,
    run_synthetic_point,
    synthetic_phases,
)
from repro.experiments.fig02_bandwidth import run_fig02
from repro.experiments.fig06_subnet_scaling import run_fig06
from repro.experiments.fig07_power_breakdown import run_fig07
from repro.experiments.fig08_applications import (
    fig08_configs,
    headline_summary,
    run_fig08,
)
from repro.experiments.fig09_csc import run_fig09
from repro.experiments.fig10_uniform_pg import fig10_configs, run_fig10
from repro.experiments.fig11_congestion_metrics import (
    fig11_variants,
    run_fig11,
)
from repro.experiments.fig12_bursty import burst_schedule, run_fig12
from repro.experiments.fig13_ir_thresholds import ir_config, run_fig13
from repro.experiments.fig14_64core import run_fig14
from repro.experiments.cli import EXPERIMENTS, run_experiment
from repro.experiments.table02_voltage import run_table02

TINY = 0.08


class TestExperimentResult:
    def test_to_table_and_select(self):
        result = ExperimentResult(
            "x", "t", rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}]
        )
        assert "x: t" in result.to_table()
        assert result.column("b") == [2, 3]
        assert len(result.select(a=1)) == 2
        assert result.select(b=3)[0]["b"] == 3

    def test_to_chart_shared_grid(self):
        result = ExperimentResult(
            "x",
            "t",
            rows=[
                {"load": 0.1, "lat": 10.0, "cfg": "a"},
                {"load": 0.2, "lat": 12.0, "cfg": "a"},
                {"load": 0.1, "lat": 11.0, "cfg": "b"},
                {"load": 0.2, "lat": 14.0, "cfg": "b"},
            ],
        )
        assert "lat vs load" in result.to_chart("load", "lat", "cfg")

    def test_to_chart_rejects_mismatched_grid(self):
        """A group missing an x value must raise, not silently reuse
        a neighbouring point (regression for the points[-1] fallback)."""
        result = ExperimentResult(
            "x",
            "t",
            rows=[
                {"load": 0.1, "lat": 10.0, "cfg": "a"},
                {"load": 0.2, "lat": 12.0, "cfg": "a"},
                {"load": 0.1, "lat": 11.0, "cfg": "b"},
            ],
        )
        with pytest.raises(ValueError, match="same x grid"):
            result.to_chart("load", "lat", "cfg")


class TestTable02:
    def test_exact(self):
        result = run_table02()
        assert len(result.rows) == 4
        highlighted = [r for r in result.rows if r["highlighted"]]
        assert all(r["frequency_ghz"] == 2.0 for r in highlighted)


class TestFig07:
    def test_bar_ordering(self):
        result = run_fig07()
        totals = result.column("total_w")
        assert totals[0] > totals[1] > totals[2]

    def test_buffer_power_roughly_equal(self):
        result = run_fig07()
        buffers = result.column("buffer")
        assert buffers[0] == pytest.approx(buffers[1], rel=0.25)


class TestFig12:
    def test_schedule(self):
        loads = dict(burst_schedule())
        assert loads[1000] == 0.30 and loads[2000] == 0.10

    def test_burst_ramp_and_decay(self):
        result = run_fig12()
        def window(lo, hi, key):
            rows = [r for r in result.rows if lo < r["cycle"] <= hi]
            return sum(r[key] for r in rows) / len(rows)

        assert window(1200, 1500, "accepted") > 0.24
        assert window(2600, 3000, "accepted") < 0.05
        # Second (small) burst leaves the two highest subnets ~unused.
        assert window(2100, 2500, "subnet3") < 0.1


class TestFig13Config:
    def test_ir_config_has_threshold(self):
        config = ir_config(0.12)
        assert config.congestion.injection_rate_threshold == 0.12
        assert not config.gating.enabled


class TestConfigSets:
    def test_fig08_has_six_configs(self):
        configs = fig08_configs()
        assert len(configs) == 6
        assert sum(c.gating.enabled for c in configs) == 3
        rr = [c for c in configs if c.selection_policy == "round_robin"]
        assert len(rr) == 1 and not rr[0].gating.enabled

    def test_fig10_has_four_configs(self):
        assert len(fig10_configs()) == 4

    def test_fig11_variant_set(self):
        variants = fig11_variants()
        assert set(variants) == {
            "RR", "BFA", "Delay", "BFM", "BFM-local", "IQOcc-local",
        }
        assert not variants["BFM-local"].congestion.use_regional
        assert variants["RR"].selection_policy == "round_robin"


class TestTinyRuns:
    """Each driver runs end-to-end at tiny scale with sane outputs."""

    def test_fig02(self):
        result = run_fig02(scale=TINY)
        heavy = result.select(workload="Heavy")
        assert heavy[0]["config"] == "1NT-128b"
        assert heavy[0]["normalized_perf"] < heavy[1]["normalized_perf"]

    def test_fig06(self):
        result = run_fig06(scale=0.25, subnet_counts=(1, 4))
        assert result.rows[0]["flits_per_packet"] == 1
        assert result.rows[1]["flits_per_packet"] == 4
        assert (
            result.rows[1]["low_load_latency"]
            > result.rows[0]["low_load_latency"]
        )

    def test_fig10_point(self):
        phases = synthetic_phases(0.2)
        from repro.noc.config import NocConfig

        row = run_synthetic_point(
            NocConfig.multi_noc(4, power_gating=True), "uniform", 0.03,
            phases,
        )
        assert row["csc_pct"] > 40
        assert row["power_w"] > 0

    def test_fig14(self):
        result = run_fig14(scale=0.25, loads=(0.03,))
        single = result.select(config="1NT-256b-PG")[0]
        multi = result.select(config="2NT-128b-PG")[0]
        assert multi["csc_pct"] > single["csc_pct"]

    @pytest.mark.slow
    def test_fig08_and_fig09_and_headline(self):
        result = run_fig08(scale=TINY)
        summary = headline_summary(result)
        assert summary["power_saving_pct"] > 20
        csc = run_fig09(fig08_result=result)
        assert csc.rows, "fig09 must extract PG rows"

    @pytest.mark.slow
    def test_fig11_subset(self):
        result = run_fig11(
            scale=0.15,
            loads=(0.05, 0.3),
            patterns=("uniform",),
            variants=("RR", "BFM"),
        )
        bfm_low = result.select(variant="BFM", load=0.05)[0]
        rr_low = result.select(variant="RR", load=0.05)[0]
        assert bfm_low["csc_pct"] > rr_low["csc_pct"]

    @pytest.mark.slow
    def test_fig13_subset(self):
        result = run_fig13(
            scale=0.15,
            thresholds=(0.20,),
            loads=(0.1,),
            patterns=("uniform",),
        )
        assert result.rows[0]["latency"] > 0


class TestRunner:
    def test_registry_complete(self):
        paper = {
            "fig02", "table02", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14",
        }
        assert paper <= set(EXPERIMENTS)
        ablations = {n for n in EXPERIMENTS if n.startswith("abl_")}
        assert len(ablations) >= 6

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_run_experiment_dispatch(self):
        result = run_experiment("table02")
        assert result.name == "table02"


class TestFig10Patterns:
    """Paper §6.3: 'our conclusions remained the same' for transpose
    and bit complement — verified at small scale."""

    @pytest.mark.slow
    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement"])
    def test_conclusions_hold_on_other_patterns(self, pattern):
        result = run_fig10(scale=0.2, loads=(0.03,), pattern=pattern)
        multi_pg = result.select(config="4NT-128b-PG", load=0.03)[0]
        single_pg = result.select(config="1NT-512b-PG", load=0.03)[0]
        assert multi_pg["csc_pct"] > single_pg["csc_pct"] + 25
        assert multi_pg["power_w"] < single_pg["power_w"]
