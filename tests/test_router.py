"""Tests for the router microarchitecture via a minimal two-node net."""

from __future__ import annotations

from repro.noc.config import NocConfig
from repro.noc.flit import Flit, MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.noc.router import PowerState
from repro.noc.topology import Port


def two_node_fabric(**overrides):
    """1x2 mesh, single subnet: router 0 -- router 1."""
    defaults = dict(
        mesh_cols=2,
        mesh_rows=1,
        num_subnets=1,
        link_width_bits=128,
        voltage_v=0.625,
    )
    defaults.update(overrides)
    return MultiNocFabric(NocConfig(**defaults), seed=1)


def make_flit(dst, route, size_bits=128, mc=MessageClass.SYNTHETIC):
    packet = Packet(src=0, dst=dst, size_bits=size_bits, message_class=mc)
    packet.num_flits = 1
    flit = Flit(packet, True, True, 0)
    flit.route = route
    return flit


class TestForwarding:
    def test_flit_crosses_link_in_hop_cycles(self, ):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0, r1 = network.routers
        flit = make_flit(dst=1, route=Port.EAST)
        r0.expected_arrivals += 1
        network.flits_in_network += 1
        r0.deliver(Port.LOCAL, 0, flit)
        # Step until the flit lands at router 1's west input.
        for _ in range(fabric.config.timing.hop_cycles + 1):
            fabric.step()
        assert r0.buffered_flits == 0
        # Flit should have arrived and been ejected at node 1.
        assert network.counters.link_traversals == 1

    def test_credit_returns_to_upstream(self):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0 = network.routers[0]
        before = r0.credits[Port.EAST][0]
        flit = make_flit(dst=1, route=Port.EAST, mc=MessageClass.REQUEST)
        r0.expected_arrivals += 1
        network.flits_in_network += 1
        r0.deliver(Port.LOCAL, 0, flit)
        fabric.step()  # SA: flit leaves r0, credit consumed
        assert r0.credits[Port.EAST][0] == before - 1
        for _ in range(10):
            fabric.step()
        # After r1 forwards/ejects the flit, the credit returns.
        assert r0.credits[Port.EAST][0] == before

    def test_lookahead_route_computed_for_next_hop(self):
        fabric = MultiNocFabric(
            NocConfig(
                mesh_cols=3, mesh_rows=1, num_subnets=1,
                link_width_bits=128, voltage_v=0.625,
            ),
            seed=1,
        )
        network = fabric.subnets[0]
        r0 = network.routers[0]
        flit = make_flit(dst=2, route=Port.EAST)
        r0.expected_arrivals += 1
        network.flits_in_network += 1
        r0.deliver(Port.LOCAL, 0, flit)
        fabric.step()
        # While in flight to router 1, the flit's route must already be
        # router 1's output port (EAST again).
        assert flit.route == Port.EAST
        for _ in range(8):
            fabric.step()
        assert flit.route == Port.LOCAL


class TestOutputConstraints:
    def test_one_flit_per_output_port_per_cycle(self):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0 = network.routers[0]
        for vc in (0, 1):
            flit = make_flit(dst=1, route=Port.EAST)
            r0.expected_arrivals += 1
            network.flits_in_network += 1
            r0.deliver(Port.LOCAL, vc, flit)
        fabric.step()
        assert r0.buffered_flits == 1  # only one left per cycle
        fabric.step()
        assert r0.buffered_flits == 0

    def test_wormhole_holds_vc_until_tail(self):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0 = network.routers[0]
        packet = Packet(src=0, dst=1, size_bits=256)
        packet.num_flits = 2
        head = Flit(packet, True, False, 0)
        tail = Flit(packet, False, True, 1)
        for f in (head, tail):
            f.route = Port.EAST
            r0.expected_arrivals += 1
            network.flits_in_network += 1
            r0.deliver(Port.LOCAL, 0, f)
        fabric.step()
        channel = r0.ports[Port.LOCAL].vcs[0]
        assert channel.has_allocation, "VC held between head and tail"
        assert r0.out_owner[Port.EAST][channel.out_vc]
        fabric.step()
        assert not channel.has_allocation, "VC released after tail"


class TestPowerStateInteraction:
    def test_sleeping_downstream_triggers_wakeup_request(self):
        fabric = two_node_fabric(
            gating=__import__(
                "repro.noc.config", fromlist=["PowerGatingConfig"]
            ).PowerGatingConfig(enabled=True, keep_subnet0_active=False),
        )
        network = fabric.subnets[0]
        r0, r1 = network.routers
        r1.power_state = PowerState.SLEEP
        requests = []
        network.wakeup_sink = lambda router, node: requests.append(
            (router.node, node)
        )
        flit = make_flit(dst=1, route=Port.EAST)
        r0.expected_arrivals += 1
        network.flits_in_network += 1
        r0.deliver(Port.LOCAL, 0, flit)
        r0.step(fabric.cycle)
        assert (1, 0) in requests
        assert r0.buffered_flits == 1, "flit must wait for wakeup"


class TestBlockingCounters:
    def test_blocked_and_moved_accumulate(self):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0 = network.routers[0]
        r0.track_blocking = True
        for vc in (0, 1):
            flit = make_flit(dst=1, route=Port.EAST)
            r0.expected_arrivals += 1
            network.flits_in_network += 1
            r0.deliver(Port.LOCAL, vc, flit)
        r0.step(0)
        assert r0.moved_accum == 1
        assert r0.blocked_accum == 1  # the loser waited this cycle


class TestDrainedProperty:
    def test_is_drained_accounts_for_in_flight(self):
        fabric = two_node_fabric()
        network = fabric.subnets[0]
        r0, r1 = network.routers
        assert r0.is_drained and r1.is_drained
        flit = make_flit(dst=1, route=Port.EAST)
        r0.expected_arrivals += 1
        network.flits_in_network += 1
        r0.deliver(Port.LOCAL, 0, flit)
        fabric.step()  # flit now in flight toward r1
        assert r0.is_drained
        assert not r1.is_drained, "expected arrival must block sleep"
