"""Tests for VC buffers and message-class VC assignment."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.buffers import InputPort, VirtualChannel, vc_candidates
from repro.noc.flit import Flit, MessageClass, Packet


def flit():
    return Flit(Packet(src=0, dst=1, size_bits=72), True, True, 0)


class TestVirtualChannel:
    def test_allocation_lifecycle(self):
        vc = VirtualChannel(depth=4)
        assert not vc.has_allocation
        vc.out_port = 1
        vc.out_vc = 2
        assert vc.has_allocation
        vc.release_allocation()
        assert not vc.has_allocation
        assert vc.out_port == -1 and vc.out_vc == -1


class TestInputPort:
    def test_push_pop_fifo_order(self):
        port = InputPort(2, 4)
        flits = [flit() for _ in range(3)]
        for f in flits:
            port.push(0, f)
        assert port.occupancy == 3
        assert [port.pop(0) for _ in range(3)] == flits
        assert port.occupancy == 0

    def test_overflow_raises(self):
        port = InputPort(1, 2)
        port.push(0, flit())
        port.push(0, flit())
        with pytest.raises(OverflowError):
            port.push(0, flit())

    def test_occupancy_across_vcs(self):
        port = InputPort(4, 4)
        port.push(0, flit())
        port.push(3, flit())
        assert port.occupancy == 2
        assert not port.is_empty
        port.pop(0)
        port.pop(3)
        assert port.is_empty


class TestVcCandidates:
    def test_synthetic_gets_all(self):
        assert vc_candidates(MessageClass.SYNTHETIC, 4) == (0, 1, 2, 3)
        assert vc_candidates(MessageClass.SYNTHETIC, 2) == (0, 1)

    def test_protocol_classes_disjoint_on_4vc(self):
        sets = [
            set(vc_candidates(mc, 4))
            for mc in (
                MessageClass.REQUEST,
                MessageClass.FORWARD,
                MessageClass.RESPONSE,
            )
        ]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert not sets[i] & sets[j]

    def test_response_gets_two_vcs(self):
        assert vc_candidates(MessageClass.RESPONSE, 4) == (2, 3)

    @given(
        st.sampled_from(MessageClass.ALL),
        st.integers(1, 8),
    )
    def test_candidates_always_valid(self, mc, vcs):
        for vc in vc_candidates(mc, vcs):
            assert 0 <= vc < vcs
