"""Tests for the regional congestion OR network."""

from __future__ import annotations

import pytest

from repro.core.regional import (
    OR_NETWORK_SWITCH_ENERGY_J,
    RegionalCongestionNetwork,
)
from repro.noc.topology import ConcentratedMesh


def make(update_period=6, num_subnets=2):
    mesh = ConcentratedMesh(8, 8)
    return mesh, RegionalCongestionNetwork(mesh, num_subnets, update_period)


def lcs_with(mesh, num_subnets, congested):
    lcs = [[False] * mesh.num_nodes for _ in range(num_subnets)]
    for subnet, node in congested:
        lcs[subnet][node] = True
    return lcs


class TestOrSemantics:
    def test_single_congested_node_raises_whole_region(self):
        mesh, rcs = make()
        node = mesh.node_at(1, 1)  # region 0
        rcs.update(0, lcs_with(mesh, 2, [(0, node)]))
        for other in mesh.region_nodes(0):
            assert rcs.rcs(0, other)
        for other in mesh.region_nodes(3):
            assert not rcs.rcs(0, other)

    def test_subnets_independent(self):
        mesh, rcs = make()
        rcs.update(0, lcs_with(mesh, 2, [(1, 0)]))
        assert not rcs.rcs(0, 0)
        assert rcs.rcs(1, 0)

    def test_clears_when_no_congestion(self):
        mesh, rcs = make()
        rcs.update(0, lcs_with(mesh, 2, [(0, 0)]))
        assert rcs.rcs(0, 0)
        rcs.update(6, lcs_with(mesh, 2, []))
        assert not rcs.rcs(0, 0)


class TestUpdatePeriod:
    def test_latched_between_updates(self):
        mesh, rcs = make(update_period=6)
        rcs.update(0, lcs_with(mesh, 2, [(0, 0)]))
        # Mid-period updates are ignored (propagation delay).
        rcs.update(3, lcs_with(mesh, 2, []))
        assert rcs.rcs(0, 0), "bit must hold between update boundaries"
        rcs.update(6, lcs_with(mesh, 2, []))
        assert not rcs.rcs(0, 0)

    def test_period_one_updates_every_cycle(self):
        mesh, rcs = make(update_period=1)
        rcs.update(0, lcs_with(mesh, 2, [(0, 0)]))
        rcs.update(1, lcs_with(mesh, 2, []))
        assert not rcs.rcs(0, 0)

    def test_rejects_zero_period(self):
        mesh = ConcentratedMesh(4, 4)
        with pytest.raises(ValueError):
            RegionalCongestionNetwork(mesh, 1, 0)


class TestTransitionsEnergy:
    def test_transitions_counted_per_bit_change(self):
        mesh, rcs = make()
        rcs.update(0, lcs_with(mesh, 2, [(0, 0)]))  # region 0 up: 1
        rcs.update(6, lcs_with(mesh, 2, [(0, 0)]))  # unchanged
        rcs.update(12, lcs_with(mesh, 2, []))  # region 0 down: 2
        assert rcs.transitions == 2
        assert rcs.switching_energy_joules() == pytest.approx(
            2 * OR_NETWORK_SWITCH_ENERGY_J
        )

    def test_no_transitions_when_stable(self):
        mesh, rcs = make()
        for cycle in range(0, 60, 6):
            rcs.update(cycle, lcs_with(mesh, 2, []))
        assert rcs.transitions == 0


class TestRegionLookup:
    def test_region_of_matches_mesh(self):
        mesh, rcs = make()
        for node in range(mesh.num_nodes):
            assert rcs.region_of(node) == mesh.region_of(node)

    def test_rcs_region_direct(self):
        mesh, rcs = make()
        rcs.update(0, lcs_with(mesh, 2, [(0, mesh.node_at(7, 7))]))
        assert rcs.rcs_region(0, 3)
        assert not rcs.rcs_region(0, 0)
