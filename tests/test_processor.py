"""Closed-loop processor tests (64-core scale for speed)."""

from __future__ import annotations

import pytest

from repro.noc.config import NocConfig
from repro.system.processor import Processor
from repro.system.workloads import workload


def small_processor(num_subnets=2, power_gating=False, wl="Light",
                    seed=6):
    config = NocConfig.mesh_64_core(
        num_subnets=num_subnets, power_gating=power_gating
    )
    return Processor(config, workload(wl, num_cores=64), seed=seed)


class TestClosedLoop:
    def test_run_produces_sane_result(self):
        processor = small_processor()
        result = processor.run(3000)
        assert 0 < result.aggregate_ipc <= 2.0 * 64
        assert result.avg_miss_latency > 0
        assert result.transactions_completed > 0
        assert result.cycles == 3000

    def test_heavier_workload_lower_ipc(self):
        light = small_processor(wl="Light").run(3000)
        heavy = small_processor(wl="Heavy").run(3000)
        assert heavy.aggregate_ipc < light.aggregate_ipc

    def test_congestion_feedback_throttles(self):
        """A narrower network must not out-perform a wider one."""
        narrow_cfg = NocConfig(
            mesh_cols=4, mesh_rows=4, num_subnets=1,
            link_width_bits=64, voltage_v=0.625,
        )
        wide_cfg = NocConfig.mesh_64_core(num_subnets=1)
        spec = workload("Heavy", num_cores=64)
        narrow = Processor(narrow_cfg, spec, seed=6).run(3000)
        wide = Processor(wide_cfg, spec, seed=6).run(3000)
        assert narrow.aggregate_ipc < wide.aggregate_ipc
        assert narrow.avg_miss_latency > wide.avg_miss_latency

    def test_control_fraction_in_band(self):
        result = small_processor(wl="Medium-Light").run(3000)
        assert 0.4 < result.control_fraction < 0.8

    def test_workload_mismatch_rejected(self):
        config = NocConfig.mesh_64_core()
        with pytest.raises(ValueError):
            Processor(config, workload("Light", num_cores=256))

    def test_string_workload_resolved(self):
        config = NocConfig.mesh_64_core()
        processor = Processor(config, "Light")
        assert processor.spec.num_cores == 64


class TestGatingInClosedLoop:
    def test_multi_noc_pg_exposes_csc_on_light(self):
        result = small_processor(
            num_subnets=2, power_gating=True, wl="Light"
        ).run(3000)
        assert result.fabric_report.csc_fraction > 0.2

    def test_single_noc_pg_exposes_little_csc(self):
        result = small_processor(
            num_subnets=1, power_gating=True, wl="Light"
        ).run(3000)
        assert result.fabric_report.csc_fraction < 0.15


class TestDeterminism:
    def test_same_seed_reproducible(self):
        a = small_processor(seed=9).run(2000)
        b = small_processor(seed=9).run(2000)
        assert a.aggregate_ipc == b.aggregate_ipc
        assert a.transactions_completed == b.transactions_completed
