"""Tests for the event-driven processor core model."""

from __future__ import annotations

import pytest

from repro.system.core import CoreModel


def make_core(mpki=10.0, mlp=4, slack=32, width=2):
    return CoreModel(
        0, mpki, mlp_limit=mlp, window_slack=slack, issue_width=width,
    )


class TestMissGeneration:
    def test_gap_scales_with_mpki(self):
        fast = CoreModel(0, 100.0, seed=1)
        slow = CoreModel(1, 1.0, seed=1)
        fast_gaps = [fast._draw_gap() for _ in range(200)]
        slow_gaps = [slow._draw_gap() for _ in range(200)]
        assert sum(fast_gaps) < sum(slow_gaps)

    def test_gap_scales_with_issue_width(self):
        narrow = CoreModel(0, 10.0, issue_width=1, seed=2)
        wide = CoreModel(0, 10.0, issue_width=4, seed=2)
        n = sum(narrow._draw_gap() for _ in range(300))
        w = sum(wide._draw_gap() for _ in range(300))
        assert w < n

    def test_miss_due(self):
        core = make_core()
        assert not core.miss_due(0)
        assert core.miss_due(core.next_miss_cycle)


class TestMlpLimit:
    def test_blocks_at_limit(self):
        core = make_core(mlp=2)
        core.issue_miss(10)
        assert not core.is_blocked
        core.issue_miss(11)
        assert core.is_blocked

    def test_completion_unblocks(self):
        core = make_core(mlp=2)
        t1 = core.issue_miss(10)
        t2 = core.issue_miss(11)
        assert core.is_blocked
        resumed = core.complete(t1, 20)
        assert resumed and not core.is_blocked
        assert core.blocked_cycles == 9


class TestWindowSlack:
    def test_stall_check_blocks_old_miss(self):
        core = make_core(slack=32)
        core.issue_miss(100)
        core.check_stall(120)
        assert not core.is_blocked
        core.check_stall(132)
        assert core.is_blocked

    def test_stall_check_cycle_is_oldest_plus_slack(self):
        core = make_core(slack=32)
        core.issue_miss(100)
        core.issue_miss(110)
        assert core.stall_check_cycle() == 132

    def test_completion_of_old_miss_prevents_stall(self):
        core = make_core(slack=32)
        token = core.issue_miss(100)
        core.complete(token, 120)
        core.check_stall(140)
        assert not core.is_blocked

    def test_resume_blocked_until_young_oldest(self):
        core = make_core(slack=32)
        t1 = core.issue_miss(100)
        t2 = core.issue_miss(130)
        core.check_stall(132)  # blocked on t1
        assert core.is_blocked
        # Completing t1 at 170: t2 is now 40 > slack old -> stay blocked.
        assert not core.complete(t1, 170)
        assert core.is_blocked
        assert core.complete(t2, 180)
        assert core.blocked_cycles == 48


class TestAccounting:
    def test_unknown_token_raises(self):
        core = make_core()
        with pytest.raises(RuntimeError):
            core.complete(99, 10)

    def test_ipc_full_speed_without_stalls(self):
        core = make_core(width=2)
        assert core.ipc(1000) == 2.0

    def test_ipc_reflects_blocked_cycles(self):
        core = make_core(width=2, mlp=1)
        token = core.issue_miss(0)
        core.complete(token, 100)
        assert core.blocked_cycles == 100
        assert core.ipc(1000) == pytest.approx(2.0 * 900 / 1000)

    def test_finalize_closes_open_stall(self):
        core = make_core(mlp=1)
        core.issue_miss(0)
        core.finalize(50)
        assert core.blocked_cycles == 50
        assert not core.is_blocked

    def test_misses_counted(self):
        core = make_core()
        t = core.issue_miss(5)
        core.complete(t, 50)
        assert core.misses_issued == 1
        assert core.misses_completed == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CoreModel(0, mpki=0)
        with pytest.raises(ValueError):
            CoreModel(0, mpki=1, mlp_limit=0)
