"""Tests for ASCII plotting helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ascii_plot import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁" and out[-1] == "█"

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestBarChart:
    def test_peak_bar_longest(self):
        out = bar_chart(["a", "b"], [1.0, 4.0], width=20)
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_title_and_unit(self):
        out = bar_chart(["x"], [2.0], title="T", unit="W")
        assert out.startswith("T\n")
        assert "2W" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart(
            [0, 1, 2],
            {"lat": [10, 20, 30], "thr": [1, 2, 3]},
        )
        assert "*" in out and "o" in out
        assert "*=lat" in out and "o=thr" in out

    def test_axis_annotations(self):
        out = line_chart([0, 10], {"y": [5, 15]})
        assert "y: [5 .. 15]" in out
        assert "x: [0 .. 10]" in out

    def test_empty_inputs(self):
        assert line_chart([], {}, title="t") == "t"


class TestHeatmap:
    def test_shades_scale_with_values(self):
        from repro.util.ascii_plot import heatmap

        out = heatmap([[0.0, 10.0], [5.0, 0.0]])
        lines = out.splitlines()
        assert lines[0] == "|  @@|"
        assert lines[1].startswith("|")
        assert "scale: ' '=0 .. '@'=10" in lines[-1]

    def test_title_and_empty(self):
        from repro.util.ascii_plot import heatmap

        assert heatmap([], title="t") == "t"
        assert heatmap([[]]) == ""
        out = heatmap([[1.0]], title="grid")
        assert out.splitlines()[0] == "grid"

    def test_all_zero_grid(self):
        from repro.util.ascii_plot import heatmap

        out = heatmap([[0.0, 0.0]])
        assert out.splitlines()[0] == "|    |"
