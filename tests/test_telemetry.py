"""Tests for the telemetry subsystem (repro.telemetry).

Covers the three acceptance-critical properties:

* zero overhead when disabled — an unattached fabric carries no hub
  shadows and executes the plain class methods;
* probe exactness — per-subnet sleep/wakeup cycle totals derived from
  transition events reconcile exactly with ``GatingStats``;
* artifact validity — the Chrome trace validates against the
  trace-event schema and the time-series JSON round-trips.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import gated_config, small_fabric

from repro.noc.multinoc import MultiNocFabric
from repro.telemetry import (
    TelemetryHub,
    maybe_attach,
    telemetry_enabled,
    validate_trace,
)
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.observer import TelemetryObserver
from repro.traffic.generators import (
    BurstyTrafficSource,
    SyntheticTrafficSource,
)
from repro.traffic.patterns import make_pattern


@pytest.fixture(autouse=True)
def _telemetry_env_absent(monkeypatch):
    """Every test here assumes a clean telemetry environment unless it
    sets one itself — keeps this file order-independent of suite-mates
    that run the CLI's --telemetry path."""
    for name in (
        "REPRO_TELEMETRY",
        "REPRO_TELEMETRY_DIR",
        "REPRO_TELEMETRY_PERIOD",
        "REPRO_TELEMETRY_MAX_PACKETS",
    ):
        monkeypatch.delenv(name, raising=False)


def gated_fabric(seed: int = 9, **overrides) -> MultiNocFabric:
    return MultiNocFabric(gated_config(**overrides), seed=seed)


def run_traffic(fabric, cycles: int, load: float = 0.1, seed: int = 9):
    source = SyntheticTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), load, 128, seed=seed
    )
    for _ in range(cycles):
        source.step(fabric.cycle)
        fabric.step()


def run_bursty(fabric, cycles: int, seed: int = 9):
    """Step-load schedule exercising sleeps, wakeups, and RCS flips."""
    schedule = [(0, 0.85), (cycles // 4, 0.02), (cycles // 2, 0.9)]
    source = BurstyTrafficSource(
        fabric,
        make_pattern("transpose", fabric.mesh),
        schedule,
        seed=seed,
    )
    for _ in range(cycles):
        source.step(fabric.cycle)
        fabric.step()


class TestZeroOverhead:
    def test_unattached_fabric_has_no_hub_shadows(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        fabric = small_fabric()
        assert fabric.telemetry is None
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        for name in ("_sleep", "_begin_wakeup", "_wake_complete",
                     "request_wakeup"):
            assert name not in fabric.gating.__dict__
        assert "update" not in fabric.monitor.regional.__dict__
        # The bound step is the plain class method — the seed fast path.
        assert fabric.step.__func__ is MultiNocFabric.step
        assert fabric.report.__func__ is MultiNocFabric.report

    def test_detach_restores_every_shadow(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=8).attach()
        assert "step" in fabric.__dict__
        assert "_sleep" in fabric.gating.__dict__
        run_traffic(fabric, 64)
        hub.detach()
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        assert "_sleep" not in fabric.gating.__dict__
        assert "update" not in fabric.monitor.regional.__dict__
        assert fabric.step.__func__ is MultiNocFabric.step
        # The NI sinks are restored to the fabric's own bound method.
        for ni in fabric.nis:
            assert ni.packet_sink == fabric._on_packet_received
        # Stepping after detach records nothing further.
        seen = hub.packets_seen
        run_traffic(fabric, 64)
        assert hub.packets_seen == seen

    def test_attach_is_idempotent(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=8)
        assert hub.attach() is hub
        saved = len(hub._saved)
        hub.attach()
        assert len(hub._saved) == saved
        hub.detach()
        hub.detach()

    def test_telemetry_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled()

    def test_maybe_attach_respects_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        fabric = small_fabric()
        assert maybe_attach(fabric) is None
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        hub = maybe_attach(fabric)
        assert hub is not None and hub.attached
        hub.detach()


class TestEnvAttach:
    def test_constructor_attaches_hub_from_env(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TELEMETRY_PERIOD", "16")
        fabric = gated_fabric()
        assert fabric.telemetry is not None
        assert fabric.telemetry.attached
        assert fabric.telemetry.sampler.period == 16
        run_traffic(fabric, 200)
        fabric.report()  # autoflush
        names = sorted(p.name for p in tmp_path.iterdir())
        assert any(n.endswith(".trace.json") for n in names)
        assert any(n.endswith(".timeseries.json") for n in names)
        assert any(n.endswith(".summary.txt") for n in names)

    def test_repeated_reports_never_collide(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        fabric = gated_fabric()
        run_traffic(fabric, 64)
        fabric.report()
        fabric.report()
        traces = [
            p.name
            for p in tmp_path.iterdir()
            if p.name.endswith(".trace.json")
        ]
        assert len(traces) == 2
        assert len(set(traces)) == 2


class TestReconciliation:
    def test_sleep_and_wakeup_totals_match_gating_stats(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_bursty(fabric, 2400)
        fabric.report()
        assert hub.sleep_cycles_by_subnet() == [
            stats.sleep_cycles for stats in fabric.gating.stats
        ]
        assert hub.wakeup_cycles_by_subnet() == [
            stats.wakeup_cycles for stats in fabric.gating.stats
        ]
        assert hub.sleep_periods == [
            stats.sleep_periods for stats in fabric.gating.stats
        ]
        assert hub.wake_requests == [
            stats.wake_requests for stats in fabric.gating.stats
        ]
        # The workload actually slept and woke — the reconciliation is
        # not vacuous.
        assert sum(hub.sleep_periods) > 0
        assert sum(hub.wakeup_cycles_by_subnet()) > 0

    def test_reconciles_with_open_sleep_periods_mid_run(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_traffic(fabric, 500, load=0.02)
        # No finalize: routers are still asleep (open periods).
        assert hub._sleep_start, "expected open sleep periods"
        assert hub.sleep_cycles_by_subnet() == [
            stats.sleep_cycles for stats in fabric.gating.stats
        ]

    def test_wakeup_latency_histogram_populated(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_bursty(fabric, 2400)
        assert hub.wakeup_latency.count > 0
        # A look-ahead wake takes at least the configured wakeup delay.
        assert hub.wakeup_latency.percentile(0.5) >= (
            fabric.gating.wakeup_cycles
        )

    def test_ungated_fabric_records_no_transitions(self):
        fabric = small_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_traffic(fabric, 300)
        assert hub.sleep_cycles_by_subnet() == [0, 0]
        assert not hub.power_intervals


class TestPacketsAndCongestion:
    def test_packet_records_match_received(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_traffic(fabric, 600)
        assert hub.packets_seen == fabric.stats.packets_received
        assert len(hub.packet_records) == hub.packets_seen
        assert hub.truncated_packets == 0
        for record in hub.packet_records:
            assert record["received"] >= record["created"]
            assert record["subnet"] >= 0
            assert record["hops"] >= 0
        assert hub.latency.count == hub.packets_seen

    def test_packet_records_respect_memory_cap(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16, max_packets=5).attach()
        run_traffic(fabric, 600)
        assert len(hub.packet_records) == 5
        assert hub.truncated_packets == hub.packets_seen - 5
        # Histograms keep counting past the cap.
        assert hub.latency.count == hub.packets_seen

    def test_rcs_and_lcs_probes_fire_under_load(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_bursty(fabric, 2400)
        assert hub.rcs_events
        assert sum(hub.lcs_raised) > 0
        assert hub.lcs_raised == hub.lcs_cleared or sum(
            hub.lcs_raised
        ) >= sum(hub.lcs_cleared)
        duty = hub.rcs_duty_by_subnet()
        assert all(0.0 <= d <= 1.0 for d in duty)
        assert any(d > 0.0 for d in duty)
        # Toggle events only occur on update-period boundaries.
        period = fabric.monitor.regional.update_period
        assert all(
            cycle % period == 0 for cycle, _, _, _ in hub.rcs_events
        )


class TestSampler:
    def test_tick_cadence_and_column_lengths(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=32).attach()
        run_traffic(fabric, 200)
        sampler = hub.sampler
        assert sampler.ticks == [0, 32, 64, 96, 128, 160, 192]
        n = len(sampler.ticks)
        for series in sampler.subnets:
            assert len(series.active) == n
            assert len(series.sleep) == n
            assert len(series.max_buffer_occupancy) == n
        assert len(sampler.injection_queue_flits) == n
        # Power-state counts always partition the router population.
        routers = fabric.mesh.num_nodes
        for series in sampler.subnets:
            for tick in range(n):
                assert (
                    series.active[tick]
                    + series.sleep[tick]
                    + series.wakeup[tick]
                    == routers
                )

    def test_time_series_doc_round_trips_as_json(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_traffic(fabric, 200)
        doc = json.loads(json.dumps(hub.time_series_doc()))
        assert doc["schema"] == "repro.telemetry.timeseries/1"
        assert doc["summary"]["cycles"] == fabric.cycle
        assert doc["series"]["period"] == 16

    def test_ascii_summary_renders(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_traffic(fabric, 300)
        text = hub.ascii_summary()
        assert "sleep routers" in text
        assert "peak router occupancy" in text


class TestTraceExport:
    def test_trace_validates_and_balances(self):
        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=16).attach()
        run_bursty(fabric, 1600)
        fabric.report()
        doc = hub.chrome_trace_doc()
        assert validate_trace(doc) == []
        events = doc["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == len(hub.packet_records)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "expected power-state slices"
        assert {e["name"] for e in slices} <= {"sleep", "wakeup"}
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(hub.rcs_events)

    def test_validator_flags_broken_documents(self):
        assert validate_trace([]) == ["document is not a JSON object"]
        assert validate_trace({}) == ["missing or non-list traceEvents"]
        bad = {
            "traceEvents": [
                {"ph": "X", "name": "s", "ts": -1, "dur": 2},
                {"ph": "b", "cat": "p", "id": 1, "name": "x", "ts": 5},
                {"ph": "??", "ts": 0},
            ]
        }
        errors = validate_trace(bad)
        assert any("bad ts" in e for e in errors)
        assert any("1 begin(s) vs 0 end(s)" in e for e in errors)
        assert any("bad phase" in e for e in errors)

    def test_cli_validate(self, tmp_path, capsys):
        fabric = gated_fabric()
        hub = TelemetryHub(
            fabric, period=16, out_dir=str(tmp_path)
        ).attach()
        run_traffic(fabric, 200)
        hub.flush()
        assert telemetry_main(["validate", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out
        bad = tmp_path / "broken.trace.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert telemetry_main(["validate", str(bad)]) == 1
        assert telemetry_main(["validate", str(tmp_path / "none")]) == 1

    def test_cli_validate_empty_dir(self, tmp_path, capsys):
        assert telemetry_main(["validate", str(tmp_path)]) == 1
        assert "no trace files" in capsys.readouterr().err


class TestObserver:
    def test_observer_reports_new_artifacts(self, tmp_path, capsys):
        observer = TelemetryObserver(directory=str(tmp_path))
        (tmp_path / "old.trace.json").write_text("{}")
        observer.sweep_started(1)
        fabric = gated_fabric()
        hub = TelemetryHub(
            fabric, period=16, out_dir=str(tmp_path)
        ).attach()
        run_traffic(fabric, 100)
        hub.flush()
        observer.point_finished(0, None, [], 0.0, False)
        observer.sweep_finished(None)
        assert len(observer.reported) == 3
        assert all("old" not in path for path in observer.reported)

    def test_observer_survives_missing_directory(self, tmp_path):
        observer = TelemetryObserver(
            directory=str(tmp_path / "missing")
        )
        observer.sweep_started(1)
        observer.point_finished(0, None, [], 0.0, False)
        assert observer.reported == []


class TestGatingConsistencyAfterDetach:
    def test_gating_behaviour_identical_with_and_without_hub(self):
        """The probes observe; they must never change the simulation."""
        plain = gated_fabric(seed=11)
        run_bursty(plain, 1200, seed=11)
        hooked = gated_fabric(seed=11)
        hub = TelemetryHub(hooked, period=16).attach()
        run_bursty(hooked, 1200, seed=11)
        assert plain.stats.packets_received == hooked.stats.packets_received
        assert [s.sleep_cycles for s in plain.gating.stats] == [
            s.sleep_cycles for s in hooked.gating.stats
        ]
        assert [s.wakeup_cycles for s in plain.gating.stats] == [
            s.wakeup_cycles for s in hooked.gating.stats
        ]
        assert plain.monitor.regional.transitions == (
            hooked.monitor.regional.transitions
        )
        hub.detach()
