"""Tests for traffic trace record/replay."""

from __future__ import annotations

import pytest

from tests.conftest import small_fabric

from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern
from repro.traffic.trace import (
    RecordingSource,
    TraceRecord,
    TraceSource,
    TrafficTrace,
)


class TestTrafficTrace:
    def test_append_enforces_order(self):
        trace = TrafficTrace()
        trace.append(TraceRecord(5, 0, 1, 72, 0))
        with pytest.raises(ValueError):
            trace.append(TraceRecord(4, 0, 1, 72, 0))

    def test_duration(self):
        trace = TrafficTrace()
        assert trace.duration == 0
        trace.append(TraceRecord(7, 0, 1, 72, 0))
        assert trace.duration == 7

    def test_save_load_roundtrip(self, tmp_path):
        trace = TrafficTrace(
            [
                TraceRecord(1, 0, 5, 512, 3),
                TraceRecord(1, 2, 7, 72, 0),
                TraceRecord(9, 3, 1, 584, 2),
            ]
        )
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert loaded.records == trace.records

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n3 0 1 72 0\n")
        trace = TrafficTrace.load(path)
        assert len(trace) == 1

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            TrafficTrace.load(path)


class TestTextFormatV1:
    def test_save_writes_version_header(self, tmp_path):
        path = tmp_path / "trace.txt"
        TrafficTrace([TraceRecord(1, 0, 1, 72, 0)]).save(path)
        assert path.read_text().splitlines()[0] == "#catnap-trace v1"

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#catnap-trace v99\n1 0 1 72 0\n")
        with pytest.raises(ValueError, match="line 1"):
            TrafficTrace.load(path)

    def test_tenant_column_roundtrips(self, tmp_path):
        trace = TrafficTrace(
            [
                TraceRecord(1, 0, 5, 512, 3),  # untagged: 5 fields
                TraceRecord(2, 2, 7, 72, 0, tenant=3),  # 6 fields
            ]
        )
        path = tmp_path / "trace.txt"
        trace.save(path)
        lines = path.read_text().splitlines()
        assert lines[1] == "1 0 5 512 3"
        assert lines[2] == "2 2 7 72 0 3"
        loaded = TrafficTrace.load(path)
        assert loaded.records == trace.records
        assert loaded.records[0].tenant == -1
        assert loaded.records[1].tenant == 3

    def test_rejects_non_integer_with_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 0 1 72 0\n2 0 x 72 0\n")
        with pytest.raises(ValueError, match="line 2"):
            TrafficTrace.load(path)

    def test_rejects_out_of_range_with_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 0 1 72 0\n\n2 0 1 -8 0\n")
        with pytest.raises(ValueError, match="line 3"):
            TrafficTrace.load(path)

    def test_rejects_cycle_disorder_with_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5 0 1 72 0\n4 0 1 72 0\n")
        with pytest.raises(ValueError, match="line 2"):
            TrafficTrace.load(path)


class TestRecordReplay:
    def test_recording_captures_offers(self):
        fabric = small_fabric()
        inner = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.2, seed=4
        )
        recorder = RecordingSource(fabric, inner)
        for cycle in range(50):
            recorder.step(cycle)
            fabric.step()
        assert len(recorder.trace) == inner.packets_generated
        assert len(recorder.trace) > 0

    def test_replay_reproduces_exact_traffic(self):
        # Record on one fabric...
        fabric_a = small_fabric(seed=4)
        inner = SyntheticTrafficSource(
            fabric_a, make_pattern("uniform", fabric_a.mesh), 0.2, seed=4
        )
        recorder = RecordingSource(fabric_a, inner)
        for cycle in range(60):
            recorder.step(cycle)
            fabric_a.step()
        # ... replay on a fresh identical fabric.
        fabric_b = small_fabric(seed=999)  # seed must not matter
        replay = TraceSource(fabric_b, recorder.trace)
        for cycle in range(60):
            replay.step(cycle)
            fabric_b.step()
        assert replay.packets_generated == len(recorder.trace)
        assert (
            fabric_b.stats.packets_offered
            == fabric_a.stats.packets_offered
        )

    def test_replay_exhausted_flag(self):
        fabric = small_fabric()
        trace = TrafficTrace([TraceRecord(3, 0, 1, 72, 0)])
        source = TraceSource(fabric, trace)
        source.step(2)
        assert not source.exhausted
        source.step(3)
        assert source.exhausted

    def test_replay_report_identical_on_dense_and_skip(self):
        """Record once; replay produces byte-identical reports on both
        backends (the trace pins the exact packet sequence, and the
        kernels are result-equivalent by contract)."""
        from repro.workloads.point import report_digest

        fabric_a = small_fabric(seed=4)
        inner = SyntheticTrafficSource(
            fabric_a, make_pattern("uniform", fabric_a.mesh), 0.15, seed=4
        )
        recorder = RecordingSource(fabric_a, inner)
        for cycle in range(80):
            recorder.step(cycle)
            fabric_a.step()

        digests = []
        for backend in ("dense", "skip"):
            fabric = small_fabric(seed=999, backend=backend)
            replay = TraceSource(fabric, recorder.trace)
            fabric.stats.begin_measurement(0)
            while not replay.exhausted:
                fabric.backend.run(64, replay)
            fabric.stats.end_measurement(fabric.cycle)
            assert fabric.drain()
            digests.append(report_digest(fabric.report()))
        assert digests[0] == digests[1]

    def test_replay_on_different_config(self):
        """A trace recorded once drives any fabric configuration."""
        fabric_a = small_fabric(seed=4)
        inner = SyntheticTrafficSource(
            fabric_a, make_pattern("uniform", fabric_a.mesh), 0.1, seed=4
        )
        recorder = RecordingSource(fabric_a, inner)
        for cycle in range(40):
            recorder.step(cycle)
            fabric_a.step()
        fabric_b = small_fabric(num_subnets=1, link_width_bits=256)
        replay = TraceSource(fabric_b, recorder.trace)
        for cycle in range(40):
            replay.step(cycle)
            fabric_b.step()
        assert fabric_b.drain()
        assert fabric_b.stats.packets_received == len(recorder.trace)
