"""Tests for the chunked streaming trace format."""

from __future__ import annotations

import struct

import pytest

from tests.conftest import small_fabric

from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern
from repro.traffic.trace import TraceRecord, TraceSource, TrafficTrace
from repro.workloads.stream import (
    STREAM_MAGIC,
    StreamingRecordingSource,
    StreamingTraceReader,
    StreamingTraceSource,
    StreamingTraceWriter,
    is_stream_trace,
    trace_info,
)


def _records(count: int, start: int = 0) -> list[TraceRecord]:
    return [
        TraceRecord(start + i // 3, i % 16, (i * 7) % 16, 512, 0, i % 4)
        for i in range(count)
    ]


def _write(path, records, chunk_records=8) -> None:
    with StreamingTraceWriter(path, chunk_records) as writer:
        writer.extend(records)


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        records = _records(100)
        path = tmp_path / "t.ctr"
        _write(path, records)
        reader = StreamingTraceReader(path)
        assert list(reader) == records
        assert reader.records_read == 100
        assert not reader.truncated
        assert reader.declared_records == 100

    def test_chunk_boundaries(self, tmp_path):
        # Exactly at, one under, and one over a chunk boundary.
        for count in (7, 8, 9, 16, 17):
            path = tmp_path / f"t{count}.ctr"
            _write(path, _records(count), chunk_records=8)
            assert list(StreamingTraceReader(path)) == _records(count)

    def test_multiple_passes(self, tmp_path):
        path = tmp_path / "t.ctr"
        _write(path, _records(20))
        reader = StreamingTraceReader(path)
        assert list(reader) == list(reader)
        assert reader.records_read == 20

    def test_writer_enforces_cycle_order(self, tmp_path):
        writer = StreamingTraceWriter(tmp_path / "t.ctr", 8)
        writer.append(TraceRecord(5, 0, 1, 72, 0))
        with pytest.raises(ValueError, match="cycle order"):
            writer.append(TraceRecord(4, 0, 1, 72, 0))
        writer.close()

    def test_writer_validates_field_widths(self, tmp_path):
        writer = StreamingTraceWriter(tmp_path / "t.ctr", 8)
        with pytest.raises(ValueError, match="16 bits"):
            writer.append(TraceRecord(0, 1 << 16, 1, 72, 0))
        with pytest.raises(ValueError, match="size_bits"):
            writer.append(TraceRecord(0, 0, 1, -8, 0))
        writer.close()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = StreamingTraceWriter(tmp_path / "t.ctr", 8)
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(TraceRecord(0, 0, 1, 72, 0))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ctr"
        path.write_bytes(b"NOTATRACE" + b"\0" * 32)
        with pytest.raises(ValueError, match="bad magic"):
            StreamingTraceReader(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.ctr"
        header = struct.Struct("<8sHHIQ")
        path.write_bytes(header.pack(STREAM_MAGIC, 99, 0, 8, 0))
        with pytest.raises(ValueError, match="version 99"):
            StreamingTraceReader(path)

    def test_is_stream_trace_sniff(self, tmp_path):
        binary = tmp_path / "t.ctr"
        _write(binary, _records(3))
        text = tmp_path / "t.txt"
        TrafficTrace(_records(3)).save(text)
        assert is_stream_trace(binary)
        assert not is_stream_trace(text)
        assert not is_stream_trace(tmp_path / "missing.ctr")


class TestTruncation:
    def test_torn_payload_salvages_whole_records(self, tmp_path):
        path = tmp_path / "t.ctr"
        _write(path, _records(24), chunk_records=8)
        data = path.read_bytes()
        # Tear the last chunk's payload in half.
        path.write_bytes(data[: len(data) - 20])
        reader = StreamingTraceReader(path)
        with pytest.warns(RuntimeWarning, match="truncated trace"):
            salvaged = list(reader)
        assert reader.truncated
        assert reader.lost_records >= 1
        # Everything salvaged is a prefix of the original records.
        assert salvaged == _records(24)[: len(salvaged)]
        assert len(salvaged) + reader.lost_records >= 24

    def test_torn_chunk_header(self, tmp_path):
        path = tmp_path / "t.ctr"
        _write(path, _records(16), chunk_records=8)
        data = path.read_bytes()
        # Leave only 2 bytes of the second chunk's 8-byte header.
        # Walk: header(24) + chunk header(8) + first payload.
        comp_size = struct.unpack_from("<II", data, 24)[1]
        cut = 24 + 8 + comp_size + 2
        path.write_bytes(data[:cut])
        reader = StreamingTraceReader(path)
        with pytest.warns(RuntimeWarning, match="truncated trace"):
            salvaged = list(reader)
        assert salvaged == _records(16)[:8]
        assert reader.truncated
        assert reader.lost_records == 8

    def test_unfinalized_writer_warns(self, tmp_path):
        path = tmp_path / "t.ctr"
        writer = StreamingTraceWriter(path, 4)
        writer.extend(_records(8))
        writer._file.flush()  # full chunks are on disk, header is not
        try:
            reader = StreamingTraceReader(path)
            with pytest.warns(RuntimeWarning, match="never finalized"):
                salvaged = list(reader)
            assert salvaged == _records(8)
        finally:
            writer.close()

    def test_info_reports_truncation(self, tmp_path):
        path = tmp_path / "t.ctr"
        _write(path, _records(24), chunk_records=8)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])
        info = trace_info(path)
        assert info["truncated"]
        assert info["chunks"] == 2
        assert info["records"] == 16


class TestTraceInfo:
    def test_info_counts_without_decompressing_all(self, tmp_path):
        records = _records(100, start=5)
        path = tmp_path / "t.ctr"
        _write(path, records, chunk_records=16)
        info = trace_info(path)
        assert info["records"] == 100
        assert info["declared_records"] == 100
        assert info["chunks"] == 7
        assert info["chunk_records"] == 16
        assert not info["truncated"]
        assert info["first_cycle"] == records[0].cycle
        assert info["last_cycle"] == records[-1].cycle


class TestStreamingReplay:
    def _record_run(self, tmp_path, cycles=60):
        fabric = small_fabric(seed=4)
        inner = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), 0.2, seed=4
        )
        path = tmp_path / "run.ctr"
        with StreamingTraceWriter(path, 16) as writer:
            recorder = StreamingRecordingSource(fabric, inner, writer)
            for cycle in range(cycles):
                recorder.step(cycle)
                fabric.step()
        return fabric, path

    def test_streaming_replay_matches_text_replay(self, tmp_path):
        fabric_a, path = self._record_run(tmp_path)
        records = list(StreamingTraceReader(path))
        assert len(records) == fabric_a.stats.packets_offered

        # Replay via the streaming source...
        fabric_b = small_fabric(seed=999)
        replay = StreamingTraceSource(
            fabric_b, StreamingTraceReader(path)
        )
        for cycle in range(60):
            replay.step(cycle)
            fabric_b.step()
        assert replay.exhausted
        assert replay.packets_generated == len(records)
        # ... and via the in-memory text-path source: same traffic.
        fabric_c = small_fabric(seed=999)
        text_replay = TraceSource(fabric_c, TrafficTrace(records))
        for cycle in range(60):
            text_replay.step(cycle)
            fabric_c.step()
        assert (
            fabric_b.stats.packets_offered
            == fabric_c.stats.packets_offered
            == fabric_a.stats.packets_offered
        )

    def test_streaming_source_skip_horizon(self, tmp_path):
        from repro.noc.backend import NEVER

        fabric = small_fabric()
        path = tmp_path / "t.ctr"
        _write(path, [TraceRecord(10, 0, 1, 72, 0)])
        source = StreamingTraceSource(fabric, StreamingTraceReader(path))
        assert source.next_offer_cycle(0) == 10
        assert source.next_offer_cycle(11) == 11
        source.step(10)
        assert source.exhausted
        assert source.next_offer_cycle(11) == NEVER
