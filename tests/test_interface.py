"""Tests for the shared network interface."""

from __future__ import annotations

from tests.conftest import small_fabric

from repro.noc.config import NocConfig
from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric


def offer(fabric, src=0, dst=3, bits=512, mc=MessageClass.SYNTHETIC):
    packet = Packet(src=src, dst=dst, size_bits=bits, message_class=mc)
    fabric.offer(packet)
    return packet


class TestPacketization:
    def test_flit_count_from_width(self, fabric):
        packet = offer(fabric, bits=512)  # 128-bit subnets
        assert packet.num_flits == 4

    def test_control_packet_single_flit(self, fabric):
        packet = offer(fabric, bits=72)
        assert packet.num_flits == 1

    def test_queue_occupancy_tracks_flits(self, fabric):
        ni = fabric.nis[0]
        offer(fabric, bits=512)
        offer(fabric, bits=72)
        assert ni.queue_occupancy_flits() == 5
        assert fabric.drain()
        assert ni.queue_occupancy_flits() == 0


class TestStreaming:
    def test_one_flit_per_subnet_per_cycle(self, fabric):
        offer(fabric, bits=512)
        injected_before = fabric.subnets[0].counters.flits_injected
        fabric.step()
        fabric.step()
        total = sum(n.counters.flits_injected for n in fabric.subnets)
        assert total - injected_before <= 2  # <= 1 per cycle

    def test_back_to_back_packets_no_bubble(self):
        """Consecutive single-flit packets inject on consecutive cycles."""
        fabric = small_fabric(num_subnets=1, link_width_bits=256)
        for _ in range(4):
            offer(fabric, bits=72, mc=MessageClass.REQUEST)
        cycles = 0
        while fabric.subnets[0].counters.flits_injected < 4:
            fabric.step()
            cycles += 1
            assert cycles < 20
        assert cycles <= 5  # 4 flits + at most 1 startup cycle

    def test_different_classes_interleave_on_vcs(self):
        """A control packet need not wait behind a long data packet."""
        fabric = small_fabric(num_subnets=1, link_width_bits=128)
        data = offer(fabric, bits=4096, mc=MessageClass.RESPONSE)  # 32 flit
        ctrl = offer(fabric, bits=72, mc=MessageClass.REQUEST)
        assert fabric.drain()
        assert ctrl.received_cycle < data.received_cycle

    def test_all_flits_same_subnet(self, fabric):
        packet = offer(fabric, bits=512)
        assert fabric.drain()
        assert packet.subnet in (0, 1)


class TestInjectionRate:
    def test_rate_rises_with_injection(self, fabric):
        ni = fabric.nis[0]
        assert ni.injection_rate() == 0.0
        for _ in range(30):
            offer(fabric, bits=72)
            fabric.step()
        assert ni.injection_rate() > 0.05

    def test_rate_decays_when_idle(self, fabric):
        for _ in range(30):
            offer(fabric, bits=72)
            fabric.step()
        peak = fabric.nis[0].injection_rate()
        assert fabric.drain()
        for _ in range(300):
            fabric.step()
        assert fabric.nis[0].injection_rate() < peak / 4


class TestReassembly:
    def test_packet_completes_once(self, fabric):
        completions = []
        fabric.packet_sink = lambda p, c: completions.append(p.packet_id)
        packet = offer(fabric, bits=512)
        assert fabric.drain()
        assert completions.count(packet.packet_id) == 1

    def test_received_cycle_set(self, fabric):
        packet = offer(fabric, bits=512)
        assert fabric.drain()
        assert packet.received_cycle > packet.created_cycle
        assert packet.injected_cycle >= packet.created_cycle
